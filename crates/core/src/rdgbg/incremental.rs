//! Incremental RD-GBG maintenance: canonical-order granulation with a
//! decision trace, and append-with-prefix-reuse whose output is
//! **bit-identical to a from-scratch rebuild on the union dataset**.
//!
//! # Why a canonical order
//!
//! [`super::rd_gbg`] draws candidate centers with an RNG whose stream
//! depends on the evolving per-class pool sizes, so appending even one row
//! perturbs every subsequent draw — no incremental scheme can reproduce
//! the stochastic trace without redoing it. The maintenance engine
//! therefore fixes the candidate order to a **canonical sweep**: rows are
//! considered in ascending row id, each exactly once, with the identical
//! per-candidate mathematics (Eq. 2 density verdicts, Eq. 3 heterogeneous
//! stop, Eq. 4–6 conflict restriction, one range query for the members).
//! Every cover invariant of the stochastic algorithm holds unchanged —
//! purity 1.0, pairwise non-overlap, exact partition into
//! balls ∪ noise — and the output is a *pure function of the row
//! sequence*, which is what makes "incremental == rebuild" a meaningful,
//! testable contract rather than an approximation.
//!
//! # Prefix reuse
//!
//! Each sweep decision records an **influence radius**: the largest
//! squared distance from the candidate any index query inspected
//! (`max(ρ-hood radius, diffusion bound)`, `∞` when fewer than ρ rows
//! remained). A decision is provably unchanged by rows that are all
//! strictly farther than its influence radius:
//!
//! * the ρ-neighbourhood cannot admit a farther row (new rows also carry
//!   larger row ids, so exact-tie ordering favours the old rows — and the
//!   cut test below is inclusive anyway);
//! * the member range query is bounded by the diffusion bound, which the
//!   influence radius dominates;
//! * a new heterogeneous row between the conflict radius and the old
//!   nearest-heterogeneous distance shrinks `d_het` without changing the
//!   chosen bound or the member set.
//!
//! [`MaintainedModel::append`] finds the earliest decision whose influence
//! ball contains any appended row (`d² ≤ influence²`, conservative), **replays**
//! every decision before it verbatim — tombstone deletions, conflict-ball
//! pushes, low-density marks, noise removals, no index queries — and
//! resumes the live sweep from the following row. The always-available
//! oracle is [`canonical_rd_gbg`] on the union dataset; the equivalence is
//! property-tested ball-for-ball across all exact backends in
//! `tests/ingest_oracle.rs`.

use crate::ball::GranularBall;
use crate::conflict::BallConflictIndex;
use crate::rdgbg::RdGbgModel;
use gb_dataset::distance::sq_euclidean;
use gb_dataset::index::{GranulationBackend, NeighborIndex, RangeBound};
use gb_dataset::Dataset;

/// What one canonical-sweep candidate decision did (the replayable part).
#[derive(Debug, Clone)]
enum DecisionKind {
    /// Candidate grew a diffusion ball (members were tombstoned, the ball
    /// joined the conflict index).
    Ball(GranularBall),
    /// Candidate was routed to the low-density set `L` (still absorbable
    /// by later balls, orphaned at the end if never absorbed).
    LowDensity,
    /// Candidate itself was detected as class noise and removed.
    CandidateNoise,
}

/// One replayable decision of the canonical sweep.
#[derive(Debug, Clone)]
struct Decision {
    /// Candidate row id (decisions are strictly ascending in `row`).
    row: usize,
    /// Squared influence radius: appended rows strictly farther than this
    /// from the candidate cannot change the decision. `∞` when the
    /// ρ-neighbourhood was not full.
    influence_sq: f64,
    /// The `h == 1` noisy nearest neighbour removed *before* diffusion.
    noisy_neighbor: Option<usize>,
    kind: DecisionKind,
}

/// Mutable sweep state shared by replay and the live sweep.
struct SweepState {
    index: Box<dyn NeighborIndex>,
    low_density: Vec<bool>,
    conflicts: BallConflictIndex,
    noise: Vec<usize>,
}

/// Re-applies a prefix of decisions without any index queries: the exact
/// tombstone deletions, conflict pushes, low-density marks, and noise
/// removals the live sweep performed when the decisions were first made.
fn replay(state: &mut SweepState, prefix: &[Decision]) {
    for d in prefix {
        if let Some(bad) = d.noisy_neighbor {
            state.index.delete(bad);
            state.noise.push(bad);
        }
        match &d.kind {
            DecisionKind::Ball(ball) => {
                for &m in &ball.members {
                    state.index.delete(m);
                }
                state.conflicts.push(&ball.center, ball.radius);
            }
            DecisionKind::LowDensity => state.low_density[d.row] = true,
            DecisionKind::CandidateNoise => {
                state.index.delete(d.row);
                state.noise.push(d.row);
            }
        }
    }
}

/// The live canonical sweep from `start_row` (inclusive), appending one
/// decision per alive, non-low-density row.
fn live_sweep(
    state: &mut SweepState,
    data: &Dataset,
    rho: usize,
    start_row: usize,
    trace: &mut Vec<Decision>,
) {
    for row in start_row..data.n_samples() {
        if !state.index.is_alive(row) || state.low_density[row] {
            continue;
        }
        let label = data.label(row);
        let c = data.row(row);

        // One ρ-sized k-NN query serves the nearest-neighbour check, the
        // neighbourhood vote, and the verdict's influence radius. Same
        // semantics as `super::detect_center`; inlined to expose the hood.
        let hood = state.index.k_nearest_sq(c, rho, Some(row));
        let mut influence_sq = if hood.len() < rho {
            // The neighbourhood was not full: any appended row could join
            // it, so the decision is influenced at any distance.
            f64::INFINITY
        } else {
            hood.last().map_or(f64::INFINITY, |n| n.sq_dist)
        };
        let noisy_neighbor = match hood.first() {
            None => {
                // No other undivided sample: low-density, orphaned later.
                state.low_density[row] = true;
                trace.push(Decision {
                    row,
                    influence_sq,
                    noisy_neighbor: None,
                    kind: DecisionKind::LowDensity,
                });
                continue;
            }
            Some(&nn) if data.label(nn.row) == label => None,
            Some(&nn) => {
                let h = hood.iter().filter(|n| data.label(n.row) != label).count();
                if h == hood.len() {
                    // h == ρ: the candidate is class noise.
                    state.index.delete(row);
                    state.noise.push(row);
                    trace.push(Decision {
                        row,
                        influence_sq,
                        noisy_neighbor: None,
                        kind: DecisionKind::CandidateNoise,
                    });
                    continue;
                } else if h == 1 {
                    Some(nn.row)
                } else {
                    // 1 < h < ρ: low-density candidate.
                    state.low_density[row] = true;
                    trace.push(Decision {
                        row,
                        influence_sq,
                        noisy_neighbor: None,
                        kind: DecisionKind::LowDensity,
                    });
                    continue;
                }
            }
        };
        if let Some(bad) = noisy_neighbor {
            state.index.delete(bad);
            state.noise.push(bad);
        }

        // Diffusion: identical bound selection and single range query as
        // the stochastic engine (see `super::rd_gbg_with_progress`).
        let d_het_sq = state
            .index
            .nearest_heterogeneous_sq(c, label, Some(row))
            .map_or(f64::INFINITY, |h| h.sq_dist);
        let rconf = state.conflicts.conflict_radius(c);
        let (sq_bound, bound_kind) = if rconf * rconf < d_het_sq {
            (rconf * rconf, RangeBound::Inclusive)
        } else {
            (d_het_sq, RangeBound::Strict)
        };
        if sq_bound.is_finite() {
            influence_sq = influence_sq.max(sq_bound);
        } else {
            influence_sq = f64::INFINITY;
        }
        let hits = state.index.range_sq(c, sq_bound, bound_kind, Some(row));
        let r_sq = hits.iter().fold(0.0f64, |m, h| m.max(h.sq_dist));
        let r = r_sq.sqrt();

        if r > 0.0 {
            let mut members: Vec<usize> = hits.iter().map(|h| h.row).collect();
            members.push(row);
            members.sort_unstable();
            for &m in &members {
                debug_assert!(state.index.is_alive(m));
                debug_assert_eq!(data.label(m), label, "diffusion must stay pure");
                state.index.delete(m);
            }
            let ball = GranularBall {
                center: c.to_vec(),
                radius: r,
                label,
                members,
                center_row: Some(row),
                purity: 1.0,
            };
            state.conflicts.push(&ball.center, ball.radius);
            trace.push(Decision {
                row,
                influence_sq,
                noisy_neighbor,
                kind: DecisionKind::Ball(ball),
            });
        } else {
            state.low_density[row] = true;
            trace.push(Decision {
                row,
                influence_sq,
                noisy_neighbor,
                kind: DecisionKind::LowDensity,
            });
        }
    }
}

/// Runs replay + live sweep + orphan phase and assembles the model.
fn sweep(
    data: &Dataset,
    rho: usize,
    backend: GranulationBackend,
    prefix: &[Decision],
) -> (RdGbgModel, Vec<Decision>) {
    assert!(rho >= 2, "density tolerance must be at least 2");
    assert!(data.n_samples() > 0, "cannot granulate an empty dataset");
    let mut state = SweepState {
        index: backend.build(data),
        low_density: vec![false; data.n_samples()],
        conflicts: BallConflictIndex::new(data.n_features()),
        noise: Vec::new(),
    };
    let mut trace: Vec<Decision> = prefix.to_vec();
    replay(&mut state, prefix);
    let start_row = prefix.last().map_or(0, |d| d.row + 1);
    live_sweep(&mut state, data, rho, start_row, &mut trace);

    // Orphan phase: surviving rows (all low-density or unreachable)
    // become radius-0 balls, recomputed fresh on every build — they are
    // not part of the trace because later appends can legitimately absorb
    // them into new diffusion balls.
    let mut balls: Vec<GranularBall> = trace
        .iter()
        .filter_map(|d| match &d.kind {
            DecisionKind::Ball(b) => Some(b.clone()),
            _ => None,
        })
        .collect();
    let mut orphan_count = 0usize;
    for row in (0..data.n_samples()).filter(|&r| state.index.is_alive(r)) {
        balls.push(GranularBall {
            center: data.row(row).to_vec(),
            radius: 0.0,
            label: data.label(row),
            members: vec![row],
            center_row: Some(row),
            purity: 1.0,
        });
        orphan_count += 1;
    }
    let model = RdGbgModel {
        balls,
        noise: state.noise,
        orphan_count,
        // The canonical engine is a single deterministic pass; the field
        // is kept for envelope compatibility with the stochastic engine.
        iterations: 1,
        // The maintenance engine granulates in the paper's metric only —
        // its influence-radius algebra is squared-Euclidean.
        metric: gb_dataset::distance::Metric::SqEuclidean,
    };
    (model, trace)
}

/// Canonical-order RD-GBG over `data`: the **full-rebuild oracle** of the
/// maintenance path. A pure function of `(row sequence, ρ)` — no RNG —
/// producing a cover with the same invariants as [`super::rd_gbg`]
/// (purity, non-overlap, exact partition) and bit-identical output across
/// every exact backend.
///
/// # Panics
/// Panics when `rho < 2` or the dataset is empty.
#[must_use]
pub fn canonical_rd_gbg(data: &Dataset, rho: usize, backend: GranulationBackend) -> RdGbgModel {
    sweep(data, rho, backend, &[]).0
}

/// Telemetry of one [`MaintainedModel::append`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendStats {
    /// Rows appended by this call.
    pub appended: usize,
    /// Sweep decisions replayed verbatim from the previous trace.
    pub reused_decisions: usize,
    /// Sweep decisions recomputed by the live sweep (dirty region + new
    /// rows).
    pub recomputed_decisions: usize,
    /// Diffusion balls carried over unchanged.
    pub reused_balls: usize,
    /// Diffusion balls produced by the live sweep.
    pub rebuilt_balls: usize,
    /// `true` when no prefix could be reused (equivalent work to the
    /// oracle rebuild).
    pub full_rebuild: bool,
}

/// A granular-ball model under online maintenance: the backing dataset,
/// the canonical-order cover, and the decision trace that makes appends
/// incremental. The serving tier keeps one of these per maintained tenant;
/// persistence stores only `(rows, labels, ρ)` — the trace is rebuilt
/// deterministically on cold load via [`MaintainedModel::build`].
#[derive(Debug, Clone)]
pub struct MaintainedModel {
    data: Dataset,
    rho: usize,
    backend: GranulationBackend,
    model: RdGbgModel,
    trace: Vec<Decision>,
}

impl MaintainedModel {
    /// Builds the canonical cover of `data` from scratch and retains the
    /// decision trace for future appends.
    ///
    /// # Panics
    /// Panics when `rho < 2` or the dataset is empty.
    #[must_use]
    pub fn build(data: Dataset, rho: usize, backend: GranulationBackend) -> Self {
        let (model, trace) = sweep(&data, rho, backend, &[]);
        Self {
            data,
            rho,
            backend,
            model,
            trace,
        }
    }

    /// The current cover (bit-identical to
    /// [`canonical_rd_gbg`]`(self.data(), self.rho(), backend)`).
    #[must_use]
    pub fn model(&self) -> &RdGbgModel {
        &self.model
    }

    /// The backing dataset (initial rows + every appended row, in arrival
    /// order).
    #[must_use]
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// Density tolerance ρ the cover is maintained under.
    #[must_use]
    pub fn rho(&self) -> usize {
        self.rho
    }

    /// Neighbour-index backend the sweep queries run against (the cover is
    /// backend-invariant; this only selects the query structure).
    #[must_use]
    pub fn backend(&self) -> GranulationBackend {
        self.backend
    }

    /// Appends labelled rows (`features` is row-major,
    /// `labels.len() * n_features` long) and re-granulates the dirty
    /// region: the longest clean prefix of the decision trace is replayed
    /// verbatim and the canonical sweep resumes after it.
    ///
    /// # Panics
    /// Panics when the feature buffer is not `labels.len() * n_features`
    /// long or any label is `>= n_classes` — callers (the serving tier)
    /// validate first.
    pub fn append(&mut self, features: &[f64], labels: &[u32]) -> AppendStats {
        let p = self.data.n_features();
        assert_eq!(
            features.len(),
            labels.len() * p,
            "feature buffer does not match label count"
        );
        if labels.is_empty() {
            return AppendStats {
                appended: 0,
                reused_decisions: self.trace.len(),
                recomputed_decisions: 0,
                reused_balls: self.model.balls.len() - self.model.orphan_count,
                rebuilt_balls: 0,
                full_rebuild: false,
            };
        }
        for (row, &label) in features.chunks_exact(p).zip(labels) {
            self.data.push_row(row, label);
        }

        // Cut: earliest decision whose influence ball contains any new
        // row (inclusive — exact ties conservatively invalidate).
        let new_rows: Vec<&[f64]> = features.chunks_exact(p).collect();
        let cut = self
            .trace
            .iter()
            .position(|d| {
                d.influence_sq.is_infinite()
                    || new_rows
                        .iter()
                        .any(|r| sq_euclidean(self.data.row(d.row), r) <= d.influence_sq)
            })
            .unwrap_or(self.trace.len());

        let reused_balls = self.trace[..cut]
            .iter()
            .filter(|d| matches!(d.kind, DecisionKind::Ball(_)))
            .count();
        let (model, trace) = sweep(&self.data, self.rho, self.backend, &self.trace[..cut]);
        let stats = AppendStats {
            appended: labels.len(),
            reused_decisions: cut,
            recomputed_decisions: trace.len() - cut,
            reused_balls,
            rebuilt_balls: model.balls.len() - model.orphan_count - reused_balls,
            full_rebuild: cut == 0,
        };
        self.model = model;
        self.trace = trace;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_dataset::catalog::DatasetId;

    fn assert_models_equal(a: &RdGbgModel, b: &RdGbgModel, ctx: &str) {
        assert_eq!(a.noise, b.noise, "{ctx}: noise");
        assert_eq!(a.orphan_count, b.orphan_count, "{ctx}: orphans");
        assert_eq!(a.balls.len(), b.balls.len(), "{ctx}: ball count");
        for (i, (x, y)) in a.balls.iter().zip(&b.balls).enumerate() {
            assert_eq!(x.members, y.members, "{ctx}: ball {i} members");
            assert_eq!(
                x.radius.to_bits(),
                y.radius.to_bits(),
                "{ctx}: ball {i} radius"
            );
            assert_eq!(x.label, y.label, "{ctx}: ball {i} label");
            assert_eq!(x.center, y.center, "{ctx}: ball {i} center");
        }
    }

    fn union(base: &Dataset, feats: &[f64], labels: &[u32]) -> Dataset {
        let mut u = base.clone();
        for (row, &l) in feats.chunks_exact(base.n_features()).zip(labels) {
            u.push_row(row, l);
        }
        u
    }

    #[test]
    fn canonical_build_satisfies_cover_invariants() {
        let data = DatasetId::S5.generate(0.05, 3);
        let model = canonical_rd_gbg(&data, 5, GranulationBackend::Auto);
        crate::diagnostics::verify_rdgbg_invariants(&data, &model).unwrap();
    }

    #[test]
    fn canonical_build_is_backend_invariant() {
        let data = DatasetId::S2.generate(0.1, 6);
        let reference = canonical_rd_gbg(&data, 5, GranulationBackend::Brute);
        for backend in [GranulationBackend::KdTree, GranulationBackend::VpTree] {
            let model = canonical_rd_gbg(&data, 5, backend);
            assert_models_equal(&model, &reference, &format!("{backend}"));
        }
    }

    #[test]
    fn append_matches_oracle_on_catalog_data() {
        let base = DatasetId::S5.generate(0.05, 3);
        let mut maintained = MaintainedModel::build(base.clone(), 5, GranulationBackend::Auto);
        // Rows near the existing mass, plus a far outlier.
        let feats = vec![0.1, 0.2, 0.15, 0.22, 50.0, 50.0];
        let labels = vec![0, 1, 0];
        let stats = maintained.append(&feats, &labels);
        assert_eq!(stats.appended, 3);
        let oracle = canonical_rd_gbg(&union(&base, &feats, &labels), 5, GranulationBackend::Auto);
        assert_models_equal(maintained.model(), &oracle, "append vs oracle");
        crate::diagnostics::verify_rdgbg_invariants(maintained.data(), maintained.model()).unwrap();
    }

    #[test]
    fn repeated_appends_stay_equal_to_oracle() {
        let base = DatasetId::S5.generate(0.08, 9);
        let mut maintained = MaintainedModel::build(base.clone(), 5, GranulationBackend::KdTree);
        let mut all_feats: Vec<f64> = Vec::new();
        let mut all_labels: Vec<u32> = Vec::new();
        let mut seed = 77u64;
        for round in 0..4 {
            let mut feats = Vec::new();
            let mut labels = Vec::new();
            for i in 0..3 {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                let a = (seed >> 33) as f64 / (1u64 << 31) as f64;
                feats.push(a * 2.0 - 0.5);
                feats.push((i as f64).mul_add(0.3, a));
                labels.push((round + i) as u32 % 2);
            }
            maintained.append(&feats, &labels);
            all_feats.extend_from_slice(&feats);
            all_labels.extend_from_slice(&labels);
            let oracle = canonical_rd_gbg(
                &union(&base, &all_feats, &all_labels),
                5,
                GranulationBackend::KdTree,
            );
            assert_models_equal(maintained.model(), &oracle, &format!("round {round}"));
        }
    }

    #[test]
    fn duplicate_rows_force_a_cut_and_stay_equal() {
        let base = DatasetId::S5.generate(0.05, 4);
        let mut maintained = MaintainedModel::build(base.clone(), 5, GranulationBackend::VpTree);
        // Exact duplicate of row 0: lies inside whatever ball absorbed it.
        let feats: Vec<f64> = base.row(0).to_vec();
        let labels = vec![base.label(0)];
        let stats = maintained.append(&feats, &labels);
        assert!(
            stats.recomputed_decisions > 0,
            "a duplicate inside the cover must dirty at least one decision"
        );
        let oracle = canonical_rd_gbg(
            &union(&base, &feats, &labels),
            5,
            GranulationBackend::VpTree,
        );
        assert_models_equal(maintained.model(), &oracle, "duplicate");
    }

    #[test]
    fn far_outlier_reuses_the_whole_prefix() {
        let data = DatasetId::S5.generate(0.05, 4);
        let mut maintained = MaintainedModel::build(data, 5, GranulationBackend::Auto);
        let n_decisions = maintained.trace.len();
        // Far from every influence ball with a finite radius.
        let stats = maintained.append(&[1e6, 1e6], &[0]);
        assert!(
            stats.reused_decisions > 0,
            "a far outlier should reuse some prefix (got {stats:?})"
        );
        assert!(stats.reused_decisions <= n_decisions);
        let oracle_rho_guard = maintained.model();
        assert!(oracle_rho_guard.balls.iter().any(|b| b.radius == 0.0));
    }

    #[test]
    fn empty_append_is_a_noop() {
        let data = DatasetId::S5.generate(0.05, 3);
        let mut maintained = MaintainedModel::build(data, 5, GranulationBackend::Auto);
        let before = maintained.model().balls.len();
        let stats = maintained.append(&[], &[]);
        assert_eq!(stats.appended, 0);
        assert!(!stats.full_rebuild);
        assert_eq!(maintained.model().balls.len(), before);
    }

    #[test]
    #[should_panic(expected = "label")]
    fn rejects_out_of_range_labels() {
        let data = DatasetId::S5.generate(0.05, 3);
        let mut maintained = MaintainedModel::build(data, 5, GranulationBackend::Auto);
        let n_classes = maintained.data().n_classes();
        maintained.append(&[0.0, 0.0], &[n_classes as u32]);
    }
}
