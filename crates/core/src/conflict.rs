//! Incremental max-radius KD-tree over finished balls.
//!
//! Three queries run against the ball set:
//!
//! * the Eq.-4 **conflict radius** `min_b (‖center_b − c‖ − r_b)⁺` used by
//!   RD-GBG while growing a new ball,
//! * the **overlap count** `|{b : ‖center_b − c‖ < r_b + r − eps}|` used by
//!   [`crate::diagnostics::count_overlaps`] to audit a cover, and
//! * the **heterogeneous adjacency** walk over one feature dimension used
//!   by GBABS borderline detection
//!   ([`BallConflictIndex::for_each_heterogeneous_adjacent`]).
//!
//! Structure: an arena KD-tree over the centers of the balls inserted so
//! far, with each split node carrying the **maximum radius of its subtree**
//! so a whole branch prunes once the axis gap minus `r_max` already decides
//! the query. New balls land in a linear `recent` buffer (scanned brute per
//! query) and the tree is rebuilt once the buffer outgrows the indexed part
//! — LSM-style, so insertion stays O(1) amortized-ish and both queries run
//! in O(log m) in practice instead of O(m) / O(m²).
//!
//! Exactness: leaf-level predicates evaluate the same floating-point
//! expressions as the naive loops (`euclidean − r` for the gap,
//! `GranularBall::overlaps`'s `dist < r_a + r_b − eps` for overlap), pruning
//! bounds are relaxed by `1 − 1e−12` so `sqrt` rounding can only cause
//! extra visits, and `min`/counting are order-independent — results are
//! bit-identical to the brute scans.
//!
//! Metric: distances here are **rank-space** center distances under the
//! granulation's [`Metric`] — Euclidean for squared-Euclidean (and for
//! cosine, whose granulation runs over normalized rows where Euclidean is
//! the chord), L1 for Manhattan. The per-axis pruning bound `|Δdim|` is a
//! valid lower bound on both the L2 and the L1 center distance, so the
//! same tree serves every metric.

use gb_dataset::distance::{euclidean, Metric};

pub(crate) struct BallConflictIndex {
    /// Flattened centers of every ball seen (row-major).
    centers: Vec<f64>,
    radii: Vec<f64>,
    n_features: usize,
    /// Rank-space metric for center distances.
    metric: Metric,
    nodes: Vec<ConflictNode>,
    root: u32,
    /// Balls `0..indexed` live in the tree; `indexed..len` are the brute
    /// buffer.
    indexed: usize,
}

enum ConflictNode {
    Leaf {
        balls: Vec<u32>,
    },
    Split {
        dim: usize,
        value: f64,
        /// Max ball radius within this subtree (pruning slack).
        r_max: f64,
        left: u32,
        right: u32,
    },
}

const NO_NODE: u32 = u32::MAX;
const CONFLICT_LEAF: usize = 16;
const CONFLICT_PRUNE_SLACK: f64 = 1.0 - 1e-12;

impl BallConflictIndex {
    pub(crate) fn new(n_features: usize) -> Self {
        Self::new_with(n_features, Metric::SqEuclidean)
    }

    /// An empty index whose center distances run in `metric`'s rank space.
    /// Cosine granulations pass `SqEuclidean` here (they operate on
    /// normalized rows where Euclidean *is* the chord).
    pub(crate) fn new_with(n_features: usize, metric: Metric) -> Self {
        Self {
            centers: Vec::new(),
            radii: Vec::new(),
            n_features,
            metric,
            nodes: Vec::new(),
            root: NO_NODE,
            indexed: 0,
        }
    }

    /// Bulk-loads a finished cover (the borderline-detection entry point):
    /// all centers land in one flat arena, skipping the incremental LSM
    /// rebuilds of the push path. The KD-tree is **not** built — the
    /// adjacency query sorts the arena directly, and the conflict/overlap
    /// queries answer correctly from the linear buffer (call
    /// [`BallConflictIndex::rebuild`] first when a bulk-loaded index will
    /// serve many of those).
    pub(crate) fn from_cover<'a>(
        balls: impl Iterator<Item = &'a crate::ball::GranularBall>,
        n_features: usize,
    ) -> Self {
        let mut index = Self::new(n_features);
        for b in balls {
            debug_assert_eq!(b.center.len(), n_features);
            index.centers.extend_from_slice(&b.center);
            index.radii.push(b.radius);
        }
        index
    }

    /// Heterogeneous-adjacency query along feature dimension `dim`: walks
    /// the indexed balls in ascending `(center[dim], ball id)` order — the
    /// workspace's canonical coordinate tie-break — and invokes
    /// `on_pair(left, right)` for every *adjacent* pair whose labels
    /// differ. This is the per-dimension adjacency relation of GBABS
    /// Algorithm 2; `order` is caller-owned scratch so one allocation
    /// serves all `p` dimensions.
    ///
    /// Determinism: the order is a total order (ties broken by insertion
    /// id), so the pair sequence is a pure function of the cover —
    /// independent of build history, backend, and thread count.
    ///
    /// # Panics
    /// Debug-asserts one label per indexed ball and `dim < n_features`.
    pub(crate) fn for_each_heterogeneous_adjacent(
        &self,
        dim: usize,
        labels: &[u32],
        order: &mut Vec<(f64, u32)>,
        mut on_pair: impl FnMut(usize, usize),
    ) {
        debug_assert_eq!(labels.len(), self.len());
        debug_assert!(dim < self.n_features || self.len() == 0);
        order.clear();
        order.extend((0..self.len() as u32).map(|b| (self.center(b)[dim], b)));
        // Decorated sort over the flat arena: one key load per comparison
        // instead of the double pointer-chase of sorting ball ids through
        // the cover.
        order.sort_unstable_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("finite centers")
                .then_with(|| a.1.cmp(&b.1))
        });
        for w in order.windows(2) {
            let (left, right) = (w[0].1 as usize, w[1].1 as usize);
            if labels[left] != labels[right] {
                on_pair(left, right);
            }
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.radii.len()
    }

    fn center(&self, i: u32) -> &[f64] {
        let i = i as usize;
        &self.centers[i * self.n_features..(i + 1) * self.n_features]
    }

    pub(crate) fn push(&mut self, center: &[f64], radius: f64) {
        debug_assert_eq!(center.len(), self.n_features);
        self.centers.extend_from_slice(center);
        self.radii.push(radius);
        // Rebuild once the linear buffer outgrows the indexed portion.
        if self.len() - self.indexed > 64.max(self.indexed) {
            self.rebuild();
        }
    }

    fn rebuild(&mut self) {
        self.nodes.clear();
        self.indexed = self.len();
        let mut balls: Vec<u32> = (0..self.len() as u32).collect();
        self.root = self.build_rec(&mut balls);
    }

    /// Median-split build; each split memoizes its subtree's max radius.
    fn build_rec(&mut self, balls: &mut [u32]) -> u32 {
        if balls.is_empty() {
            return NO_NODE;
        }
        if balls.len() <= CONFLICT_LEAF {
            let id = self.nodes.len() as u32;
            self.nodes.push(ConflictNode::Leaf {
                balls: balls.to_vec(),
            });
            return id;
        }
        // Widest-spread dimension.
        let mut best_dim = 0;
        let mut best_spread = -1.0;
        for d in 0..self.n_features {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &b in balls.iter() {
                let v = self.center(b)[d];
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if hi - lo > best_spread {
                best_spread = hi - lo;
                best_dim = d;
            }
        }
        if best_spread <= 0.0 {
            let id = self.nodes.len() as u32;
            self.nodes.push(ConflictNode::Leaf {
                balls: balls.to_vec(),
            });
            return id;
        }
        let mid = balls.len() / 2;
        balls.select_nth_unstable_by(mid, |&a, &b| {
            self.center(a)[best_dim]
                .partial_cmp(&self.center(b)[best_dim])
                .expect("finite centers")
                .then_with(|| a.cmp(&b))
        });
        let value = self.center(balls[mid])[best_dim];
        let (mut left, mut right): (Vec<u32>, Vec<u32>) = (Vec::new(), Vec::new());
        for &b in balls.iter() {
            if self.center(b)[best_dim] <= value {
                left.push(b);
            } else {
                right.push(b);
            }
        }
        if left.is_empty() || right.is_empty() {
            // All coords equal to the median on this axis despite spread —
            // fall back to an (oversized) leaf rather than recurse forever.
            let id = self.nodes.len() as u32;
            self.nodes.push(ConflictNode::Leaf {
                balls: balls.to_vec(),
            });
            return id;
        }
        let r_max = balls
            .iter()
            .map(|&b| self.radii[b as usize])
            .fold(0.0f64, f64::max);
        let id = self.nodes.len() as u32;
        self.nodes.push(ConflictNode::Leaf { balls: Vec::new() }); // placeholder
        let l = self.build_rec(&mut left);
        let r = self.build_rec(&mut right);
        self.nodes[id as usize] = ConflictNode::Split {
            dim: best_dim,
            value,
            r_max,
            left: l,
            right: r,
        };
        id
    }

    /// Gap from `c` to a stored ball under `dist`, the rank-space
    /// center distance. `dist` is monomorphized by the public entry
    /// points (the sequential `euclidean` for L2 — the sub-lane and
    /// historical shape — `manhattan` otherwise) so the per-ball loop
    /// carries no enum dispatch and index answers stay bit-identical
    /// with the naive loops.
    #[inline]
    fn gap_with(&self, ball: u32, c: &[f64], dist: impl Fn(&[f64], &[f64]) -> f64) -> f64 {
        (dist(self.center(ball), c) - self.radii[ball as usize]).max(0.0)
    }

    /// `min_b (‖center_b − c‖ − r_b)⁺`, or `+inf` with no balls.
    pub(crate) fn conflict_radius(&self, c: &[f64]) -> f64 {
        // Branch on the metric once per query, not per ball visit.
        match self.metric {
            Metric::SqEuclidean | Metric::Cosine => self.conflict_radius_with(c, euclidean),
            Metric::Manhattan => self.conflict_radius_with(c, gb_dataset::distance::manhattan),
        }
    }

    fn conflict_radius_with(&self, c: &[f64], dist: impl Fn(&[f64], &[f64]) -> f64 + Copy) -> f64 {
        let mut best = f64::INFINITY;
        // Brute buffer first (most recent balls are usually nearby).
        for b in self.indexed as u32..self.len() as u32 {
            best = best.min(self.gap_with(b, c, dist));
        }
        if self.root != NO_NODE {
            self.query_rec(self.root, c, &mut best, dist);
        }
        best
    }

    fn query_rec(
        &self,
        node: u32,
        c: &[f64],
        best: &mut f64,
        dist: impl Fn(&[f64], &[f64]) -> f64 + Copy,
    ) {
        match &self.nodes[node as usize] {
            ConflictNode::Leaf { balls } => {
                for &b in balls {
                    *best = best.min(self.gap_with(b, c, dist));
                }
            }
            ConflictNode::Split {
                dim,
                value,
                r_max,
                left,
                right,
            } => {
                let diff = c[*dim] - value;
                let (near, far) = if diff <= 0.0 {
                    (*left, *right)
                } else {
                    (*right, *left)
                };
                self.query_rec(near, c, best, dist);
                // Any ball on the far side is at least |diff| away from c
                // on this axis, so its gap is ≥ |diff| − r_max.
                if (diff.abs() - r_max) * CONFLICT_PRUNE_SLACK <= *best {
                    self.query_rec(far, c, best, dist);
                }
            }
        }
    }

    /// Number of inserted balls whose sphere overlaps the sphere
    /// `(c, radius)` — the exact predicate of `GranularBall::overlaps`:
    /// `‖center_b − c‖ < r_b + radius − eps`.
    pub(crate) fn count_overlapping(&self, c: &[f64], radius: f64, eps: f64) -> usize {
        match self.metric {
            Metric::SqEuclidean | Metric::Cosine => {
                self.count_overlapping_with(c, radius, eps, euclidean)
            }
            Metric::Manhattan => {
                self.count_overlapping_with(c, radius, eps, gb_dataset::distance::manhattan)
            }
        }
    }

    fn count_overlapping_with(
        &self,
        c: &[f64],
        radius: f64,
        eps: f64,
        dist: impl Fn(&[f64], &[f64]) -> f64 + Copy,
    ) -> usize {
        let mut count = 0;
        for b in self.indexed as u32..self.len() as u32 {
            if dist(self.center(b), c) < self.radii[b as usize] + radius - eps {
                count += 1;
            }
        }
        if self.root != NO_NODE {
            self.count_rec(self.root, c, radius, eps, &mut count, dist);
        }
        count
    }

    fn count_rec(
        &self,
        node: u32,
        c: &[f64],
        radius: f64,
        eps: f64,
        count: &mut usize,
        dist: impl Fn(&[f64], &[f64]) -> f64 + Copy,
    ) {
        match &self.nodes[node as usize] {
            ConflictNode::Leaf { balls } => {
                for &b in balls {
                    if dist(self.center(b), c) < self.radii[b as usize] + radius - eps {
                        *count += 1;
                    }
                }
            }
            ConflictNode::Split {
                dim,
                value,
                r_max,
                left,
                right,
            } => {
                let diff = c[*dim] - value;
                let (near, far) = if diff <= 0.0 {
                    (*left, *right)
                } else {
                    (*right, *left)
                };
                self.count_rec(near, c, radius, eps, count, dist);
                // A far-side ball is ≥ |diff| from c, so it overlaps only if
                // |diff| < r_max + radius − eps. Relaxed so rounding can
                // only cause extra visits, never a miss.
                if diff.abs() * CONFLICT_PRUNE_SLACK < r_max + radius - eps {
                    self.count_rec(far, c, radius, eps, count, dist);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_dataset::rng::rng_from_seed;
    use rand::Rng;

    fn random_balls(n: usize, d: usize, seed: u64) -> Vec<(Vec<f64>, f64)> {
        let mut rng = rng_from_seed(seed);
        (0..n)
            .map(|_| {
                let c: Vec<f64> = (0..d).map(|_| rng.gen_range(0.0..10.0)).collect();
                let r = rng.gen_range(0.0..0.6);
                (c, r)
            })
            .collect()
    }

    #[test]
    fn conflict_radius_matches_brute_min() {
        let balls = random_balls(500, 3, 1);
        let mut idx = BallConflictIndex::new(3);
        let mut rng = rng_from_seed(2);
        for (c, r) in &balls {
            let q: Vec<f64> = (0..3).map(|_| rng.gen_range(0.0..10.0)).collect();
            let brute = (0..idx.len() as u32)
                .map(|b| (euclidean(idx.center(b), &q) - idx.radii[b as usize]).max(0.0))
                .fold(f64::INFINITY, f64::min);
            assert_eq!(idx.conflict_radius(&q), brute);
            idx.push(c, *r);
        }
    }

    #[test]
    fn overlap_count_matches_brute_scan() {
        let balls = random_balls(800, 2, 3);
        let mut idx = BallConflictIndex::new(2);
        for (i, (c, r)) in balls.iter().enumerate() {
            let brute = balls[..i]
                .iter()
                .filter(|(bc, br)| euclidean(bc, c) < br + r - 1e-9)
                .count();
            assert_eq!(idx.count_overlapping(c, *r, 1e-9), brute, "ball {i}");
            idx.push(c, *r);
        }
    }

    #[test]
    fn empty_index_answers() {
        let idx = BallConflictIndex::new(4);
        assert_eq!(idx.conflict_radius(&[0.0; 4]), f64::INFINITY);
        assert_eq!(idx.count_overlapping(&[0.0; 4], 1.0, 1e-9), 0);
    }
}
