//! The granular ball (GB).
//!
//! A GB `gb = (O, (c, r, l))` covers a set of samples `O` with a center `c`,
//! radius `r` and class label `l`. Under RD-GBG the center is an actual
//! sample and the ball is *pure* (every member shares `l`) and geometrically
//! exact (every member lies within `r` of `c`) — the paper's fix for the
//! classic GBG definition (Eq. 1) that lets samples fall outside their ball.
//!
//! The same struct also serves the purity-threshold k-division GBG used by
//! the GGBS/IGBS baselines, where the center is a centroid (`center_row` is
//! `None`) and `purity` may be below 1.

use gb_dataset::distance::euclidean;
use gb_dataset::Dataset;
use serde::{Deserialize, Serialize};

/// A granular ball over rows of some dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GranularBall {
    /// Center coordinates in feature space.
    pub center: Vec<f64>,
    /// Ball radius (0 for singleton/orphan balls).
    pub radius: f64,
    /// Majority (RD-GBG: unanimous) class label of the members.
    pub label: u32,
    /// Row indices of the member samples (center sample included when the
    /// center is a sample).
    pub members: Vec<usize>,
    /// Row index of the center when the center is an actual sample
    /// (RD-GBG); `None` when the center is a computed centroid (k-division
    /// GBG per Eq. 1).
    pub center_row: Option<usize>,
    /// Fraction of members whose label equals `label` (1.0 for RD-GBG).
    pub purity: f64,
}

impl GranularBall {
    /// Number of member samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the ball has no members (never produced by RD-GBG).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Distance from this ball's center to a point.
    #[must_use]
    pub fn center_distance(&self, point: &[f64]) -> f64 {
        euclidean(&self.center, point)
    }

    /// True when `point` lies within the ball (distance ≤ radius + `eps`).
    #[must_use]
    pub fn contains_point(&self, point: &[f64], eps: f64) -> bool {
        self.center_distance(point) <= self.radius + eps
    }

    /// True when this ball's sphere overlaps `other`'s (center distance
    /// strictly less than the radius sum minus `eps`).
    #[must_use]
    pub fn overlaps(&self, other: &GranularBall, eps: f64) -> bool {
        self.center_distance(&other.center) < self.radius + other.radius - eps
    }

    /// Recomputes purity against a dataset's labels (diagnostic).
    #[must_use]
    pub fn measured_purity(&self, data: &Dataset) -> f64 {
        if self.members.is_empty() {
            return 1.0;
        }
        let hits = self
            .members
            .iter()
            .filter(|&&i| data.label(i) == self.label)
            .count();
        hits as f64 / self.members.len() as f64
    }

    /// The member whose coordinate along `dim` is largest / smallest
    /// (`max = true` / `false`). Returns `None` for empty balls.
    #[must_use]
    pub fn extreme_member(&self, data: &Dataset, dim: usize, max: bool) -> Option<usize> {
        self.members.iter().copied().reduce(|best, cand| {
            let b = data.value(best, dim);
            let c = data.value(cand, dim);
            let better = if max { c > b } else { c < b };
            if better || (c == b && cand < best) {
                cand
            } else {
                best
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Dataset {
        Dataset::from_parts(
            vec![0.0, 0.0, 1.0, 0.0, 0.0, 2.0, 5.0, 5.0],
            vec![0, 0, 0, 1],
            2,
            2,
        )
    }

    fn ball() -> GranularBall {
        GranularBall {
            center: vec![0.0, 0.0],
            radius: 2.0,
            label: 0,
            members: vec![0, 1, 2],
            center_row: Some(0),
            purity: 1.0,
        }
    }

    #[test]
    fn containment_and_len() {
        let b = ball();
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert!(b.contains_point(&[0.0, 2.0], 1e-12));
        assert!(!b.contains_point(&[0.0, 2.1], 1e-12));
    }

    #[test]
    fn overlap_geometry() {
        let a = ball();
        let mut b = ball();
        b.center = vec![5.0, 0.0];
        b.radius = 2.9;
        assert!(!a.overlaps(&b, 1e-9)); // 2.0 + 2.9 < 5.0
        b.radius = 3.5;
        assert!(a.overlaps(&b, 1e-9)); // 2.0 + 3.5 > 5.0
    }

    #[test]
    fn tangent_balls_do_not_overlap() {
        let a = ball();
        let mut b = ball();
        b.center = vec![4.0, 0.0];
        b.radius = 2.0; // exactly tangent
        assert!(!a.overlaps(&b, 1e-9));
    }

    #[test]
    fn purity_measurement() {
        let d = data();
        let mut b = ball();
        assert_eq!(b.measured_purity(&d), 1.0);
        b.members.push(3); // heterogeneous member
        assert!((b.measured_purity(&d) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn extreme_members() {
        let d = data();
        let b = ball();
        assert_eq!(b.extreme_member(&d, 0, true), Some(1)); // x-max at (1,0)
        assert_eq!(b.extreme_member(&d, 1, true), Some(2)); // y-max at (0,2)
        assert_eq!(b.extreme_member(&d, 0, false), Some(0)); // tie (0,0)/(0,2) -> lower idx
        let empty = GranularBall {
            members: vec![],
            ..ball()
        };
        assert_eq!(empty.extreme_member(&d, 0, true), None);
    }
}
