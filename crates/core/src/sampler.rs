//! The common sampling interface shared by GBABS and every baseline.
//!
//! The paper plugs eight sampling methods in front of five classifiers; the
//! harness does the same through this trait. A sampler maps a training
//! dataset to a (possibly smaller, possibly partly synthetic) training
//! dataset.

use crate::borderline::gbabs;
use crate::rdgbg::RdGbgConfig;
use gb_dataset::index::GranulationBackend;
use gb_dataset::Dataset;

/// Outcome of applying a sampling method to a training set.
#[derive(Debug, Clone)]
pub struct SampleResult {
    /// The dataset to train on.
    pub dataset: Dataset,
    /// For pure undersamplers: the kept row indices into the input dataset
    /// (sorted). `None` when the output contains synthetic rows (SMOTE
    /// family) or duplicated rows.
    pub kept_rows: Option<Vec<usize>>,
}

impl SampleResult {
    /// |output| / |input| — the paper's sampling ratio.
    #[must_use]
    pub fn ratio(&self, input: &Dataset) -> f64 {
        self.dataset.n_samples() as f64 / input.n_samples().max(1) as f64
    }
}

/// A general sampling method in the sense of the paper's §I: applicable to
/// any dataset and any downstream classifier.
pub trait Sampler {
    /// Short method name as used in the paper's tables ("GBABS", "GGBS", …).
    fn name(&self) -> &'static str;

    /// Produces the sampled training set. `seed` controls all randomness.
    fn sample(&self, data: &Dataset, seed: u64) -> SampleResult;
}

/// The identity "sampler" — the paper's unsampled baseline column ("Ori").
#[derive(Debug, Clone, Copy, Default)]
pub struct NoSampling;

impl Sampler for NoSampling {
    fn name(&self) -> &'static str {
        "Ori"
    }

    fn sample(&self, data: &Dataset, _seed: u64) -> SampleResult {
        SampleResult {
            dataset: data.clone(),
            kept_rows: Some((0..data.n_samples()).collect()),
        }
    }
}

/// GBABS as a [`Sampler`].
#[derive(Debug, Clone, Copy)]
pub struct GbabsSampler {
    /// Density tolerance ρ forwarded to RD-GBG (paper default 5).
    pub density_tolerance: usize,
    /// Neighbour-index backend for the granulation (output-invariant).
    pub backend: GranulationBackend,
    /// Distance metric the granulation (and therefore the borderline
    /// detection) runs under.
    pub metric: gb_dataset::distance::Metric,
}

impl Default for GbabsSampler {
    fn default() -> Self {
        Self {
            density_tolerance: 5,
            backend: GranulationBackend::Auto,
            metric: gb_dataset::distance::Metric::SqEuclidean,
        }
    }
}

impl Sampler for GbabsSampler {
    fn name(&self) -> &'static str {
        "GBABS"
    }

    fn sample(&self, data: &Dataset, seed: u64) -> SampleResult {
        let res = gbabs(
            data,
            &RdGbgConfig {
                density_tolerance: self.density_tolerance,
                seed,
                backend: self.backend,
                metric: self.metric,
                ..Default::default()
            },
        );
        SampleResult {
            dataset: res.sampled_dataset(data),
            kept_rows: Some(res.sampled_rows),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_dataset::catalog::DatasetId;

    #[test]
    fn no_sampling_is_identity() {
        let d = DatasetId::S2.generate(0.1, 1);
        let out = NoSampling.sample(&d, 0);
        assert_eq!(out.dataset.n_samples(), d.n_samples());
        assert!((out.ratio(&d) - 1.0).abs() < 1e-12);
        assert_eq!(out.kept_rows.unwrap().len(), d.n_samples());
    }

    #[test]
    fn gbabs_sampler_reports_subset() {
        let d = DatasetId::S5.generate(0.05, 2);
        let out = GbabsSampler::default().sample(&d, 3);
        assert!(out.ratio(&d) <= 1.0);
        let kept = out.kept_rows.expect("undersampler");
        assert_eq!(kept.len(), out.dataset.n_samples());
        // rows must match selected content
        for (pos, &row) in kept.iter().enumerate() {
            assert_eq!(out.dataset.row(pos), d.row(row));
            assert_eq!(out.dataset.label(pos), d.label(row));
        }
    }

    #[test]
    fn names() {
        assert_eq!(NoSampling.name(), "Ori");
        assert_eq!(GbabsSampler::default().name(), "GBABS");
    }
}
