//! Diagnostics over ball covers.
//!
//! These checks encode the paper's three granulation criteria
//! (*approximation*, *representativeness*, *completeness*, §IV-B) as
//! measurable quantities, and are reused by the property-test suite and the
//! ablation benches.

use crate::ball::GranularBall;
use crate::rdgbg::RdGbgModel;
use gb_dataset::Dataset;

/// Summary statistics of a ball cover.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverStats {
    /// Number of balls.
    pub n_balls: usize,
    /// Number of radius-0 balls.
    pub n_singletons: usize,
    /// Mean members per ball (representativeness).
    pub mean_ball_size: f64,
    /// Largest ball size.
    pub max_ball_size: usize,
    /// Mean radius over balls with radius > 0.
    pub mean_radius: f64,
    /// Minimum purity over balls (1.0 for RD-GBG covers).
    pub min_purity: f64,
    /// Number of overlapping ball pairs (0 for RD-GBG covers).
    pub overlapping_pairs: usize,
    /// Fraction of dataset rows covered by some ball (completeness; noise
    /// rows are intentionally uncovered).
    pub coverage: f64,
}

/// Computes [`CoverStats`] for a set of balls over `data`.
#[must_use]
pub fn cover_stats(data: &Dataset, balls: &[GranularBall]) -> CoverStats {
    let n_balls = balls.len();
    let n_singletons = balls.iter().filter(|b| b.radius == 0.0).count();
    let total_members: usize = balls.iter().map(GranularBall::len).sum();
    let mean_ball_size = if n_balls == 0 {
        0.0
    } else {
        total_members as f64 / n_balls as f64
    };
    let max_ball_size = balls.iter().map(GranularBall::len).max().unwrap_or(0);
    let positive: Vec<f64> = balls
        .iter()
        .filter(|b| b.radius > 0.0)
        .map(|b| b.radius)
        .collect();
    let mean_radius = if positive.is_empty() {
        0.0
    } else {
        positive.iter().sum::<f64>() / positive.len() as f64
    };
    let min_purity = balls
        .iter()
        .map(|b| b.measured_purity(data))
        .fold(1.0, f64::min);
    let overlapping_pairs = count_overlaps(balls, 1e-9);
    let mut covered = vec![false; data.n_samples()];
    for b in balls {
        for &m in &b.members {
            covered[m] = true;
        }
    }
    let coverage = covered.iter().filter(|&&c| c).count() as f64 / data.n_samples().max(1) as f64;
    CoverStats {
        n_balls,
        n_singletons,
        mean_ball_size,
        max_ball_size,
        mean_radius,
        min_purity,
        overlapping_pairs,
        coverage,
    }
}

/// Number of unordered ball pairs whose spheres overlap beyond `eps`.
/// The paper's key structural complaint about classic GBG; RD-GBG covers
/// must return 0.
///
/// Runs on the same max-radius KD-tree that answers RD-GBG's Eq.-4
/// conflict-radius query (the private `conflict` module): balls are
/// inserted one by
/// one and each counts its overlaps against the balls already indexed, so
/// the scan is O(m·log m) in practice instead of the O(m²) pairwise loop —
/// with bit-identical counts (the leaf predicate is exactly
/// [`GranularBall::overlaps`]; see `count_overlaps_pairwise`-vs-indexed
/// tests below).
#[must_use]
pub fn count_overlaps(balls: &[GranularBall], eps: f64) -> usize {
    let Some(first) = balls.first() else {
        return 0;
    };
    let mut index = crate::conflict::BallConflictIndex::new(first.center.len());
    let mut count = 0;
    for b in balls {
        count += index.count_overlapping(&b.center, b.radius, eps);
        index.push(&b.center, b.radius);
    }
    count
}

/// Reference O(m²) implementation of [`count_overlaps`], kept as the oracle
/// the indexed version is asserted against (see the `overlap_count_*`
/// tests). Prefer [`count_overlaps`] everywhere else.
#[must_use]
pub fn count_overlaps_pairwise(balls: &[GranularBall], eps: f64) -> usize {
    let mut count = 0;
    for (i, a) in balls.iter().enumerate() {
        for b in balls.iter().skip(i + 1) {
            if a.overlaps(b, eps) {
                count += 1;
            }
        }
    }
    count
}

/// Verifies the RD-GBG structural invariants, returning a human-readable
/// violation description or `Ok(())`. Used by tests and debug assertions.
///
/// # Errors
/// Returns `Err` describing the first violated invariant.
pub fn verify_rdgbg_invariants(data: &Dataset, model: &RdGbgModel) -> Result<(), String> {
    let mut seen = vec![0u32; data.n_samples()];
    for (bi, b) in model.balls.iter().enumerate() {
        if b.is_empty() {
            return Err(format!("ball {bi} is empty"));
        }
        if b.measured_purity(data) < 1.0 {
            return Err(format!("ball {bi} is impure"));
        }
        for &m in &b.members {
            if !b.contains_point(data.row(m), 1e-9) {
                return Err(format!("row {m} outside ball {bi}"));
            }
            seen[m] += 1;
        }
    }
    for &r in &model.noise {
        seen[r] += 1;
    }
    if let Some(row) = seen.iter().position(|&c| c != 1) {
        return Err(format!(
            "row {row} covered {} times (must be exactly once across balls + noise)",
            seen[row]
        ));
    }
    let overlaps = count_overlaps(&model.balls, 1e-9);
    if overlaps > 0 {
        return Err(format!("{overlaps} overlapping ball pairs"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rdgbg::{rd_gbg, RdGbgConfig};
    use gb_dataset::catalog::DatasetId;

    #[test]
    fn stats_on_rdgbg_cover() {
        let data = DatasetId::S5.generate(0.05, 1);
        let model = rd_gbg(&data, &RdGbgConfig::default());
        let stats = cover_stats(&data, &model.balls);
        assert_eq!(stats.min_purity, 1.0);
        assert_eq!(stats.overlapping_pairs, 0);
        assert!(stats.coverage > 0.9, "coverage {}", stats.coverage);
        assert!(stats.mean_ball_size >= 1.0);
        assert!(stats.n_balls > 0);
        assert!(verify_rdgbg_invariants(&data, &model).is_ok());
    }

    #[test]
    fn overlap_counter_detects_planted_overlap() {
        let mk = |x: f64, r: f64| GranularBall {
            center: vec![x],
            radius: r,
            label: 0,
            members: vec![0],
            center_row: None,
            purity: 1.0,
        };
        let balls = vec![mk(0.0, 1.0), mk(1.5, 1.0), mk(10.0, 1.0)];
        assert_eq!(count_overlaps(&balls, 1e-9), 1);
        assert_eq!(count_overlaps_pairwise(&balls, 1e-9), 1);
    }

    #[test]
    fn overlap_count_indexed_matches_pairwise_on_real_covers() {
        // The restricted cover (0 overlaps), the overlap-ablation cover
        // (many overlaps), and a pile of random balls must all agree with
        // the O(m²) oracle exactly.
        let data = DatasetId::S5.generate(0.05, 4);
        let restricted = rd_gbg(&data, &RdGbgConfig::default());
        let unrestricted = rd_gbg(
            &data,
            &RdGbgConfig {
                restrict_overlap: false,
                ..RdGbgConfig::default()
            },
        );
        for balls in [&restricted.balls, &unrestricted.balls] {
            assert_eq!(
                count_overlaps(balls, 1e-9),
                count_overlaps_pairwise(balls, 1e-9)
            );
        }
        assert_eq!(count_overlaps(&restricted.balls, 1e-9), 0);
        assert!(count_overlaps(&unrestricted.balls, 1e-9) > 0);
    }

    #[test]
    fn overlap_count_indexed_matches_pairwise_on_random_balls() {
        use gb_dataset::rng::rng_from_seed;
        use rand::Rng;
        let mut rng = rng_from_seed(11);
        let balls: Vec<GranularBall> = (0..400)
            .map(|i| GranularBall {
                center: vec![rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)],
                radius: rng.gen_range(0.0..0.7),
                label: 0,
                members: vec![i],
                center_row: None,
                purity: 1.0,
            })
            .collect();
        let expected = count_overlaps_pairwise(&balls, 1e-9);
        assert!(expected > 0, "test should exercise overlapping geometry");
        assert_eq!(count_overlaps(&balls, 1e-9), expected);
    }

    #[test]
    fn verifier_flags_double_cover() {
        let data = Dataset::from_parts(vec![0.0, 1.0], vec![0, 0], 1, 1);
        let b = GranularBall {
            center: vec![0.0],
            radius: 1.0,
            label: 0,
            members: vec![0, 1],
            center_row: Some(0),
            purity: 1.0,
        };
        let model = RdGbgModel {
            balls: vec![b.clone(), b],
            noise: vec![],
            orphan_count: 0,
            iterations: 1,
            metric: gb_dataset::distance::Metric::SqEuclidean,
        };
        let err = verify_rdgbg_invariants(&data, &model).unwrap_err();
        assert!(
            err.contains("covered 2 times") || err.contains("overlap"),
            "{err}"
        );
    }

    #[test]
    fn verifier_flags_impurity() {
        let data = Dataset::from_parts(vec![0.0, 1.0], vec![0, 1], 1, 2);
        let model = RdGbgModel {
            balls: vec![GranularBall {
                center: vec![0.0],
                radius: 1.0,
                label: 0,
                members: vec![0, 1],
                center_row: Some(0),
                purity: 1.0,
            }],
            noise: vec![],
            orphan_count: 0,
            iterations: 1,
            metric: gb_dataset::distance::Metric::SqEuclidean,
        };
        let err = verify_rdgbg_invariants(&data, &model).unwrap_err();
        assert!(err.contains("impure"), "{err}");
    }
}
