//! GBABS — Granular-Ball-based Approximate Borderline Sampling
//! (Algorithm 2 of the paper).
//!
//! Plain center-to-center distances cannot locate class boundaries (the
//! paper's Fig. 4 counter-example), so GBABS scans every feature dimension
//! instead: ball centers are ordered along the dimension, and every
//! *adjacent* pair of centers with different labels marks both balls as
//! borderline. For each such heterogeneous adjacency the facing extreme
//! samples — the member of the left ball with the largest coordinate and
//! the member of the right ball with the smallest coordinate in that
//! dimension — are the approximate borderline samples. The union over all
//! dimensions (without duplicates) is the sampled set `S ⊆ D`.
//!
//! The per-dimension adjacency relation is answered by the shared
//! `BallConflictIndex` (the private `conflict` module — the same
//! structure that backs RD-GBG's Eq.-4 conflict radius and the overlap
//! diagnostics) via its heterogeneous-adjacency query (ascending
//! `(center[dim], ball id)` order, one flat center arena for all `p`
//! walks). Only the
//! facing-extreme-member selection touches the dataset. A cover whose
//! balls all share one label short-circuits: no heterogeneous adjacency
//! can exist on any dimension.
//!
//! Total cost is `O(t·q·N + p·m·log m)` with `m` balls — the linearity the
//! paper claims in §IV-C.

use crate::ball::GranularBall;
use crate::conflict::BallConflictIndex;
use crate::rdgbg::{rd_gbg_with_progress, ProgressSink, RdGbgConfig, RdGbgModel};
use gb_dataset::Dataset;
use gb_obs::ProgressEvent;
use std::time::Instant;

/// Result of a GBABS run.
#[derive(Debug, Clone)]
pub struct GbabsResult {
    /// Sorted, de-duplicated row indices of the borderline samples.
    pub sampled_rows: Vec<usize>,
    /// Indices (into `model.balls`) of balls flagged borderline.
    pub borderline_balls: Vec<usize>,
    /// The underlying RD-GBG model.
    pub model: RdGbgModel,
}

impl GbabsResult {
    /// Sampling ratio |S| / |D| as reported in the paper's Fig. 6.
    #[must_use]
    pub fn sampling_ratio(&self, data: &Dataset) -> f64 {
        self.sampled_rows.len() as f64 / data.n_samples().max(1) as f64
    }

    /// Materializes the sampled dataset.
    #[must_use]
    pub fn sampled_dataset(&self, data: &Dataset) -> Dataset {
        data.select(&self.sampled_rows)
    }
}

/// Detects borderline balls and collects the borderline samples from an
/// existing ball cover. Exposed separately from [`gbabs`] so callers can
/// reuse one RD-GBG model across analyses.
#[must_use]
pub fn borderline_from_model(data: &Dataset, model: &RdGbgModel) -> (Vec<usize>, Vec<usize>) {
    let m = model.balls.len();
    let p = data.n_features();
    let mut is_borderline = vec![false; m];
    let mut sampled = vec![false; data.n_samples()];

    let labels: Vec<u32> = model.balls.iter().map(|b| b.label).collect();
    // Single-label covers (single-class data) have no heterogeneous
    // adjacency on any dimension — skip the p ordered walks entirely.
    let heterogeneous = labels.windows(2).any(|w| w[0] != w[1]);
    if heterogeneous {
        let index = BallConflictIndex::from_cover(model.balls.iter(), p);
        let mut order = Vec::with_capacity(m);
        for dim in 0..p {
            index.for_each_heterogeneous_adjacent(dim, &labels, &mut order, |left, right| {
                is_borderline[left] = true;
                is_borderline[right] = true;
                // Facing extreme samples along this dimension.
                if let Some(row) = model.balls[left].extreme_member(data, dim, true) {
                    sampled[row] = true;
                }
                if let Some(row) = model.balls[right].extreme_member(data, dim, false) {
                    sampled[row] = true;
                }
            });
        }
    }

    let rows: Vec<usize> = (0..data.n_samples()).filter(|&r| sampled[r]).collect();
    let balls: Vec<usize> = (0..m).filter(|&b| is_borderline[b]).collect();
    (rows, balls)
}

/// Runs the full GBABS pipeline: RD-GBG granulation followed by borderline
/// detection and sampling.
#[must_use]
pub fn gbabs(data: &Dataset, config: &RdGbgConfig) -> GbabsResult {
    gbabs_with_progress(data, config, None)
}

/// [`gbabs`] with an optional progress sink: the sink receives one
/// [`ProgressEvent::Granulate`] per RD-GBG iteration and a final
/// [`ProgressEvent::Borderline`] summary after sampling. The sink only
/// observes — output is bit-identical with and without it.
#[must_use]
pub fn gbabs_with_progress(
    data: &Dataset,
    config: &RdGbgConfig,
    mut progress: Option<ProgressSink<'_>>,
) -> GbabsResult {
    let started = Instant::now();
    // Reborrow through a forwarding closure: `&mut dyn FnMut` is invariant
    // in its pointee, so the sink cannot be lent to rd_gbg and reused
    // afterwards directly.
    let wants_progress = progress.is_some();
    let model = {
        let mut forward = |e: &ProgressEvent| {
            if let Some(sink) = progress.as_mut() {
                sink(e);
            }
        };
        let sink: Option<ProgressSink<'_>> = if wants_progress {
            Some(&mut forward)
        } else {
            None
        };
        rd_gbg_with_progress(data, config, sink)
    };
    let (sampled_rows, borderline_balls) = borderline_from_model(data, &model);
    if let Some(sink) = progress.as_mut() {
        sink(&ProgressEvent::Borderline {
            balls: model.balls.len(),
            borderline: borderline_balls.len(),
            sampled: sampled_rows.len(),
            elapsed_us: u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX),
        });
    }
    GbabsResult {
        sampled_rows,
        borderline_balls,
        model,
    }
}

/// Helper used in tests and docs: borderline detection over a hand-built
/// ball list (bypassing RD-GBG).
#[must_use]
pub fn borderline_over_balls(data: &Dataset, balls: Vec<GranularBall>) -> (Vec<usize>, Vec<usize>) {
    let model = RdGbgModel {
        balls,
        noise: Vec::new(),
        orphan_count: 0,
        iterations: 0,
        metric: gb_dataset::distance::Metric::SqEuclidean,
    };
    borderline_from_model(data, &model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_dataset::catalog::DatasetId;

    /// 1-D layout: class 0 on [0,1], class 1 on [3,4], class 0 on [6,7].
    /// Middle ball is borderline toward both sides.
    fn three_ball_line() -> (Dataset, Vec<GranularBall>) {
        let xs = [0.0, 0.5, 1.0, 3.0, 3.5, 4.0, 6.0, 6.5, 7.0];
        let labels = [0, 0, 0, 1, 1, 1, 0, 0, 0];
        let data = Dataset::from_parts(xs.to_vec(), labels.to_vec(), 1, 2);
        let mk = |center: f64, rows: &[usize], label: u32| GranularBall {
            center: vec![center],
            radius: 0.5,
            label,
            members: rows.to_vec(),
            center_row: Some(rows[0]),
            purity: 1.0,
        };
        let balls = vec![
            mk(0.5, &[0, 1, 2], 0),
            mk(3.5, &[3, 4, 5], 1),
            mk(6.5, &[6, 7, 8], 0),
        ];
        (data, balls)
    }

    #[test]
    fn facing_extremes_are_sampled() {
        let (data, balls) = three_ball_line();
        let (rows, borderline) = borderline_over_balls(&data, balls);
        // adjacencies: (b0,b1) het -> rows {2 (max of b0), 3 (min of b1)};
        // (b1,b2) het -> rows {5, 6}
        assert_eq!(rows, vec![2, 3, 5, 6]);
        assert_eq!(borderline, vec![0, 1, 2]);
    }

    #[test]
    fn homogeneous_adjacency_is_ignored() {
        let (data, mut balls) = three_ball_line();
        balls[1].label = 0; // all same class now
        let (rows, borderline) = borderline_over_balls(&data, balls);
        assert!(rows.is_empty());
        assert!(borderline.is_empty());
    }

    #[test]
    fn interior_balls_are_not_borderline() {
        // 5 balls: 0 0 | 1 | 0 0 along a line — the outermost class-0 balls
        // are NOT adjacent to the class-1 ball.
        let xs: Vec<f64> = vec![0.0, 2.0, 4.0, 6.0, 8.0];
        let labels = vec![0, 0, 1, 0, 0];
        let data = Dataset::from_parts(xs.clone(), labels, 1, 2);
        let balls: Vec<GranularBall> = (0..5)
            .map(|i| GranularBall {
                center: vec![xs[i]],
                radius: 0.4,
                label: data.label(i),
                members: vec![i],
                center_row: Some(i),
                purity: 1.0,
            })
            .collect();
        let (_, borderline) = borderline_over_balls(&data, balls);
        assert_eq!(borderline, vec![1, 2, 3]);
    }

    #[test]
    fn sampled_rows_are_unique_subset() {
        let data = DatasetId::S5.generate(0.05, 4);
        let res = gbabs(&data, &RdGbgConfig::default());
        let mut sorted = res.sampled_rows.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), res.sampled_rows.len(), "duplicates in S");
        assert!(res.sampled_rows.iter().all(|&r| r < data.n_samples()));
        assert!(res.sampling_ratio(&data) > 0.0 && res.sampling_ratio(&data) <= 1.0);
    }

    #[test]
    fn sampled_dataset_preserves_schema() {
        let data = DatasetId::S2.generate(0.2, 4);
        let res = gbabs(&data, &RdGbgConfig::default());
        let s = res.sampled_dataset(&data);
        assert_eq!(s.n_features(), data.n_features());
        assert_eq!(s.n_classes(), data.n_classes());
        assert_eq!(s.n_samples(), res.sampled_rows.len());
    }

    #[test]
    fn noise_rows_never_sampled() {
        use gb_dataset::noise::inject_class_noise;
        let clean = DatasetId::S5.generate(0.05, 8);
        let (noisy, _) = inject_class_noise(&clean, 0.2, 3);
        let res = gbabs(&noisy, &RdGbgConfig::default());
        for &r in &res.model.noise {
            assert!(
                !res.sampled_rows.contains(&r),
                "detected-noise row {r} leaked into S"
            );
        }
    }

    #[test]
    fn compression_on_simple_boundary() {
        // banana-like data has a simple curved boundary: GBABS should keep
        // well under the full dataset (paper reports ~29% at full scale).
        let data = DatasetId::S5.generate(0.2, 6);
        let res = gbabs(&data, &RdGbgConfig::default());
        let ratio = res.sampling_ratio(&data);
        assert!(ratio < 0.8, "expected compression, ratio = {ratio}");
    }

    #[test]
    fn multiclass_borderline_detection() {
        let data = DatasetId::S6.generate(0.1, 5);
        let res = gbabs(&data, &RdGbgConfig::default());
        // every class with >0 samples should contribute borderline samples
        // in a multi-class blob layout
        let s = res.sampled_dataset(&data);
        let present = s.class_counts().iter().filter(|&&c| c > 0).count();
        assert!(present >= 3, "only {present} classes sampled");
    }
}
