//! RD-GBG — Restricted Diffusion-based Granular-Ball Generation
//! (Algorithm 1 of the paper).
//!
//! The dataset starts as the *undivided set* `U`. Each global iteration
//! draws one random candidate center per class still present in `U − L`
//! (largest classes first), vets each candidate with the local-density rules
//! (Eq. 2), grows a pure ball around every surviving center by diffusion
//! stopped at the first heterogeneous sample (Eq. 3) and at the surface of
//! every previously built ball (Eqs. 4–6), and removes the covered samples
//! from `U`. Iteration ends when every undivided sample is low-density
//! (`U ⊆ L`); the leftovers become radius-0 *orphan* balls.
//!
//! Properties guaranteed by construction (and property-tested):
//! * every ball is pure (purity 1.0),
//! * balls never overlap,
//! * every input row ends up in exactly one ball or in the detected-noise
//!   list.

use crate::ball::GranularBall;
use gb_dataset::distance::euclidean;
use gb_dataset::rng::rng_from_seed;
use gb_dataset::Dataset;
use rand::Rng;

/// Configuration for RD-GBG.
#[derive(Debug, Clone, Copy)]
pub struct RdGbgConfig {
    /// Density tolerance ρ: size of the neighbourhood inspected when a
    /// candidate center's nearest neighbour is heterogeneous. The paper
    /// sweeps 3–19 (Figs. 10–11) and uses 5 as the working value.
    pub density_tolerance: usize,
    /// Seed for candidate-center selection.
    pub seed: u64,
    /// Enforce the conflict-radius restriction (Eqs. 4–6). Disabling it is
    /// an *ablation* of the paper's contribution 1: balls grow to their
    /// locally consistent radius regardless of previously built balls, so
    /// spheres may overlap (samples are still claimed exactly once).
    pub restrict_overlap: bool,
    /// Apply the local-density noise-removal rules (Eq. 2). Disabling it is
    /// an *ablation* of contribution 2: candidates whose nearest neighbour
    /// is heterogeneous are routed to the low-density set instead of
    /// triggering removals.
    pub detect_noise: bool,
}

impl Default for RdGbgConfig {
    fn default() -> Self {
        Self {
            density_tolerance: 5,
            seed: 0,
            restrict_overlap: true,
            detect_noise: true,
        }
    }
}

impl RdGbgConfig {
    /// Paper-default config with an explicit ρ.
    #[must_use]
    pub fn with_rho(density_tolerance: usize) -> Self {
        Self {
            density_tolerance,
            ..Self::default()
        }
    }
}

/// Output of RD-GBG: the ball cover plus bookkeeping.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RdGbgModel {
    /// All generated balls (diffusion balls first, then orphan balls).
    pub balls: Vec<GranularBall>,
    /// Rows removed as detected class noise (member of no ball).
    pub noise: Vec<usize>,
    /// Number of balls created in the orphan phase (radius 0).
    pub orphan_count: usize,
    /// Number of global iterations executed.
    pub iterations: usize,
}

impl RdGbgModel {
    /// Ball centers with labels, in generation order — the center set `C`
    /// consumed by GBABS.
    #[must_use]
    pub fn centers(&self) -> Vec<(&[f64], u32)> {
        self.balls
            .iter()
            .map(|b| (b.center.as_slice(), b.label))
            .collect()
    }

    /// Total number of samples covered by balls.
    #[must_use]
    pub fn covered_samples(&self) -> usize {
        self.balls.iter().map(GranularBall::len).sum()
    }
}

/// Internal per-candidate distance scan against the current `U`.
struct Scan {
    /// `(row, distance)` for every row in `U` except the candidate itself.
    dists: Vec<(usize, f64)>,
}

impl Scan {
    fn new(data: &Dataset, u: &[usize], center_row: usize) -> Self {
        let c = data.row(center_row);
        let dists = u
            .iter()
            .copied()
            .filter(|&row| row != center_row)
            .map(|row| (row, euclidean(data.row(row), c)))
            .collect();
        Self { dists }
    }

    fn exclude(&mut self, row: usize) {
        self.dists.retain(|&(r, _)| r != row);
    }

    /// Nearest row by `(distance, row)` order.
    fn nearest(&self) -> Option<(usize, f64)> {
        self.dists
            .iter()
            .copied()
            .min_by(|a, b| cmp_dist(*a, *b))
    }

    /// The `k` nearest rows (ascending), via a bounded insertion buffer.
    fn k_nearest(&self, k: usize) -> Vec<(usize, f64)> {
        let mut best: Vec<(usize, f64)> = Vec::with_capacity(k + 1);
        for &cand in &self.dists {
            let pos = best.partition_point(|&b| cmp_dist(b, cand) == std::cmp::Ordering::Less);
            if pos < k {
                best.insert(pos, cand);
                best.truncate(k);
            }
        }
        best
    }

    /// Minimum distance to a heterogeneous row, or `None` if all rows are
    /// homogeneous with `label`.
    fn nearest_heterogeneous(&self, data: &Dataset, label: u32) -> Option<f64> {
        self.dists
            .iter()
            .filter(|&&(row, _)| data.label(row) != label)
            .map(|&(_, d)| d)
            .min_by(|a, b| a.partial_cmp(b).expect("finite distances"))
    }

    /// Largest distance strictly below `bound` (locally consistent radius
    /// support, Eq. 3), or 0 when no row qualifies.
    fn max_below(&self, bound: f64) -> f64 {
        self.dists
            .iter()
            .map(|&(_, d)| d)
            .filter(|&d| d < bound)
            .fold(0.0, f64::max)
    }

    /// Largest distance ≤ `bound` (restricted maximum consistent radius,
    /// Eq. 6), or 0 when no row qualifies.
    fn max_at_most(&self, bound: f64) -> f64 {
        self.dists
            .iter()
            .map(|&(_, d)| d)
            .filter(|&d| d <= bound)
            .fold(0.0, f64::max)
    }

    /// Rows within `radius` of the center.
    fn within(&self, radius: f64) -> Vec<usize> {
        self.dists
            .iter()
            .filter(|&&(_, d)| d <= radius)
            .map(|&(row, _)| row)
            .collect()
    }
}

fn cmp_dist(a: (usize, f64), b: (usize, f64)) -> std::cmp::Ordering {
    a.1.partial_cmp(&b.1)
        .expect("finite distances")
        .then_with(|| a.0.cmp(&b.0))
}

/// What the local-density detection (Eq. 2 rules) decided for a candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CenterVerdict {
    /// Candidate passes; optional row to delete first (the `h == 1` noisy
    /// nearest neighbour).
    Accept { noisy_neighbor: Option<usize> },
    /// Candidate itself is class noise (`h == ρ`): remove it from `U`.
    CandidateIsNoise,
    /// Candidate is a low-density sample (`1 < h < ρ`): move to `L`.
    LowDensity,
}

/// Applies the paper's local-density center detection rules to a candidate
/// whose distances have already been scanned.
fn detect_center(
    data: &Dataset,
    scan: &Scan,
    label: u32,
    density_tolerance: usize,
) -> CenterVerdict {
    let Some((nn_row, _)) = scan.nearest() else {
        // No other undivided sample: nothing to diffuse into. Treat as
        // low-density; the orphan phase will pick it up.
        return CenterVerdict::LowDensity;
    };
    if data.label(nn_row) == label {
        return CenterVerdict::Accept {
            noisy_neighbor: None,
        };
    }
    // Nearest neighbour is heterogeneous: inspect the ρ-neighbourhood. When
    // fewer than ρ rows remain the neighbourhood shrinks accordingly.
    let hood = scan.k_nearest(density_tolerance);
    let effective = hood.len();
    let h = hood
        .iter()
        .filter(|&&(row, _)| data.label(row) != label)
        .count();
    if h == effective {
        CenterVerdict::CandidateIsNoise
    } else if h == 1 {
        CenterVerdict::Accept {
            noisy_neighbor: Some(nn_row),
        }
    } else {
        CenterVerdict::LowDensity
    }
}

/// Runs RD-GBG over `data`.
///
/// # Panics
/// Panics if `density_tolerance < 2` (the rules `h == 1`, `1 < h < ρ`,
/// `h == ρ` need ρ ≥ 2 to be distinguishable) or the dataset is empty.
#[must_use]
pub fn rd_gbg(data: &Dataset, config: &RdGbgConfig) -> RdGbgModel {
    assert!(
        config.density_tolerance >= 2,
        "density tolerance must be at least 2"
    );
    assert!(data.n_samples() > 0, "cannot granulate an empty dataset");

    let n = data.n_samples();
    let mut in_u = vec![true; n];
    let mut low_density = vec![false; n];
    let mut balls: Vec<GranularBall> = Vec::new();
    let mut noise: Vec<usize> = Vec::new();
    let mut rng = rng_from_seed(config.seed);
    let mut iterations = 0usize;

    loop {
        // T = U − L, grouped per class.
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); data.n_classes()];
        for row in 0..n {
            if in_u[row] && !low_density[row] {
                groups[data.label(row) as usize].push(row);
            }
        }
        // One random candidate per non-empty class, larger classes first.
        let mut order: Vec<usize> = (0..data.n_classes())
            .filter(|&c| !groups[c].is_empty())
            .collect();
        if order.is_empty() {
            break; // U ⊆ L
        }
        order.sort_by_key(|&c| std::cmp::Reverse(groups[c].len()));
        let candidates: Vec<usize> = order
            .iter()
            .map(|&c| groups[c][rng.gen_range(0..groups[c].len())])
            .collect();
        iterations += 1;

        for center_row in candidates {
            // A ball built earlier in this iteration may have absorbed the
            // candidate, or detection may have deleted it.
            if !in_u[center_row] || low_density[center_row] {
                continue;
            }
            let u: Vec<usize> = (0..n).filter(|&r| in_u[r]).collect();
            let label = data.label(center_row);
            let mut scan = Scan::new(data, &u, center_row);

            let verdict = if config.detect_noise {
                detect_center(data, &scan, label, config.density_tolerance)
            } else {
                // Ablation: no removals — a heterogeneous nearest neighbour
                // simply routes the candidate to the low-density set.
                match scan.nearest() {
                    Some((nn_row, _)) if data.label(nn_row) == label => CenterVerdict::Accept {
                        noisy_neighbor: None,
                    },
                    _ => CenterVerdict::LowDensity,
                }
            };
            match verdict {
                CenterVerdict::CandidateIsNoise => {
                    in_u[center_row] = false;
                    noise.push(center_row);
                    continue;
                }
                CenterVerdict::LowDensity => {
                    low_density[center_row] = true;
                    continue;
                }
                CenterVerdict::Accept { noisy_neighbor } => {
                    if let Some(bad) = noisy_neighbor {
                        in_u[bad] = false;
                        noise.push(bad);
                        scan.exclude(bad);
                    }
                }
            }

            // Locally consistent radius (Eq. 3): grow until the first
            // heterogeneous sample; unlimited if none remains.
            let cr = match scan.nearest_heterogeneous(data, label) {
                Some(d_het) => scan.max_below(d_het),
                None => scan.max_at_most(f64::INFINITY),
            };
            // Conflict radius (Eq. 4) against every previous ball; the
            // ablation drops the restriction (balls may then overlap).
            let c = data.row(center_row);
            let rconf = if config.restrict_overlap {
                balls
                    .iter()
                    .map(|b| (euclidean(&b.center, c) - b.radius).max(0.0))
                    .fold(f64::INFINITY, f64::min)
            } else {
                f64::INFINITY
            };
            // Final radius (Eq. 5 / Eq. 6).
            let r = if cr <= rconf {
                cr
            } else {
                scan.max_at_most(rconf)
            };

            if r > 0.0 {
                let mut members = scan.within(r);
                members.push(center_row);
                members.sort_unstable();
                for &m in &members {
                    debug_assert!(in_u[m]);
                    debug_assert_eq!(
                        data.label(m),
                        label,
                        "restricted diffusion must yield pure balls"
                    );
                    in_u[m] = false;
                }
                balls.push(GranularBall {
                    center: c.to_vec(),
                    radius: r,
                    label,
                    members,
                    center_row: Some(center_row),
                    purity: 1.0,
                });
            } else {
                // Center sits on the edge of U; defer to a later iteration
                // or the orphan phase.
                low_density[center_row] = true;
            }
        }
    }

    // Orphan phase: every remaining undivided (all low-density) sample
    // becomes its own radius-0 ball, honouring the completeness criterion.
    let mut orphan_count = 0usize;
    for (row, _) in in_u.iter().enumerate().filter(|(_, &alive)| alive) {
        balls.push(GranularBall {
            center: data.row(row).to_vec(),
            radius: 0.0,
            label: data.label(row),
            members: vec![row],
            center_row: Some(row),
            purity: 1.0,
        });
        orphan_count += 1;
    }

    RdGbgModel {
        balls,
        noise,
        orphan_count,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_dataset::catalog::DatasetId;

    fn two_clusters() -> Dataset {
        // class 0 near origin, class 1 near (10, 10): trivially separable
        let mut feats = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            feats.push((i % 5) as f64 * 0.1);
            feats.push((i / 5) as f64 * 0.1);
            labels.push(0);
        }
        for i in 0..20 {
            feats.push(10.0 + (i % 5) as f64 * 0.1);
            feats.push(10.0 + (i / 5) as f64 * 0.1);
            labels.push(1);
        }
        Dataset::from_parts(feats, labels, 2, 2)
    }

    fn check_invariants(data: &Dataset, model: &RdGbgModel) {
        // purity
        for b in &model.balls {
            assert_eq!(b.measured_purity(data), 1.0, "impure ball");
            assert!(!b.is_empty());
        }
        // exact partition of non-noise rows
        let mut seen = vec![0usize; data.n_samples()];
        for b in &model.balls {
            for &m in &b.members {
                seen[m] += 1;
            }
        }
        for &x in &model.noise {
            seen[x] += 1;
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "cover + noise must partition rows: {seen:?}"
        );
        // geometric membership
        for b in &model.balls {
            for &m in &b.members {
                assert!(
                    b.contains_point(data.row(m), 1e-9),
                    "member escapes its ball"
                );
            }
        }
        // pairwise non-overlap
        for (i, a) in model.balls.iter().enumerate() {
            for b in model.balls.iter().skip(i + 1) {
                assert!(!a.overlaps(b, 1e-9), "balls overlap");
            }
        }
    }

    #[test]
    fn separable_clusters_yield_few_large_balls() {
        let data = two_clusters();
        let model = rd_gbg(&data, &RdGbgConfig::default());
        check_invariants(&data, &model);
        assert!(model.noise.is_empty(), "no noise in clean data");
        // the two clusters should be covered compactly
        assert!(
            model.balls.len() <= 10,
            "expected compact cover, got {} balls",
            model.balls.len()
        );
        assert!(model.balls.iter().any(|b| b.len() >= 10));
    }

    #[test]
    fn invariants_on_catalog_samples() {
        for id in [DatasetId::S5, DatasetId::S2, DatasetId::S6] {
            let data = id.generate(0.05, 3);
            let model = rd_gbg(&data, &RdGbgConfig::default());
            check_invariants(&data, &model);
        }
    }

    #[test]
    fn isolated_noise_point_is_detected() {
        let mut data = two_clusters();
        // a lone class-1 sample deep inside class-0 territory
        data.push_row(&[0.2, 0.2], 1);
        let model = rd_gbg(
            &data,
            &RdGbgConfig {
                density_tolerance: 5,
                seed: 9,
                ..Default::default()
            },
        );
        check_invariants(&data, &model);
        assert!(
            model.noise.contains(&40),
            "planted noise row 40 not detected; noise = {:?}",
            model.noise
        );
    }

    #[test]
    fn determinism_under_seed() {
        let data = DatasetId::S5.generate(0.03, 1);
        let cfg = RdGbgConfig {
            density_tolerance: 5,
            seed: 123,
            ..Default::default()
        };
        let a = rd_gbg(&data, &cfg);
        let b = rd_gbg(&data, &cfg);
        assert_eq!(a.balls.len(), b.balls.len());
        for (x, y) in a.balls.iter().zip(b.balls.iter()) {
            assert_eq!(x.members, y.members);
            assert_eq!(x.radius, y.radius);
        }
    }

    #[test]
    fn single_class_dataset_gets_one_big_ball_cover() {
        let feats: Vec<f64> = (0..30).map(|i| i as f64 * 0.1).collect();
        let data = Dataset::from_parts(feats, vec![0; 30], 1, 1);
        let model = rd_gbg(&data, &RdGbgConfig::default());
        check_invariants(&data, &model);
        assert!(model.noise.is_empty());
        // with no heterogeneous samples, diffusion is unbounded: 1 ball
        assert_eq!(model.balls.len(), 1);
        assert_eq!(model.balls[0].len(), 30);
    }

    #[test]
    fn orphan_balls_have_radius_zero_and_one_member() {
        // two classes interleaved so tightly that most centers fail the
        // density test -> plenty of orphans
        let mut feats = Vec::new();
        let mut labels = Vec::new();
        for i in 0..30 {
            feats.push(i as f64 * 0.1);
            labels.push((i % 2) as u32);
        }
        let data = Dataset::from_parts(feats, labels, 1, 2);
        let model = rd_gbg(&data, &RdGbgConfig::default());
        check_invariants(&data, &model);
        for b in model.balls.iter().filter(|b| b.radius == 0.0) {
            assert_eq!(b.len(), 1);
        }
        assert!(model.orphan_count > 0);
    }

    #[test]
    fn overlap_ablation_produces_overlaps_but_stays_pure() {
        use crate::diagnostics::count_overlaps;
        let data = DatasetId::S5.generate(0.05, 4);
        let restricted = rd_gbg(&data, &RdGbgConfig::default());
        let unrestricted = rd_gbg(
            &data,
            &RdGbgConfig {
                restrict_overlap: false,
                ..RdGbgConfig::default()
            },
        );
        assert_eq!(count_overlaps(&restricted.balls, 1e-9), 0);
        assert!(
            count_overlaps(&unrestricted.balls, 1e-9) > 0,
            "ablation should reintroduce ball overlap"
        );
        // purity and exact partition still hold in the ablation
        for b in &unrestricted.balls {
            assert_eq!(b.measured_purity(&data), 1.0);
        }
        let covered: usize = unrestricted.balls.iter().map(|b| b.len()).sum();
        assert_eq!(covered + unrestricted.noise.len(), data.n_samples());
    }

    #[test]
    fn noise_detection_ablation_removes_nothing() {
        use gb_dataset::noise::inject_class_noise;
        let clean = DatasetId::S5.generate(0.05, 4);
        let (noisy, _) = inject_class_noise(&clean, 0.2, 3);
        let model = rd_gbg(
            &noisy,
            &RdGbgConfig {
                detect_noise: false,
                ..RdGbgConfig::default()
            },
        );
        assert!(model.noise.is_empty(), "ablation must not remove samples");
        let covered: usize = model.balls.iter().map(|b| b.len()).sum();
        assert_eq!(covered, noisy.n_samples(), "completeness without removals");
    }

    #[test]
    fn with_rho_helper_sets_defaults() {
        let cfg = RdGbgConfig::with_rho(9);
        assert_eq!(cfg.density_tolerance, 9);
        assert!(cfg.restrict_overlap);
        assert!(cfg.detect_noise);
    }

    #[test]
    #[should_panic(expected = "density tolerance")]
    fn rejects_tiny_rho()
    {
        let data = two_clusters();
        let _ = rd_gbg(
            &data,
            &RdGbgConfig {
                density_tolerance: 1,
                seed: 0,
                ..Default::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn rejects_empty() {
        let data = Dataset::from_parts(Vec::new(), Vec::new(), 1, 1);
        let _ = rd_gbg(&data, &RdGbgConfig::default());
    }

    #[test]
    fn injected_noise_triggers_detection() {
        use gb_dataset::noise::inject_class_noise;
        // a clean, well-separated base so every flipped label is isolated
        let clean = {
            let mut feats = Vec::new();
            let mut labels = Vec::new();
            for i in 0..200 {
                let c = i % 2;
                feats.push(c as f64 * 20.0 + (i / 2 % 10) as f64 * 0.1);
                feats.push((i / 20) as f64 * 0.1);
                labels.push(c as u32);
            }
            Dataset::from_parts(feats, labels, 2, 2)
        };
        let cfg = RdGbgConfig::default();
        let m_clean = rd_gbg(&clean, &cfg);
        assert!(m_clean.noise.is_empty());
        let (noisy, flipped) = inject_class_noise(&clean, 0.10, 5);
        let m = rd_gbg(&noisy, &cfg);
        // most removals should be actual planted flips
        let true_hits = m
            .noise
            .iter()
            .filter(|r| flipped.contains(r))
            .count();
        assert!(
            true_hits * 2 >= m.noise.len(),
            "precision too low: {true_hits}/{}",
            m.noise.len()
        );
        assert!(
            !m.noise.is_empty(),
            "isolated flipped labels must be detected as noise"
        );
    }
}
