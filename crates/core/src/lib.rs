//! # gbabs
//!
//! Rust reproduction of the paper **"Approximate Borderline Sampling using
//! Granular-Ball for Classification Tasks"** (Xie, Zhang, Xia — ICDE 2025,
//! arXiv:2506.02366).
//!
//! Two algorithms make up the contribution:
//!
//! * [`rdgbg::rd_gbg`] — **RD-GBG**: covers a labelled dataset with pure,
//!   pairwise non-overlapping granular balls grown by restricted diffusion,
//!   detecting class noise on the way (density tolerance ρ).
//! * [`borderline::gbabs`] — **GBABS**: flags borderline balls by scanning
//!   ball centers along every feature dimension for heterogeneous adjacent
//!   neighbours and samples the facing extreme members, yielding an
//!   approximate borderline sample set in linear time.
//!
//! Around them: [`gbknn`] (the original granular-ball classifier, surface
//! or center distance rule), [`diagnostics`] (cover invariant checks), the
//! [`sampler::Sampler`] trait every baseline implements, and serde
//! persistence on [`GranularBall`]/[`rdgbg::RdGbgModel`] so a granulation
//! can be stored and resampled later.
//!
//! ## Granulation backends
//!
//! The RD-GBG hot path runs against a pluggable neighbour index
//! ([`gb_dataset::index::NeighborIndex`]), selected by
//! [`RdGbgConfig::backend`] (CLI: `--backend`, harness:
//! `HarnessConfig::backend`). **Every backend produces a bit-identical
//! model** — same balls, radii, noise list, iteration count — for a fixed
//! seed (enforced by `tests/granulation_props.rs`); the choice only moves
//! the constant/asymptotics:
//!
//! | backend  | per-query cost        | sweet spot                                |
//! |----------|-----------------------|-------------------------------------------|
//! | `brute`  | O(n·d)                | tiny data; adversarial dimensionality     |
//! | `kdtree` | O(log n) while pruning| low/medium ambient dimension (p ≲ 24)     |
//! | `vptree` | O(log n) while pruning| high ambient p, low intrinsic dimension   |
//! | `auto`   | —                     | picks one of the above from (n, p)        |
//!
//! End-to-end RD-GBG is `O(n²·d)` under `brute` and empirically
//! `O(n·polylog n)` under the tree backends (see
//! `crates/bench/benches/granulation.rs` and BENCH_GRANULATION.json: ≈38×
//! at n = 50 000 with 10% class noise). Three further ingredients keep the
//! indexed path lean regardless of backend: squared distances everywhere
//! (one `sqrt` per finalized ball), a Fenwick rank-select pool per class
//! that replaces the per-iteration O(n) candidate sweep, and a max-radius
//! KD-tree over finished balls that answers the Eq.-4 conflict-radius
//! query in O(log m).
//!
//! ```
//! use gb_dataset::catalog::DatasetId;
//! use gbabs::{gbabs, RdGbgConfig};
//!
//! let data = DatasetId::S5.generate(0.05, 42); // banana surrogate
//! let result = gbabs(&data, &RdGbgConfig::default());
//! // Borderline sampling compresses the dataset ...
//! assert!(result.sampled_rows.len() < data.n_samples());
//! // ... and the underlying cover is pure and non-overlapping.
//! gbabs::diagnostics::verify_rdgbg_invariants(&data, &result.model).unwrap();
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod ball;
pub mod borderline;
mod conflict;
pub mod diagnostics;
pub mod gbknn;
pub mod rdgbg;
pub mod sampler;

pub use ball::GranularBall;
pub use borderline::{
    borderline_from_model, borderline_over_balls, gbabs, gbabs_with_progress, GbabsResult,
};
// Re-exported so downstream crates (CLI, serve) can consume progress events
// without depending on gb-obs directly.
pub use gb_obs::{ProgressEvent, ProgressPhase};
// Re-exported because `RdGbgModel` and the config builders carry a
// `Metric` field; constructors shouldn't need a gb-dataset dependency
// just to name it.
pub use gb_dataset::Metric;
pub use gbknn::{DistanceRule, GbKnn, GbKnnConfig};
pub use rdgbg::incremental::{canonical_rd_gbg, AppendStats, MaintainedModel};
pub use rdgbg::{rd_gbg, rd_gbg_with_progress, ProgressSink, RdGbgConfig, RdGbgModel};
pub use sampler::{GbabsSampler, NoSampling, SampleResult, Sampler};
