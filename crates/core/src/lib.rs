//! # gbabs
//!
//! Rust reproduction of the paper **"Approximate Borderline Sampling using
//! Granular-Ball for Classification Tasks"** (Xie, Zhang, Xia — ICDE 2025,
//! arXiv:2506.02366).
//!
//! Two algorithms make up the contribution:
//!
//! * [`rdgbg::rd_gbg`] — **RD-GBG**: covers a labelled dataset with pure,
//!   pairwise non-overlapping granular balls grown by restricted diffusion,
//!   detecting class noise on the way (density tolerance ρ).
//! * [`borderline::gbabs`] — **GBABS**: flags borderline balls by scanning
//!   ball centers along every feature dimension for heterogeneous adjacent
//!   neighbours and samples the facing extreme members, yielding an
//!   approximate borderline sample set in linear time.
//!
//! Around them: [`gbknn`] (the original granular-ball classifier, surface
//! or center distance rule), [`diagnostics`] (cover invariant checks), the
//! [`sampler::Sampler`] trait every baseline implements, and serde
//! persistence on [`GranularBall`]/[`rdgbg::RdGbgModel`] so a granulation
//! can be stored and resampled later.
//!
//! ```
//! use gb_dataset::catalog::DatasetId;
//! use gbabs::{gbabs, RdGbgConfig};
//!
//! let data = DatasetId::S5.generate(0.05, 42); // banana surrogate
//! let result = gbabs(&data, &RdGbgConfig::default());
//! // Borderline sampling compresses the dataset ...
//! assert!(result.sampled_rows.len() < data.n_samples());
//! // ... and the underlying cover is pure and non-overlapping.
//! gbabs::diagnostics::verify_rdgbg_invariants(&data, &result.model).unwrap();
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod ball;
pub mod borderline;
pub mod diagnostics;
pub mod gbknn;
pub mod rdgbg;
pub mod sampler;

pub use ball::GranularBall;
pub use gbknn::{DistanceRule, GbKnn, GbKnnConfig};
pub use borderline::{borderline_from_model, borderline_over_balls, gbabs, GbabsResult};
pub use rdgbg::{rd_gbg, RdGbgConfig, RdGbgModel};
pub use sampler::{GbabsSampler, NoSampling, SampleResult, Sampler};
