//! Property tests on the classifier families, driven by random datasets:
//! no panics on arbitrary finite inputs, predictions always in class
//! range, structural invariants (tree depth bounds, duplicate-feature
//! robustness, permutation consistency for kNN).

use gb_classifiers::knn::{KnnClassifier, KnnConfig};
use gb_classifiers::svm::{LinearSvm, SvmConfig};
use gb_classifiers::tree::{DecisionTree, TreeConfig};
use gb_classifiers::{Classifier, ClassifierKind};
use gb_dataset::Dataset;
use proptest::prelude::*;

/// Random small labelled dataset: n in [4, 60], p in [1, 5], q in [1, 4].
fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (4usize..60, 1usize..6, 1usize..5).prop_flat_map(|(n, p, q)| {
        (
            proptest::collection::vec(-100.0f64..100.0, n * p),
            proptest::collection::vec(0u32..q as u32, n),
            Just(p),
            Just(q),
        )
            .prop_map(|(feats, labels, p, q)| Dataset::from_parts(feats, labels, p, q))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn every_family_survives_random_data(data in arb_dataset(), seed in 0u64..100) {
        for kind in ClassifierKind::EXTENDED {
            let model = kind.fit_fast(&data, seed);
            let preds = model.predict(&data);
            prop_assert_eq!(preds.len(), data.n_samples());
            prop_assert!(preds.iter().all(|&p| (p as usize) < data.n_classes()));
        }
    }

    #[test]
    fn tree_respects_depth_limit(data in arb_dataset(), depth in 1usize..6) {
        let cfg = TreeConfig {
            max_depth: Some(depth),
            ..TreeConfig::default_with_seed(0)
        };
        let tree = DecisionTree::fit(&data, &cfg);
        prop_assert!(tree.depth() <= depth, "depth {} > limit {}", tree.depth(), depth);
    }

    #[test]
    fn unbounded_tree_memorizes_consistent_data(data in arb_dataset()) {
        // When no two identical feature rows carry different labels, an
        // unbounded CART must reach 100% training accuracy.
        let mut seen: std::collections::HashMap<Vec<u64>, u32> = std::collections::HashMap::new();
        let consistent = (0..data.n_samples()).all(|i| {
            let key: Vec<u64> = data.row(i).iter().map(|v| v.to_bits()).collect();
            *seen.entry(key).or_insert_with(|| data.label(i)) == data.label(i)
        });
        prop_assume!(consistent);
        let tree = DecisionTree::fit(&data, &TreeConfig::default_with_seed(0));
        let preds = tree.predict(&data);
        prop_assert!(preds.iter().zip(data.labels()).all(|(a, b)| a == b));
    }

    #[test]
    fn knn_with_k1_memorizes_distinct_rows(data in arb_dataset()) {
        // With k = 1 and all-distinct rows, each sample is its own nearest
        // neighbour at query time -> perfect training predictions.
        let mut keys: Vec<Vec<u64>> = (0..data.n_samples())
            .map(|i| data.row(i).iter().map(|v| v.to_bits()).collect())
            .collect();
        keys.sort();
        keys.dedup();
        prop_assume!(keys.len() == data.n_samples());
        let knn = KnnClassifier::fit(&data, KnnConfig { k: 1 });
        let preds = knn.predict(&data);
        prop_assert!(preds.iter().zip(data.labels()).all(|(a, b)| a == b));
    }

    #[test]
    fn duplicated_feature_column_never_hurts_tree_predictions(data in arb_dataset()) {
        // Appending a copy of column 0 must not change what the tree can
        // express; training accuracy is preserved exactly for CART because
        // splits on the clone are identical to splits on the original.
        let p = data.n_features();
        let mut feats = Vec::with_capacity(data.n_samples() * (p + 1));
        for i in 0..data.n_samples() {
            feats.extend_from_slice(data.row(i));
            feats.push(data.value(i, 0));
        }
        let doubled = Dataset::from_parts(feats, data.labels().to_vec(), p + 1, data.n_classes());
        let base = DecisionTree::fit(&data, &TreeConfig::default_with_seed(0));
        let wide = DecisionTree::fit(&doubled, &TreeConfig::default_with_seed(0));
        let base_acc = base
            .predict(&data)
            .iter()
            .zip(data.labels())
            .filter(|(a, b)| a == b)
            .count();
        let wide_acc = wide
            .predict(&doubled)
            .iter()
            .zip(doubled.labels())
            .filter(|(a, b)| a == b)
            .count();
        prop_assert_eq!(base_acc, wide_acc);
    }

    #[test]
    fn svm_decision_scores_are_finite(data in arb_dataset(), seed in 0u64..50) {
        let model = LinearSvm::fit(&data, &SvmConfig { epochs: 4, seed, ..Default::default() });
        for i in 0..data.n_samples() {
            let scores = model.decision_function(data.row(i));
            prop_assert_eq!(scores.len(), data.n_classes());
            prop_assert!(scores.iter().all(|s| s.is_finite()));
        }
    }
}
