//! Linear SVM trained with Pegasos (primal stochastic sub-gradient).
//!
//! The GBABS paper motivates borderline sampling with the SVM literature —
//! its refs \[24\]–\[26\] are all methods that shrink SVM training sets
//! because only samples near the separating hyperplane (the support
//! vectors) matter. This classifier closes the loop: the
//! `svm_acceleration` example and the classifier benches train a linear
//! SVM on the full set and on the GBABS sample and compare accuracy and
//! fit time.
//!
//! Pegasos (Shalev-Shwartz et al. 2011) minimizes the L2-regularized hinge
//! loss `λ/2‖w‖² + mean(max(0, 1 − y·(w·x + b)))` with step size `1/(λt)`.
//! Multi-class is one-vs-rest with margin-score argmax, the liblinear
//! convention. Features are standardized internally (z-score per column)
//! because hinge-loss SGD is scale-sensitive; the scaler is stored in the
//! model so `predict_row` accepts raw rows.

use crate::common::Classifier;
use gb_dataset::rng::rng_from_seed;
use gb_dataset::Dataset;
use rand::Rng;

/// Linear SVM hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct SvmConfig {
    /// L2 regularization strength λ (Pegasos's `lambda`; smaller fits
    /// harder). 1e-4 matches liblinear's C ≈ 1 on mid-sized datasets.
    pub lambda: f64,
    /// Number of SGD epochs over the training set.
    pub epochs: usize,
    /// Seed for the sampling order.
    pub seed: u64,
}

impl Default for SvmConfig {
    fn default() -> Self {
        Self {
            lambda: 1e-4,
            epochs: 20,
            seed: 0,
        }
    }
}

/// One binary hyperplane (weights + bias) of the one-vs-rest ensemble.
#[derive(Debug, Clone)]
struct Hyperplane {
    w: Vec<f64>,
    b: f64,
}

impl Hyperplane {
    fn score(&self, row: &[f64]) -> f64 {
        self.w
            .iter()
            .zip(row.iter())
            .map(|(w, x)| w * x)
            .sum::<f64>()
            + self.b
    }
}

/// A fitted linear SVM (one-vs-rest for multi-class).
#[derive(Debug, Clone)]
pub struct LinearSvm {
    planes: Vec<Hyperplane>,
    /// Per-column mean of the training features.
    mean: Vec<f64>,
    /// Per-column standard deviation (1 for constant columns).
    std: Vec<f64>,
    n_classes: usize,
}

/// Pegasos on a ±1 problem: `targets[i]` is +1 when row `i` belongs to the
/// positive class. `scaled` is the standardized row-major feature buffer.
fn pegasos(
    scaled: &[f64],
    n_features: usize,
    targets: &[f64],
    config: &SvmConfig,
    seed: u64,
) -> Hyperplane {
    let n = targets.len();
    let mut rng = rng_from_seed(seed);
    let mut w = vec![0.0f64; n_features];
    let mut b = 0.0f64;
    let lambda = config.lambda.max(1e-12);
    let total = (config.epochs.max(1)) * n;
    for t in 1..=total {
        let i = rng.gen_range(0..n);
        let row = &scaled[i * n_features..(i + 1) * n_features];
        let y = targets[i];
        let eta = 1.0 / (lambda * t as f64);
        let margin = y * (w.iter().zip(row.iter()).map(|(w, x)| w * x).sum::<f64>() + b);
        // w ← (1 − ηλ)·w [+ ηy·x on margin violation]
        let shrink = 1.0 - eta * lambda;
        for v in w.iter_mut() {
            *v *= shrink;
        }
        if margin < 1.0 {
            for (v, &x) in w.iter_mut().zip(row.iter()) {
                *v += eta * y * x;
            }
            b += eta * y;
        }
        // Pegasos projection step onto the ‖w‖ ≤ 1/√λ ball.
        let norm_sq: f64 = w.iter().map(|v| v * v).sum();
        let cap = 1.0 / lambda;
        if norm_sq > cap {
            let scale = (cap / norm_sq).sqrt();
            for v in w.iter_mut() {
                *v *= scale;
            }
        }
    }
    Hyperplane { w, b }
}

impl LinearSvm {
    /// Fits a one-vs-rest linear SVM on `train`.
    ///
    /// # Panics
    /// Panics on an empty training set.
    #[must_use]
    pub fn fit(train: &Dataset, config: &SvmConfig) -> Self {
        assert!(train.n_samples() > 0, "cannot fit an SVM on no data");
        let n = train.n_samples();
        let p = train.n_features();
        // z-score standardization (constant columns get std 1 → stay 0)
        let mut mean = vec![0.0f64; p];
        for i in 0..n {
            for (j, &v) in train.row(i).iter().enumerate() {
                mean[j] += v;
            }
        }
        for m in mean.iter_mut() {
            *m /= n as f64;
        }
        let mut var = vec![0.0f64; p];
        for i in 0..n {
            for (j, &v) in train.row(i).iter().enumerate() {
                var[j] += (v - mean[j]) * (v - mean[j]);
            }
        }
        let std: Vec<f64> = var
            .iter()
            .map(|&v| {
                let s = (v / n as f64).sqrt();
                if s > 1e-12 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        let mut scaled = vec![0.0f64; n * p];
        for i in 0..n {
            for (j, &v) in train.row(i).iter().enumerate() {
                scaled[i * p + j] = (v - mean[j]) / std[j];
            }
        }

        let n_classes = train.n_classes();
        let planes: Vec<Hyperplane> = (0..n_classes)
            .map(|class| {
                let targets: Vec<f64> = train
                    .labels()
                    .iter()
                    .map(|&l| if l as usize == class { 1.0 } else { -1.0 })
                    .collect();
                pegasos(
                    &scaled,
                    p,
                    &targets,
                    config,
                    config.seed.wrapping_add(class as u64),
                )
            })
            .collect();
        Self {
            planes,
            mean,
            std,
            n_classes,
        }
    }

    /// Margin scores per class for a raw (unscaled) row.
    #[must_use]
    pub fn decision_function(&self, row: &[f64]) -> Vec<f64> {
        let scaled: Vec<f64> = row
            .iter()
            .zip(self.mean.iter().zip(self.std.iter()))
            .map(|(&v, (&m, &s))| (v - m) / s)
            .collect();
        self.planes.iter().map(|p| p.score(&scaled)).collect()
    }

    /// Number of classes the model separates.
    #[must_use]
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }
}

impl Classifier for LinearSvm {
    fn predict_row(&self, row: &[f64]) -> u32 {
        crate::common::argmax(&self.decision_function(row)) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_dataset::catalog::DatasetId;

    fn fit_predict(train: &Dataset, test: &Dataset) -> f64 {
        let model = LinearSvm::fit(train, &SvmConfig::default());
        let preds = model.predict(test);
        let hits = preds
            .iter()
            .zip(test.labels())
            .filter(|(a, b)| a == b)
            .count();
        hits as f64 / test.n_samples() as f64
    }

    #[test]
    fn separates_linearly_separable_blobs() {
        let mut feats = Vec::new();
        let mut labels = Vec::new();
        for i in 0..50 {
            feats.extend_from_slice(&[i as f64 * 0.01, i as f64 * 0.01]);
            labels.push(0);
        }
        for i in 0..50 {
            feats.extend_from_slice(&[5.0 + i as f64 * 0.01, 5.0 + i as f64 * 0.01]);
            labels.push(1);
        }
        let d = Dataset::from_parts(feats, labels, 2, 2);
        assert_eq!(fit_predict(&d, &d), 1.0);
    }

    #[test]
    fn multiclass_one_vs_rest() {
        // Three clusters at triangle corners: each class is linearly
        // separable from the other two combined, so OvR must nail it.
        let corners = [(0.0, 0.0), (10.0, 0.0), (5.0, 8.66)];
        let mut feats = Vec::new();
        let mut labels = Vec::new();
        for (class, &(cx, cy)) in corners.iter().enumerate() {
            for i in 0..30 {
                feats.push(cx + (i % 6) as f64 * 0.05);
                feats.push(cy + (i / 6) as f64 * 0.05);
                labels.push(class as u32);
            }
        }
        let d = Dataset::from_parts(feats, labels, 2, 3);
        let acc = fit_predict(&d, &d);
        assert!(acc > 0.95, "3-class accuracy {acc}");
    }

    #[test]
    fn beats_chance_on_catalog_data() {
        let d = DatasetId::S9.generate(0.1, 1);
        let acc = fit_predict(&d, &d);
        let majority = *d.class_counts().iter().max().unwrap() as f64 / d.n_samples() as f64;
        assert!(
            acc >= majority - 0.02,
            "training accuracy {acc} below majority rate {majority}"
        );
    }

    #[test]
    fn scale_invariance_through_standardization() {
        // Multiplying one feature by 1e6 must not destroy the fit.
        let d = DatasetId::S5.generate(0.05, 2);
        let mut feats = Vec::with_capacity(d.n_samples() * 2);
        for i in 0..d.n_samples() {
            feats.push(d.value(i, 0) * 1e6);
            feats.push(d.value(i, 1));
        }
        let blown = Dataset::from_parts(feats, d.labels().to_vec(), 2, 2);
        let base = fit_predict(&d, &d);
        let scaled = fit_predict(&blown, &blown);
        assert!(
            (base - scaled).abs() < 0.05,
            "scaling changed accuracy {base} -> {scaled}"
        );
    }

    #[test]
    fn constant_feature_is_harmless() {
        let mut feats = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            feats.extend_from_slice(&[f64::from(i / 20), 7.0]); // col 1 constant
            labels.push((i / 20) as u32);
        }
        let d = Dataset::from_parts(feats, labels, 2, 2);
        assert_eq!(fit_predict(&d, &d), 1.0);
    }

    #[test]
    fn decision_function_length_and_argmax_agree() {
        let d = DatasetId::S6.generate(0.05, 1);
        let model = LinearSvm::fit(&d, &SvmConfig::default());
        let row = d.row(0);
        let scores = model.decision_function(row);
        assert_eq!(scores.len(), d.n_classes());
        assert_eq!(
            model.predict_row(row),
            crate::common::argmax(&scores) as u32
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let d = DatasetId::S2.generate(0.1, 1);
        let a = LinearSvm::fit(&d, &SvmConfig::default());
        let b = LinearSvm::fit(&d, &SvmConfig::default());
        assert_eq!(a.predict(&d), b.predict(&d));
    }

    #[test]
    #[should_panic(expected = "cannot fit an SVM on no data")]
    fn empty_train_rejected() {
        let d = Dataset::from_parts(Vec::new(), Vec::new(), 1, 1);
        let _ = LinearSvm::fit(&d, &SvmConfig::default());
    }
}
