//! Gradient-boosted decision trees.
//!
//! Two independent implementations stand in for the paper's XGBoost and
//! LightGBM baselines:
//!
//! * [`exact`] — second-order boosting with exact greedy split enumeration
//!   and depth-wise growth (XGBoost-style).
//! * [`hist`] — quantile-binned histogram split finding with leaf-wise
//!   (best-first) growth (LightGBM-style).
//!
//! Both share the loss layer in [`loss`] (binary logistic / multi-class
//! softmax with second-order gradients).

pub mod exact;
pub mod hist;
pub mod loss;
