//! Histogram-based leaf-wise GBDT (LightGBM-style, Ke et al. 2017).
//!
//! Features are quantile-binned once (≤ 255 bins); split finding scans bin
//! histograms of gradient/hessian sums; trees grow *leaf-wise* — always
//! expanding the leaf with the largest gain — up to `num_leaves` (default
//! 31). Defaults mirror LightGBM: 100 rounds, learning rate 0.1,
//! `min_data_in_leaf = 20`.

use super::loss::{logistic_grad_hess, sigmoid, softmax_grad_hess, softmax_into};
use crate::common::Classifier;
use gb_dataset::Dataset;

/// Hyper-parameters of the histogram GBDT.
#[derive(Debug, Clone, Copy)]
pub struct HistGbdtConfig {
    /// Boosting rounds.
    pub n_rounds: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Maximum leaves per tree.
    pub num_leaves: usize,
    /// Maximum histogram bins per feature.
    pub max_bins: usize,
    /// Minimum samples per leaf.
    pub min_data_in_leaf: usize,
    /// L2 regularization on leaf weights.
    pub lambda: f64,
}

impl Default for HistGbdtConfig {
    fn default() -> Self {
        Self {
            n_rounds: 100,
            learning_rate: 0.1,
            num_leaves: 31,
            max_bins: 255,
            min_data_in_leaf: 20,
            lambda: 0.0,
        }
    }
}

/// Per-feature quantile binner.
#[derive(Debug, Clone)]
pub(crate) struct Binner {
    /// `edges[f]` are ascending upper-edge thresholds; bin b holds values
    /// `edges[f][b-1] < v <= edges[f][b]` (bin 0: `v <= edges[f][0]`,
    /// last bin unbounded).
    edges: Vec<Vec<f64>>,
}

impl Binner {
    pub(crate) fn fit(data: &Dataset, max_bins: usize) -> Self {
        let n = data.n_samples();
        let p = data.n_features();
        let mut edges = Vec::with_capacity(p);
        let mut col: Vec<f64> = Vec::with_capacity(n);
        for f in 0..p {
            col.clear();
            col.extend((0..n).map(|i| data.value(i, f)));
            col.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite features"));
            col.dedup();
            let distinct = col.len();
            let mut e: Vec<f64> = if distinct <= max_bins {
                // one bin per distinct value: edges midway between values
                col.windows(2).map(|w| (w[0] + w[1]) * 0.5).collect()
            } else {
                (1..max_bins)
                    .map(|b| {
                        let idx = b * distinct / max_bins;
                        col[idx.min(distinct - 1)]
                    })
                    .collect()
            };
            e.dedup_by(|a, b| a == b);
            edges.push(e);
        }
        Self { edges }
    }

    /// Bin index of `value` in feature `f`.
    pub(crate) fn bin(&self, f: usize, value: f64) -> usize {
        self.edges[f].partition_point(|&e| e < value)
    }

    /// Number of bins for feature `f`.
    pub(crate) fn n_bins(&self, f: usize) -> usize {
        self.edges[f].len() + 1
    }

    /// Raw threshold corresponding to splitting after bin `b` of feature `f`.
    fn threshold(&self, f: usize, b: usize) -> f64 {
        self.edges[f][b]
    }
}

#[derive(Debug, Clone)]
enum HNode {
    Leaf {
        weight: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

#[derive(Debug, Clone)]
struct HistTree {
    nodes: Vec<HNode>,
}

impl HistTree {
    fn predict_row(&self, row: &[f64]) -> f64 {
        let mut idx = 0;
        loop {
            match self.nodes[idx] {
                HNode::Leaf { weight } => return weight,
                HNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if row[feature] <= threshold {
                        left
                    } else {
                        right
                    }
                }
            }
        }
    }
}

/// Candidate split for a leaf.
#[derive(Debug, Clone, Copy)]
struct BestSplit {
    gain: f64,
    feature: usize,
    bin: usize,
    g_left: f64,
    h_left: f64,
    n_left: usize,
}

struct LeafTask {
    node: usize,
    rows: Vec<u32>,
    g_sum: f64,
    h_sum: f64,
}

fn leaf_obj(g: f64, h: f64, lambda: f64) -> f64 {
    g * g / (h + lambda)
}

#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
fn find_best_split(
    binned: &[Vec<u8>],
    binner: &Binner,
    rows: &[u32],
    grad: &[f64],
    hess: &[f64],
    g_sum: f64,
    h_sum: f64,
    cfg: &HistGbdtConfig,
) -> Option<BestSplit> {
    let parent = leaf_obj(g_sum, h_sum, cfg.lambda);
    let p = binned.len();
    let mut best: Option<BestSplit> = None;
    for f in 0..p {
        let nb = binner.n_bins(f);
        if nb < 2 {
            continue;
        }
        let mut hist_g = vec![0.0f64; nb];
        let mut hist_h = vec![0.0f64; nb];
        let mut hist_n = vec![0usize; nb];
        let col = &binned[f];
        for &r in rows {
            let b = col[r as usize] as usize;
            hist_g[b] += grad[r as usize];
            hist_h[b] += hess[r as usize];
            hist_n[b] += 1;
        }
        let mut gl = 0.0;
        let mut hl = 0.0;
        let mut nl = 0usize;
        for b in 0..nb - 1 {
            gl += hist_g[b];
            hl += hist_h[b];
            nl += hist_n[b];
            let nr = rows.len() - nl;
            if nl < cfg.min_data_in_leaf || nr < cfg.min_data_in_leaf {
                continue;
            }
            let gr = g_sum - gl;
            let hr = h_sum - hl;
            let gain = 0.5 * (leaf_obj(gl, hl, cfg.lambda) + leaf_obj(gr, hr, cfg.lambda) - parent);
            if gain > 1e-12 && best.is_none_or(|b2| gain > b2.gain) {
                best = Some(BestSplit {
                    gain,
                    feature: f,
                    bin: b,
                    g_left: gl,
                    h_left: hl,
                    n_left: nl,
                });
            }
        }
    }
    best
}

fn fit_hist_tree(
    data: &Dataset,
    binned: &[Vec<u8>],
    binner: &Binner,
    grad: &[f64],
    hess: &[f64],
    cfg: &HistGbdtConfig,
) -> HistTree {
    let n = data.n_samples();
    let root_rows: Vec<u32> = (0..n as u32).collect();
    let g_sum: f64 = grad.iter().sum();
    let h_sum: f64 = hess.iter().sum();
    let mut nodes = vec![HNode::Leaf {
        weight: -g_sum / (h_sum + cfg.lambda),
    }];
    // Leaf-wise growth: repeatedly expand the splittable leaf of max gain.
    let mut frontier: Vec<(LeafTask, Option<BestSplit>)> = Vec::new();
    let root = LeafTask {
        node: 0,
        rows: root_rows,
        g_sum,
        h_sum,
    };
    let split = find_best_split(binned, binner, &root.rows, grad, hess, g_sum, h_sum, cfg);
    frontier.push((root, split));
    let mut n_leaves = 1usize;
    while n_leaves < cfg.num_leaves {
        // pick the frontier entry with the best gain
        let Some(pos) = frontier
            .iter()
            .enumerate()
            .filter(|(_, (_, s))| s.is_some())
            .max_by(|(_, (_, a)), (_, (_, b))| {
                a.unwrap()
                    .gain
                    .partial_cmp(&b.unwrap().gain)
                    .expect("finite gains")
            })
            .map(|(i, _)| i)
        else {
            break; // nothing splittable
        };
        let (task, split) = frontier.swap_remove(pos);
        let split = split.expect("filtered to Some");
        let thr = binner.threshold(split.feature, split.bin);
        let mut left_rows = Vec::with_capacity(split.n_left);
        let mut right_rows = Vec::with_capacity(task.rows.len() - split.n_left);
        let col = &binned[split.feature];
        for &r in &task.rows {
            if (col[r as usize] as usize) <= split.bin {
                left_rows.push(r);
            } else {
                right_rows.push(r);
            }
        }
        debug_assert_eq!(left_rows.len(), split.n_left);
        let gl = split.g_left;
        let hl = split.h_left;
        let gr = task.g_sum - gl;
        let hr = task.h_sum - hl;
        let left_idx = nodes.len();
        nodes.push(HNode::Leaf {
            weight: -gl / (hl + cfg.lambda),
        });
        let right_idx = nodes.len();
        nodes.push(HNode::Leaf {
            weight: -gr / (hr + cfg.lambda),
        });
        nodes[task.node] = HNode::Split {
            feature: split.feature,
            threshold: thr,
            left: left_idx,
            right: right_idx,
        };
        n_leaves += 1;
        let l_task = LeafTask {
            node: left_idx,
            rows: left_rows,
            g_sum: gl,
            h_sum: hl,
        };
        let l_split = find_best_split(binned, binner, &l_task.rows, grad, hess, gl, hl, cfg);
        frontier.push((l_task, l_split));
        let r_task = LeafTask {
            node: right_idx,
            rows: right_rows,
            g_sum: gr,
            h_sum: hr,
        };
        let r_split = find_best_split(binned, binner, &r_task.rows, grad, hess, gr, hr, cfg);
        frontier.push((r_task, r_split));
    }
    HistTree { nodes }
}

/// A fitted histogram GBDT ensemble.
pub struct HistGbdt {
    trees: Vec<Vec<HistTree>>,
    n_classes: usize,
    learning_rate: f64,
}

impl HistGbdt {
    /// Fits on `train` with config `cfg`.
    ///
    /// # Panics
    /// Panics on empty training data or `max_bins > 256`.
    #[must_use]
    #[allow(clippy::needless_range_loop)] // parallel-array updates read clearer indexed
    pub fn fit(train: &Dataset, cfg: &HistGbdtConfig) -> Self {
        assert!(train.n_samples() > 0, "empty training set");
        assert!(cfg.max_bins <= 256, "bins must fit u8");
        let n = train.n_samples();
        let q = train.n_classes();
        let binner = Binner::fit(train, cfg.max_bins);
        // column-major binned matrix
        let binned: Vec<Vec<u8>> = (0..train.n_features())
            .map(|f| {
                (0..n)
                    .map(|i| binner.bin(f, train.value(i, f)) as u8)
                    .collect()
            })
            .collect();
        let mut trees: Vec<Vec<HistTree>> = Vec::with_capacity(cfg.n_rounds);
        if q <= 2 {
            let mut scores = vec![0.0f64; n];
            let mut grad = vec![0.0f64; n];
            let mut hess = vec![0.0f64; n];
            for _ in 0..cfg.n_rounds {
                for i in 0..n {
                    let (g, h) = logistic_grad_hess(scores[i], f64::from(train.label(i)));
                    grad[i] = g;
                    hess[i] = h;
                }
                let tree = fit_hist_tree(train, &binned, &binner, &grad, &hess, cfg);
                for i in 0..n {
                    scores[i] += cfg.learning_rate * tree.predict_row(train.row(i));
                }
                trees.push(vec![tree]);
            }
        } else {
            let mut scores = vec![0.0f64; n * q];
            let mut probs = vec![0.0f64; q];
            let mut grad = vec![vec![0.0f64; n]; q];
            let mut hess = vec![vec![0.0f64; n]; q];
            for _ in 0..cfg.n_rounds {
                for i in 0..n {
                    softmax_into(&scores[i * q..(i + 1) * q], &mut probs);
                    let y = train.label(i) as usize;
                    for (k, &p) in probs.iter().enumerate() {
                        let (g, h) = softmax_grad_hess(p, f64::from(u8::from(k == y)));
                        grad[k][i] = g;
                        hess[k][i] = h;
                    }
                }
                let mut round = Vec::with_capacity(q);
                for k in 0..q {
                    let tree = fit_hist_tree(train, &binned, &binner, &grad[k], &hess[k], cfg);
                    for i in 0..n {
                        scores[i * q + k] += cfg.learning_rate * tree.predict_row(train.row(i));
                    }
                    round.push(tree);
                }
                trees.push(round);
            }
        }
        Self {
            trees,
            n_classes: q,
            learning_rate: cfg.learning_rate,
        }
    }

    /// Raw margin score(s) for a row.
    #[must_use]
    pub fn decision_function(&self, row: &[f64]) -> Vec<f64> {
        if self.n_classes <= 2 {
            let mut s = 0.0;
            for round in &self.trees {
                s += self.learning_rate * round[0].predict_row(row);
            }
            vec![s]
        } else {
            let mut s = vec![0.0; self.n_classes];
            for round in &self.trees {
                for (k, tree) in round.iter().enumerate() {
                    s[k] += self.learning_rate * tree.predict_row(row);
                }
            }
            s
        }
    }
}

impl Classifier for HistGbdt {
    fn predict_row(&self, row: &[f64]) -> u32 {
        let s = self.decision_function(row);
        if self.n_classes <= 2 {
            u32::from(sigmoid(s[0]) >= 0.5)
        } else {
            crate::common::argmax(&s) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_dataset::catalog::DatasetId;
    use gb_dataset::split::stratified_holdout;

    fn acc(model: &HistGbdt, test: &Dataset) -> f64 {
        model
            .predict(test)
            .iter()
            .zip(test.labels())
            .filter(|(a, b)| a == b)
            .count() as f64
            / test.n_samples() as f64
    }

    fn small_cfg() -> HistGbdtConfig {
        HistGbdtConfig {
            n_rounds: 25,
            min_data_in_leaf: 5,
            ..Default::default()
        }
    }

    #[test]
    fn binner_bins_are_monotone() {
        let d = DatasetId::S2.generate(0.1, 1);
        let binner = Binner::fit(&d, 16);
        for f in 0..d.n_features() {
            let mut vals: Vec<f64> = (0..d.n_samples()).map(|i| d.value(i, f)).collect();
            vals.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
            let bins: Vec<usize> = vals.iter().map(|&v| binner.bin(f, v)).collect();
            assert!(bins.windows(2).all(|w| w[0] <= w[1]));
            assert!(*bins.last().unwrap() < binner.n_bins(f));
        }
    }

    #[test]
    fn binner_handles_few_distinct_values() {
        let d = Dataset::from_parts(vec![1.0, 1.0, 2.0, 2.0, 3.0], vec![0; 5], 1, 1);
        let binner = Binner::fit(&d, 255);
        assert_eq!(binner.n_bins(0), 3);
        assert_eq!(binner.bin(0, 1.0), 0);
        assert_eq!(binner.bin(0, 2.0), 1);
        assert_eq!(binner.bin(0, 3.0), 2);
    }

    #[test]
    fn binary_blobs() {
        let d = DatasetId::S9.generate(0.05, 1);
        let (tr, te) = stratified_holdout(&d, 0.3, 2);
        let m = HistGbdt::fit(&d.select(&tr), &small_cfg());
        let a = acc(&m, &d.select(&te));
        assert!(a > 0.9, "binary accuracy {a}");
    }

    #[test]
    fn multiclass_blobs() {
        let d = DatasetId::S6.generate(0.1, 1);
        let (tr, te) = stratified_holdout(&d, 0.3, 2);
        let m = HistGbdt::fit(&d.select(&tr), &small_cfg());
        let a = acc(&m, &d.select(&te));
        assert!(a > 0.9, "multiclass accuracy {a}");
    }

    #[test]
    fn leaf_cap_respected() {
        let d = DatasetId::S5.generate(0.1, 3);
        let cfg = HistGbdtConfig {
            n_rounds: 1,
            num_leaves: 4,
            min_data_in_leaf: 1,
            ..Default::default()
        };
        let m = HistGbdt::fit(&d, &cfg);
        let leaves = m.trees[0][0]
            .nodes
            .iter()
            .filter(|n| matches!(n, HNode::Leaf { .. }))
            .count();
        assert!(leaves <= 4, "{leaves} leaves");
    }

    #[test]
    fn deterministic() {
        let d = DatasetId::S2.generate(0.05, 8);
        let a = HistGbdt::fit(&d, &small_cfg());
        let b = HistGbdt::fit(&d, &small_cfg());
        assert_eq!(a.predict(&d), b.predict(&d));
    }

    #[test]
    #[should_panic(expected = "bins must fit u8")]
    fn too_many_bins_rejected() {
        let d = DatasetId::S2.generate(0.05, 8);
        let _ = HistGbdt::fit(
            &d,
            &HistGbdtConfig {
                max_bins: 1000,
                ..Default::default()
            },
        );
    }
}
