//! Exact-greedy second-order GBDT (XGBoost-style, Chen & Guestrin 2016).
//!
//! Depth-wise regression trees on gradient/hessian pairs with the XGBoost
//! gain formula; defaults mirror the library the paper used:
//! `n_estimators = 100`, `max_depth = 6`, `eta = 0.3`, `lambda = 1`,
//! `gamma = 0`, `min_child_weight = 1`. Binary targets use logistic loss
//! (one tree per round); multi-class targets use softmax (one tree per class
//! per round).

use super::loss::{logistic_grad_hess, sigmoid, softmax_grad_hess, softmax_into};
use crate::common::Classifier;
use gb_dataset::Dataset;

/// Hyper-parameters of the exact GBDT.
#[derive(Debug, Clone, Copy)]
pub struct ExactGbdtConfig {
    /// Boosting rounds.
    pub n_rounds: usize,
    /// Shrinkage (learning rate).
    pub eta: f64,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// L2 regularization on leaf weights.
    pub lambda: f64,
    /// Minimum gain to split.
    pub gamma: f64,
    /// Minimum hessian sum per child.
    pub min_child_weight: f64,
}

impl Default for ExactGbdtConfig {
    fn default() -> Self {
        Self {
            n_rounds: 100,
            eta: 0.3,
            max_depth: 6,
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 1.0,
        }
    }
}

#[derive(Debug, Clone)]
enum RegNode {
    Leaf {
        weight: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A single regression tree over gradients.
#[derive(Debug, Clone)]
pub(crate) struct RegTree {
    nodes: Vec<RegNode>,
}

impl RegTree {
    pub(crate) fn predict_row(&self, row: &[f64]) -> f64 {
        let mut idx = 0;
        loop {
            match self.nodes[idx] {
                RegNode::Leaf { weight } => return weight,
                RegNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if row[feature] <= threshold {
                        left
                    } else {
                        right
                    }
                }
            }
        }
    }
}

struct TreeBuilder<'a> {
    data: &'a Dataset,
    grad: &'a [f64],
    hess: &'a [f64],
    cfg: &'a ExactGbdtConfig,
    nodes: Vec<RegNode>,
}

fn leaf_weight(g: f64, h: f64, lambda: f64) -> f64 {
    -g / (h + lambda)
}

fn score(g: f64, h: f64, lambda: f64) -> f64 {
    g * g / (h + lambda)
}

impl<'a> TreeBuilder<'a> {
    fn build(&mut self, rows: &mut [usize], depth: usize) -> usize {
        let (g_sum, h_sum) = rows.iter().fold((0.0, 0.0), |(g, h), &r| {
            (g + self.grad[r], h + self.hess[r])
        });
        let make_leaf = |nodes: &mut Vec<RegNode>| {
            let idx = nodes.len();
            nodes.push(RegNode::Leaf {
                weight: leaf_weight(g_sum, h_sum, self.cfg.lambda),
            });
            idx
        };
        if depth >= self.cfg.max_depth || rows.len() < 2 {
            return make_leaf(&mut self.nodes);
        }

        let parent_score = score(g_sum, h_sum, self.cfg.lambda);
        let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
        let mut scratch: Vec<(f64, f64, f64)> = Vec::with_capacity(rows.len());
        for feat in 0..self.data.n_features() {
            scratch.clear();
            scratch.extend(
                rows.iter()
                    .map(|&r| (self.data.value(r, feat), self.grad[r], self.hess[r])),
            );
            scratch.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).expect("finite features"));
            let mut gl = 0.0;
            let mut hl = 0.0;
            for i in 0..scratch.len() - 1 {
                let (v, g, h) = scratch[i];
                gl += g;
                hl += h;
                let next_v = scratch[i + 1].0;
                if next_v <= v {
                    continue;
                }
                let gr = g_sum - gl;
                let hr = h_sum - hl;
                if hl < self.cfg.min_child_weight || hr < self.cfg.min_child_weight {
                    continue;
                }
                let gain = 0.5
                    * (score(gl, hl, self.cfg.lambda) + score(gr, hr, self.cfg.lambda)
                        - parent_score)
                    - self.cfg.gamma;
                if gain > 0.0 && best.is_none_or(|(bg, _, _)| gain > bg) {
                    best = Some((gain, feat, v + (next_v - v) * 0.5));
                }
            }
        }

        let Some((_, feature, threshold)) = best else {
            return make_leaf(&mut self.nodes);
        };
        let split_at = partition_rows(rows, |&r| self.data.value(r, feature) <= threshold);
        debug_assert!(split_at > 0 && split_at < rows.len());
        let idx = self.nodes.len();
        self.nodes.push(RegNode::Leaf { weight: 0.0 }); // placeholder
        let (left_rows, right_rows) = rows.split_at_mut(split_at);
        let left = self.build(left_rows, depth + 1);
        let right = self.build(right_rows, depth + 1);
        self.nodes[idx] = RegNode::Split {
            feature,
            threshold,
            left,
            right,
        };
        idx
    }
}

fn partition_rows(rows: &mut [usize], mut pred: impl FnMut(&usize) -> bool) -> usize {
    let mut keep: Vec<usize> = Vec::with_capacity(rows.len());
    let mut rest: Vec<usize> = Vec::new();
    for &r in rows.iter() {
        if pred(&r) {
            keep.push(r);
        } else {
            rest.push(r);
        }
    }
    let k = keep.len();
    keep.extend_from_slice(&rest);
    rows.copy_from_slice(&keep);
    k
}

fn fit_reg_tree(data: &Dataset, grad: &[f64], hess: &[f64], cfg: &ExactGbdtConfig) -> RegTree {
    let mut builder = TreeBuilder {
        data,
        grad,
        hess,
        cfg,
        nodes: Vec::new(),
    };
    let mut rows: Vec<usize> = (0..data.n_samples()).collect();
    builder.build(&mut rows, 0);
    RegTree {
        nodes: builder.nodes,
    }
}

/// A fitted exact GBDT ensemble.
pub struct ExactGbdt {
    /// `trees[round][class]`; binary models have one tree per round.
    trees: Vec<Vec<RegTree>>,
    n_classes: usize,
    eta: f64,
}

impl ExactGbdt {
    /// Fits the ensemble on `train` with config `cfg`.
    ///
    /// # Panics
    /// Panics on empty training data.
    #[must_use]
    #[allow(clippy::needless_range_loop)] // parallel-array updates read clearer indexed
    pub fn fit(train: &Dataset, cfg: &ExactGbdtConfig) -> Self {
        assert!(train.n_samples() > 0, "empty training set");
        let n = train.n_samples();
        let q = train.n_classes();
        let mut trees: Vec<Vec<RegTree>> = Vec::with_capacity(cfg.n_rounds);
        if q <= 2 {
            // binary logistic: one score per sample
            let mut scores = vec![0.0f64; n];
            let mut grad = vec![0.0f64; n];
            let mut hess = vec![0.0f64; n];
            for _ in 0..cfg.n_rounds {
                for i in 0..n {
                    let (g, h) = logistic_grad_hess(scores[i], f64::from(train.label(i)));
                    grad[i] = g;
                    hess[i] = h;
                }
                let tree = fit_reg_tree(train, &grad, &hess, cfg);
                for i in 0..n {
                    scores[i] += cfg.eta * tree.predict_row(train.row(i));
                }
                trees.push(vec![tree]);
            }
        } else {
            // softmax: one score per class per sample
            let mut scores = vec![0.0f64; n * q];
            let mut probs = vec![0.0f64; q];
            let mut grad = vec![vec![0.0f64; n]; q];
            let mut hess = vec![vec![0.0f64; n]; q];
            for _ in 0..cfg.n_rounds {
                for i in 0..n {
                    softmax_into(&scores[i * q..(i + 1) * q], &mut probs);
                    let y = train.label(i) as usize;
                    for (k, &p) in probs.iter().enumerate() {
                        let (g, h) = softmax_grad_hess(p, f64::from(u8::from(k == y)));
                        grad[k][i] = g;
                        hess[k][i] = h;
                    }
                }
                let mut round = Vec::with_capacity(q);
                for k in 0..q {
                    let tree = fit_reg_tree(train, &grad[k], &hess[k], cfg);
                    for i in 0..n {
                        scores[i * q + k] += cfg.eta * tree.predict_row(train.row(i));
                    }
                    round.push(tree);
                }
                trees.push(round);
            }
        }
        Self {
            trees,
            n_classes: q,
            eta: cfg.eta,
        }
    }

    /// Raw margin score(s) for a row (length 1 for binary, `q` otherwise).
    #[must_use]
    pub fn decision_function(&self, row: &[f64]) -> Vec<f64> {
        if self.n_classes <= 2 {
            let mut s = 0.0;
            for round in &self.trees {
                s += self.eta * round[0].predict_row(row);
            }
            vec![s]
        } else {
            let mut s = vec![0.0; self.n_classes];
            for round in &self.trees {
                for (k, tree) in round.iter().enumerate() {
                    s[k] += self.eta * tree.predict_row(row);
                }
            }
            s
        }
    }
}

impl Classifier for ExactGbdt {
    fn predict_row(&self, row: &[f64]) -> u32 {
        let s = self.decision_function(row);
        if self.n_classes <= 2 {
            u32::from(sigmoid(s[0]) >= 0.5)
        } else {
            crate::common::argmax(&s) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_dataset::catalog::DatasetId;
    use gb_dataset::split::stratified_holdout;

    fn acc(model: &ExactGbdt, test: &Dataset) -> f64 {
        model
            .predict(test)
            .iter()
            .zip(test.labels())
            .filter(|(a, b)| a == b)
            .count() as f64
            / test.n_samples() as f64
    }

    fn small_cfg() -> ExactGbdtConfig {
        ExactGbdtConfig {
            n_rounds: 20,
            max_depth: 4,
            ..Default::default()
        }
    }

    #[test]
    fn binary_blobs() {
        let d = DatasetId::S9.generate(0.05, 1);
        let (tr, te) = stratified_holdout(&d, 0.3, 2);
        let m = ExactGbdt::fit(&d.select(&tr), &small_cfg());
        let a = acc(&m, &d.select(&te));
        assert!(a > 0.9, "binary accuracy {a}");
    }

    #[test]
    fn multiclass_blobs() {
        let d = DatasetId::S8.generate(0.02, 1);
        let (tr, te) = stratified_holdout(&d, 0.3, 2);
        let m = ExactGbdt::fit(&d.select(&tr), &small_cfg());
        let a = acc(&m, &d.select(&te));
        assert!(a > 0.75, "multiclass accuracy {a}");
    }

    #[test]
    fn xor_learnable() {
        // depth-2 interactions: xor with 50 points per quadrant
        let mut feats = Vec::new();
        let mut labels = Vec::new();
        for i in 0..200 {
            let x = (i % 2) as f64 + (i as f64 * 0.001);
            let y = ((i / 2) % 2) as f64 + (i as f64 * 0.0007);
            feats.push(x);
            feats.push(y);
            labels.push(((i % 2) ^ ((i / 2) % 2)) as u32);
        }
        let d = Dataset::from_parts(feats, labels, 2, 2);
        let m = ExactGbdt::fit(&d, &small_cfg());
        let a = acc(&m, &d);
        assert!(a > 0.95, "xor training accuracy {a}");
    }

    #[test]
    fn more_rounds_do_not_hurt_training_fit() {
        let d = DatasetId::S2.generate(0.1, 4);
        let short = ExactGbdt::fit(
            &d,
            &ExactGbdtConfig {
                n_rounds: 3,
                ..Default::default()
            },
        );
        let long = ExactGbdt::fit(
            &d,
            &ExactGbdtConfig {
                n_rounds: 30,
                ..Default::default()
            },
        );
        assert!(acc(&long, &d) >= acc(&short, &d) - 1e-9);
    }

    #[test]
    fn decision_function_shape() {
        let bin = DatasetId::S2.generate(0.05, 0);
        let m = ExactGbdt::fit(&bin, &small_cfg());
        assert_eq!(m.decision_function(bin.row(0)).len(), 1);
        let multi = DatasetId::S6.generate(0.05, 0);
        let m2 = ExactGbdt::fit(&multi, &small_cfg());
        assert_eq!(m2.decision_function(multi.row(0)).len(), 5);
    }

    #[test]
    fn deterministic() {
        let d = DatasetId::S2.generate(0.05, 8);
        let a = ExactGbdt::fit(&d, &small_cfg());
        let b = ExactGbdt::fit(&d, &small_cfg());
        assert_eq!(a.predict(&d), b.predict(&d));
    }
}
