//! Second-order loss layer for gradient boosting.
//!
//! Binary tasks use logistic loss with a single score per sample; multi-class
//! tasks use softmax with one score per class. Gradients/hessians follow the
//! XGBoost formulation: `g = p − y`, `h = p·(1 − p)` (hessian floored to keep
//! leaf weights finite).

/// Floor applied to hessians.
pub const HESS_FLOOR: f64 = 1e-6;

/// Numerically safe sigmoid.
#[must_use]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Softmax over a score slice, written into `out` (same length).
pub fn softmax_into(scores: &[f64], out: &mut [f64]) {
    debug_assert_eq!(scores.len(), out.len());
    let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for (o, &s) in out.iter_mut().zip(scores.iter()) {
        let e = (s - max).exp();
        *o = e;
        sum += e;
    }
    for o in out.iter_mut() {
        *o /= sum;
    }
}

/// Gradient and hessian of binary logistic loss at raw score `score` for
/// 0/1 target `y`.
#[must_use]
pub fn logistic_grad_hess(score: f64, y: f64) -> (f64, f64) {
    let p = sigmoid(score);
    (p - y, (p * (1.0 - p)).max(HESS_FLOOR))
}

/// Gradient and hessian of softmax cross-entropy for class-`k` score given
/// the probability `p_k` and indicator `y_k`.
#[must_use]
pub fn softmax_grad_hess(p_k: f64, y_k: f64) -> (f64, f64) {
    (p_k - y_k, (p_k * (1.0 - p_k)).max(HESS_FLOOR))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_symmetry_and_range() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-12);
        assert!(sigmoid(100.0) <= 1.0 && sigmoid(-100.0) >= 0.0);
        assert!(sigmoid(-745.0).is_finite());
    }

    #[test]
    fn softmax_normalizes() {
        let mut out = vec![0.0; 3];
        softmax_into(&[1.0, 2.0, 3.0], &mut out);
        assert!((out.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(out[2] > out[1] && out[1] > out[0]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let mut a = vec![0.0; 2];
        let mut b = vec![0.0; 2];
        softmax_into(&[1.0, 2.0], &mut a);
        softmax_into(&[1001.0, 1002.0], &mut b);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-12);
            assert!(x.is_finite());
        }
    }

    #[test]
    fn gradients_point_the_right_way() {
        // positive sample, score 0 -> gradient negative (push score up)
        let (g, h) = logistic_grad_hess(0.0, 1.0);
        assert!(g < 0.0);
        assert!(h > 0.0);
        let (g2, _) = logistic_grad_hess(0.0, 0.0);
        assert!(g2 > 0.0);
    }

    #[test]
    fn hessians_floored() {
        let (_, h) = logistic_grad_hess(40.0, 1.0);
        assert!(h >= HESS_FLOOR);
        let (_, h2) = softmax_grad_hess(1.0, 1.0);
        assert!(h2 >= HESS_FLOOR);
    }
}
