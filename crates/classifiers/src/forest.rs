//! Random forest (Breiman 2001).
//!
//! Bagged CART trees with per-split feature subsampling, mirroring
//! `sklearn.ensemble.RandomForestClassifier` defaults: 100 trees, bootstrap
//! resampling, √p features per split, unbounded depth. Prediction is a
//! majority vote (sklearn averages probabilities; with unbounded pure-leaf
//! trees the two coincide almost everywhere).

use crate::common::{majority_label, Classifier};
use crate::tree::{DecisionTree, MaxFeatures, TreeConfig};
use gb_dataset::rng::{derive_seed, rng_from_seed};
use gb_dataset::Dataset;
use rand::Rng;

/// Random-forest hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct ForestConfig {
    /// Number of trees (sklearn default 100).
    pub n_trees: usize,
    /// Features per split.
    pub max_features: MaxFeatures,
    /// Optional depth cap forwarded to each tree.
    pub max_depth: Option<usize>,
    /// Master seed; per-tree seeds are derived from it.
    pub seed: u64,
}

impl ForestConfig {
    /// sklearn defaults with an explicit seed.
    #[must_use]
    pub fn default_with_seed(seed: u64) -> Self {
        Self {
            n_trees: 100,
            max_features: MaxFeatures::Sqrt,
            max_depth: None,
            seed,
        }
    }
}

impl Default for ForestConfig {
    fn default() -> Self {
        Self::default_with_seed(0)
    }
}

/// A fitted random forest.
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_classes: usize,
}

impl RandomForest {
    /// Fits `n_trees` bootstrap trees.
    ///
    /// # Panics
    /// Panics on an empty training set or `n_trees == 0`.
    #[must_use]
    pub fn fit(train: &Dataset, config: &ForestConfig) -> Self {
        assert!(config.n_trees > 0, "need at least one tree");
        assert!(train.n_samples() > 0, "empty training set");
        let n = train.n_samples();
        let trees = (0..config.n_trees)
            .map(|t| {
                let tree_seed = derive_seed(config.seed, t as u64);
                let mut rng = rng_from_seed(tree_seed);
                let rows: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
                let tree_cfg = TreeConfig {
                    max_depth: config.max_depth,
                    min_samples_split: 2,
                    min_samples_leaf: 1,
                    max_features: config.max_features,
                    seed: derive_seed(tree_seed, 1),
                };
                DecisionTree::fit_on_rows(train, &rows, &tree_cfg)
            })
            .collect();
        Self {
            trees,
            n_classes: train.n_classes(),
        }
    }

    /// Number of trees in the ensemble.
    #[must_use]
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

impl Classifier for RandomForest {
    fn predict_row(&self, row: &[f64]) -> u32 {
        majority_label(
            self.trees.iter().map(|t| t.predict_row(row)),
            self.n_classes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_dataset::catalog::DatasetId;
    use gb_dataset::split::stratified_holdout;

    fn holdout_accuracy(forest: &RandomForest, test: &Dataset) -> f64 {
        forest
            .predict(test)
            .iter()
            .zip(test.labels())
            .filter(|(a, b)| a == b)
            .count() as f64
            / test.n_samples() as f64
    }

    #[test]
    fn beats_chance_substantially() {
        let d = DatasetId::S10.generate(0.05, 3);
        let (tr, te) = stratified_holdout(&d, 0.3, 1);
        let cfg = ForestConfig {
            n_trees: 25,
            ..ForestConfig::default_with_seed(7)
        };
        let forest = RandomForest::fit(&d.select(&tr), &cfg);
        let acc = holdout_accuracy(&forest, &d.select(&te));
        assert!(acc > 0.8, "forest accuracy {acc}");
    }

    #[test]
    fn deterministic_under_seed() {
        let d = DatasetId::S2.generate(0.1, 3);
        let cfg = ForestConfig {
            n_trees: 10,
            ..ForestConfig::default_with_seed(5)
        };
        let a = RandomForest::fit(&d, &cfg);
        let b = RandomForest::fit(&d, &cfg);
        assert_eq!(a.predict(&d), b.predict(&d));
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let d = DatasetId::S2.generate(0.2, 3);
        let mk = |seed| {
            RandomForest::fit(
                &d,
                &ForestConfig {
                    n_trees: 5,
                    ..ForestConfig::default_with_seed(seed)
                },
            )
        };
        let a = mk(1).predict(&d);
        let b = mk(2).predict(&d);
        // bootstrap randomness should change at least one prediction on an
        // overlapping dataset
        assert_ne!(a, b);
    }

    #[test]
    fn tree_count_respected() {
        let d = DatasetId::S2.generate(0.05, 0);
        let f = RandomForest::fit(
            &d,
            &ForestConfig {
                n_trees: 13,
                ..Default::default()
            },
        );
        assert_eq!(f.n_trees(), 13);
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_trees_rejected() {
        let d = DatasetId::S2.generate(0.05, 0);
        let _ = RandomForest::fit(
            &d,
            &ForestConfig {
                n_trees: 0,
                ..Default::default()
            },
        );
    }
}
