//! k-nearest-neighbours classifier (kNN, Cover & Hart 1967).
//!
//! Mirrors `sklearn.neighbors.KNeighborsClassifier` defaults: `k = 5`,
//! uniform weights, Euclidean distance, brute-force search (our datasets are
//! small enough that tree indices don't pay off).

use crate::common::{majority_label, Classifier};
use gb_dataset::neighbors::k_nearest;
use gb_dataset::Dataset;

/// kNN hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct KnnConfig {
    /// Number of neighbours consulted per prediction.
    pub k: usize,
}

impl Default for KnnConfig {
    fn default() -> Self {
        Self { k: 5 }
    }
}

/// A fitted (memorized) kNN model.
#[derive(Debug, Clone)]
pub struct KnnClassifier {
    train: Dataset,
    k: usize,
}

impl KnnClassifier {
    /// "Fits" by storing the training set.
    ///
    /// # Panics
    /// Panics if `k == 0` or the training set is empty.
    #[must_use]
    pub fn fit(train: &Dataset, config: KnnConfig) -> Self {
        assert!(config.k > 0, "k must be positive");
        assert!(train.n_samples() > 0, "empty training set");
        Self {
            train: train.clone(),
            k: config.k,
        }
    }

    /// The effective neighbourhood size (min of `k` and train size).
    #[must_use]
    pub fn effective_k(&self) -> usize {
        self.k.min(self.train.n_samples())
    }
}

impl Classifier for KnnClassifier {
    fn predict_row(&self, row: &[f64]) -> u32 {
        let hits = k_nearest(&self.train, row, self.effective_k(), None);
        majority_label(
            hits.iter().map(|h| self.train.label(h.index)),
            self.train.n_classes(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_dataset::catalog::DatasetId;
    use gb_dataset::split::stratified_holdout;

    #[test]
    fn classifies_clean_clusters_perfectly() {
        let mut feats = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            feats.extend_from_slice(&[i as f64 * 0.01, 0.0]);
            labels.push(0);
            feats.extend_from_slice(&[10.0 + i as f64 * 0.01, 0.0]);
            labels.push(1);
        }
        let d = Dataset::from_parts(feats, labels, 2, 2);
        let model = KnnClassifier::fit(&d, KnnConfig::default());
        assert_eq!(model.predict_row(&[0.05, 0.0]), 0);
        assert_eq!(model.predict_row(&[10.05, 0.0]), 1);
    }

    #[test]
    fn respects_k() {
        // 1 nearest is class 1, but 3-NN majority is class 0
        let d = Dataset::from_parts(vec![0.0, 1.1, 1.2, 5.0], vec![1, 0, 0, 0], 1, 2);
        let k1 = KnnClassifier::fit(&d, KnnConfig { k: 1 });
        let k3 = KnnClassifier::fit(&d, KnnConfig { k: 3 });
        assert_eq!(k1.predict_row(&[0.1]), 1);
        assert_eq!(k3.predict_row(&[0.1]), 0);
    }

    #[test]
    fn k_larger_than_train_is_clamped() {
        let d = Dataset::from_parts(vec![0.0, 1.0], vec![0, 1], 1, 2);
        let m = KnnClassifier::fit(&d, KnnConfig { k: 50 });
        assert_eq!(m.effective_k(), 2);
        let _ = m.predict_row(&[0.4]); // must not panic
    }

    #[test]
    fn decent_accuracy_on_banana() {
        let d = DatasetId::S5.generate(0.1, 3);
        let (tr, te) = stratified_holdout(&d, 0.3, 1);
        let train = d.select(&tr);
        let test = d.select(&te);
        let model = KnnClassifier::fit(&train, KnnConfig::default());
        let preds = model.predict(&test);
        let acc = preds
            .iter()
            .zip(test.labels())
            .filter(|(p, t)| p == t)
            .count() as f64
            / test.n_samples() as f64;
        assert!(acc > 0.9, "kNN banana accuracy {acc}");
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        let d = Dataset::from_parts(vec![0.0], vec![0], 1, 1);
        let _ = KnnClassifier::fit(&d, KnnConfig { k: 0 });
    }
}
