//! Common classifier interface.
//!
//! The paper's evaluation trains five classifiers (kNN, DT, RF, XGBoost,
//! LightGBM) behind scikit-learn's uniform API; [`Classifier`] plays that
//! role here. Every model is fit through [`ClassifierKind::fit`] so the
//! experiment harness can iterate over classifiers exactly like the paper's
//! Table IV does.

use gb_dataset::Dataset;

/// A fitted classification model.
pub trait Classifier: Send + Sync {
    /// Predicts the class of a single feature row.
    fn predict_row(&self, row: &[f64]) -> u32;

    /// Predicts classes for every row of `data` (label column ignored).
    /// Rows are scored in parallel; results come back in row order, so the
    /// output matches the sequential loop exactly.
    fn predict(&self, data: &Dataset) -> Vec<u32> {
        use rayon::prelude::*;
        (0..data.n_samples())
            .into_par_iter()
            .map(|i| self.predict_row(data.row(i)))
            .collect()
    }
}

/// The classifier families evaluated by the paper, with the default
/// hyper-parameters mirroring the libraries the paper used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClassifierKind {
    /// k-nearest neighbours, k = 5 (sklearn default).
    Knn,
    /// CART decision tree, Gini, unbounded depth (sklearn default).
    DecisionTree,
    /// Random forest, 100 trees, sqrt features (sklearn default).
    RandomForest,
    /// Exact second-order gradient boosting (XGBoost-like defaults:
    /// 100 rounds, depth 6, η 0.3, λ 1).
    Xgboost,
    /// Histogram leaf-wise gradient boosting (LightGBM-like defaults:
    /// 100 rounds, 31 leaves, lr 0.1).
    LightGbm,
    /// Linear SVM (Pegasos, one-vs-rest). Not part of the paper's Table IV
    /// set; added for the SVM-acceleration study (refs \[24\]–\[26\]).
    LinearSvm,
}

impl ClassifierKind {
    /// All kinds in the paper's Table IV order.
    pub const ALL: [ClassifierKind; 5] = [
        ClassifierKind::DecisionTree,
        ClassifierKind::Xgboost,
        ClassifierKind::LightGbm,
        ClassifierKind::Knn,
        ClassifierKind::RandomForest,
    ];

    /// The paper's five plus the SVM extension.
    pub const EXTENDED: [ClassifierKind; 6] = [
        ClassifierKind::DecisionTree,
        ClassifierKind::Xgboost,
        ClassifierKind::LightGbm,
        ClassifierKind::Knn,
        ClassifierKind::RandomForest,
        ClassifierKind::LinearSvm,
    ];

    /// Display name used in tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ClassifierKind::Knn => "kNN",
            ClassifierKind::DecisionTree => "DT",
            ClassifierKind::RandomForest => "RF",
            ClassifierKind::Xgboost => "XGBoost",
            ClassifierKind::LightGbm => "LightGBM",
            ClassifierKind::LinearSvm => "SVM",
        }
    }

    /// Fits a model with the family's default hyper-parameters.
    ///
    /// `seed` drives any internal randomness (bootstraps, feature
    /// subsampling, tie-breaking); deterministic families ignore it.
    #[must_use]
    pub fn fit(self, train: &Dataset, seed: u64) -> Box<dyn Classifier> {
        match self {
            ClassifierKind::Knn => Box::new(crate::knn::KnnClassifier::fit(
                train,
                crate::knn::KnnConfig::default(),
            )),
            ClassifierKind::DecisionTree => Box::new(crate::tree::DecisionTree::fit(
                train,
                &crate::tree::TreeConfig::default_with_seed(seed),
            )),
            ClassifierKind::RandomForest => Box::new(crate::forest::RandomForest::fit(
                train,
                &crate::forest::ForestConfig::default_with_seed(seed),
            )),
            ClassifierKind::Xgboost => Box::new(crate::gbdt::exact::ExactGbdt::fit(
                train,
                &crate::gbdt::exact::ExactGbdtConfig::default(),
            )),
            ClassifierKind::LightGbm => Box::new(crate::gbdt::hist::HistGbdt::fit(
                train,
                &crate::gbdt::hist::HistGbdtConfig::default(),
            )),
            ClassifierKind::LinearSvm => Box::new(crate::svm::LinearSvm::fit(
                train,
                &crate::svm::SvmConfig {
                    seed,
                    ..Default::default()
                },
            )),
        }
    }

    /// Fits with reduced budgets suitable for the scaled-down experiment
    /// harness (fewer boosting rounds / trees). Identical algorithms, cheaper
    /// defaults; the paper's full defaults remain available via [`Self::fit`].
    #[must_use]
    pub fn fit_fast(self, train: &Dataset, seed: u64) -> Box<dyn Classifier> {
        match self {
            ClassifierKind::RandomForest => {
                let cfg = crate::forest::ForestConfig {
                    n_trees: 30,
                    ..crate::forest::ForestConfig::default_with_seed(seed)
                };
                Box::new(crate::forest::RandomForest::fit(train, &cfg))
            }
            ClassifierKind::Xgboost => {
                let cfg = crate::gbdt::exact::ExactGbdtConfig {
                    n_rounds: 30,
                    ..Default::default()
                };
                Box::new(crate::gbdt::exact::ExactGbdt::fit(train, &cfg))
            }
            ClassifierKind::LightGbm => {
                let cfg = crate::gbdt::hist::HistGbdtConfig {
                    n_rounds: 30,
                    ..Default::default()
                };
                Box::new(crate::gbdt::hist::HistGbdt::fit(train, &cfg))
            }
            ClassifierKind::LinearSvm => {
                let cfg = crate::svm::SvmConfig {
                    epochs: 8,
                    seed,
                    ..Default::default()
                };
                Box::new(crate::svm::LinearSvm::fit(train, &cfg))
            }
            other => other.fit(train, seed),
        }
    }
}

/// Index of the maximum value (first on ties). Utility shared by the
/// probabilistic models.
#[must_use]
pub fn argmax(values: &[f64]) -> usize {
    let mut best = 0;
    for (i, &v) in values.iter().enumerate().skip(1) {
        if v > values[best] {
            best = i;
        }
    }
    best
}

/// Majority label among `labels`, ties broken toward the smaller label.
#[must_use]
pub fn majority_label(labels: impl IntoIterator<Item = u32>, n_classes: usize) -> u32 {
    let mut counts = vec![0usize; n_classes];
    for l in labels {
        counts[l as usize] += 1;
    }
    counts
        .iter()
        .enumerate()
        .max_by(|(ia, ca), (ib, cb)| ca.cmp(cb).then_with(|| ib.cmp(ia)))
        .map(|(i, _)| i as u32)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
    }

    #[test]
    fn majority_votes() {
        assert_eq!(majority_label([0, 1, 1, 2], 3), 1);
        assert_eq!(majority_label([2, 0, 2, 0], 3), 0, "tie -> smaller label");
        assert_eq!(majority_label(std::iter::empty(), 3), 0);
    }

    #[test]
    fn kinds_have_unique_names() {
        let mut seen = std::collections::HashSet::new();
        for k in ClassifierKind::EXTENDED {
            assert!(seen.insert(k.name()));
        }
    }
}
