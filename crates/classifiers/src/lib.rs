//! # gb-classifiers
//!
//! From-scratch implementations of the five classifiers the GBABS paper
//! evaluates with (its §V-A baselines run behind scikit-learn / XGBoost /
//! LightGBM; here everything is pure Rust):
//!
//! * [`knn::KnnClassifier`] — k-nearest neighbours (k = 5),
//! * [`tree::DecisionTree`] — CART with Gini impurity,
//! * [`forest::RandomForest`] — bagged CART with √p feature subsampling,
//! * [`gbdt::exact::ExactGbdt`] — exact second-order boosting (XGBoost-like),
//! * [`gbdt::hist::HistGbdt`] — histogram leaf-wise boosting (LightGBM-like).
//!
//! Beyond the paper's five, [`svm::LinearSvm`] (Pegasos, one-vs-rest)
//! covers the SVM-acceleration motivation of the paper's refs \[24\]–\[26\].
//!
//! ```
//! use gb_classifiers::{Classifier, ClassifierKind};
//! use gb_dataset::catalog::DatasetId;
//!
//! let data = DatasetId::S2.generate(0.1, 1);
//! let model = ClassifierKind::DecisionTree.fit(&data, 0);
//! let preds = model.predict(&data);
//! assert_eq!(preds.len(), data.n_samples());
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod common;
pub mod forest;
pub mod gbdt;
pub mod knn;
pub mod svm;
pub mod tree;

pub use common::{Classifier, ClassifierKind};
