//! CART decision tree (Breiman et al. 1984).
//!
//! Gini-impurity binary splits over numeric thresholds, grown depth-first
//! without pruning — matching `sklearn.tree.DecisionTreeClassifier`
//! defaults (unbounded depth, `min_samples_split = 2`,
//! `min_samples_leaf = 1`). Feature subsampling (`max_features`) is included
//! because the random forest reuses this builder.

use crate::common::Classifier;
use gb_dataset::rng::rng_from_seed;
use gb_dataset::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// How many features to examine per split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaxFeatures {
    /// Consider all features (sklearn DT default).
    All,
    /// Consider ⌈√p⌉ random features (sklearn RF default).
    Sqrt,
    /// Consider a fixed number of random features.
    Fixed(usize),
}

impl MaxFeatures {
    fn resolve(self, p: usize) -> usize {
        match self {
            MaxFeatures::All => p,
            MaxFeatures::Sqrt => (p as f64).sqrt().ceil() as usize,
            MaxFeatures::Fixed(k) => k.clamp(1, p),
        }
    }
}

/// Decision-tree hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Maximum tree depth (`None` = unbounded, sklearn default).
    pub max_depth: Option<usize>,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples each child must retain.
    pub min_samples_leaf: usize,
    /// Features examined per split.
    pub max_features: MaxFeatures,
    /// Seed for feature subsampling (unused with [`MaxFeatures::All`]).
    pub seed: u64,
}

impl TreeConfig {
    /// sklearn `DecisionTreeClassifier` defaults with an explicit seed.
    #[must_use]
    pub fn default_with_seed(seed: u64) -> Self {
        Self {
            max_depth: None,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: MaxFeatures::All,
            seed,
        }
    }
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self::default_with_seed(0)
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        label: u32,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted CART tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_classes: usize,
}

struct Builder<'a> {
    data: &'a Dataset,
    config: &'a TreeConfig,
    rng: StdRng,
    nodes: Vec<Node>,
}

/// Gini impurity of a class histogram.
fn gini(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts
        .iter()
        .map(|&c| {
            let f = c as f64 / t;
            f * f
        })
        .sum::<f64>()
}

fn majority(counts: &[usize]) -> u32 {
    counts
        .iter()
        .enumerate()
        .max_by(|(ia, ca), (ib, cb)| ca.cmp(cb).then_with(|| ib.cmp(ia)))
        .map(|(i, _)| i as u32)
        .unwrap_or(0)
}

impl<'a> Builder<'a> {
    /// Builds the subtree over `rows`, returning its node index.
    fn build(&mut self, rows: &mut [usize], depth: usize) -> usize {
        let q = self.data.n_classes();
        let mut counts = vec![0usize; q];
        for &r in rows.iter() {
            counts[self.data.label(r) as usize] += 1;
        }
        let total = rows.len();
        let node_gini = gini(&counts, total);
        let stop = node_gini == 0.0
            || total < self.config.min_samples_split
            || self.config.max_depth.is_some_and(|d| depth >= d);
        if stop {
            let idx = self.nodes.len();
            self.nodes.push(Node::Leaf {
                label: majority(&counts),
            });
            return idx;
        }

        let p = self.data.n_features();
        let n_feats = self.config.max_features.resolve(p);
        let mut feat_order: Vec<usize> = (0..p).collect();
        if n_feats < p {
            feat_order.shuffle(&mut self.rng);
        }

        let mut best: Option<(f64, usize, f64)> = None; // (weighted child impurity, feature, threshold)
        let mut scratch: Vec<(f64, u32)> = Vec::with_capacity(total);
        for &feat in feat_order.iter().take(n_feats) {
            scratch.clear();
            scratch.extend(
                rows.iter()
                    .map(|&r| (self.data.value(r, feat), self.data.label(r))),
            );
            scratch.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).expect("finite features"));
            let mut left = vec![0usize; q];
            let mut right = counts.clone();
            for i in 0..total - 1 {
                let (v, l) = scratch[i];
                left[l as usize] += 1;
                right[l as usize] -= 1;
                let next_v = scratch[i + 1].0;
                if next_v <= v {
                    continue; // can't split between equal values
                }
                let n_left = i + 1;
                let n_right = total - n_left;
                if n_left < self.config.min_samples_leaf || n_right < self.config.min_samples_leaf {
                    continue;
                }
                let w = (n_left as f64 * gini(&left, n_left)
                    + n_right as f64 * gini(&right, n_right))
                    / total as f64;
                let threshold = v + (next_v - v) * 0.5;
                if best.is_none_or(|(bw, _, _)| w < bw) {
                    best = Some((w, feat, threshold));
                }
            }
        }

        // Like sklearn with min_impurity_decrease = 0, a zero-gain split is
        // still taken (XOR-style targets need it); recursion terminates
        // because both children are strictly smaller.
        let Some((_, feature, threshold)) = best else {
            // All candidate features constant on this node.
            let idx = self.nodes.len();
            self.nodes.push(Node::Leaf {
                label: majority(&counts),
            });
            return idx;
        };

        // Partition rows in place.
        let split_at = itertools_partition(rows, |&r| self.data.value(r, feature) <= threshold);
        debug_assert!(split_at > 0 && split_at < rows.len());
        let idx = self.nodes.len();
        self.nodes.push(Node::Leaf { label: 0 }); // placeholder
        let (left_rows, right_rows) = rows.split_at_mut(split_at);
        let left = self.build(left_rows, depth + 1);
        let right = self.build(right_rows, depth + 1);
        self.nodes[idx] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        idx
    }
}

/// Stable-order in-place partition; returns the count of elements satisfying
/// the predicate (moved to the front).
fn itertools_partition<T: Copy>(slice: &mut [T], mut pred: impl FnMut(&T) -> bool) -> usize {
    let mut buf: Vec<T> = Vec::with_capacity(slice.len());
    let mut rest: Vec<T> = Vec::new();
    for &x in slice.iter() {
        if pred(&x) {
            buf.push(x);
        } else {
            rest.push(x);
        }
    }
    let k = buf.len();
    buf.extend_from_slice(&rest);
    slice.copy_from_slice(&buf);
    k
}

impl DecisionTree {
    /// Fits a CART tree on `train`.
    ///
    /// # Panics
    /// Panics on an empty training set.
    #[must_use]
    pub fn fit(train: &Dataset, config: &TreeConfig) -> Self {
        Self::fit_on_rows(train, &(0..train.n_samples()).collect::<Vec<_>>(), config)
    }

    /// Fits on a row subset (used by the forest's bootstrap).
    ///
    /// # Panics
    /// Panics if `rows` is empty.
    #[must_use]
    pub fn fit_on_rows(train: &Dataset, rows: &[usize], config: &TreeConfig) -> Self {
        assert!(!rows.is_empty(), "empty training set");
        let mut builder = Builder {
            data: train,
            config,
            rng: rng_from_seed(config.seed),
            nodes: Vec::new(),
        };
        let mut rows = rows.to_vec();
        builder.build(&mut rows, 0);
        Self {
            nodes: builder.nodes,
            n_classes: train.n_classes(),
        }
    }

    /// Number of nodes (diagnostic).
    #[must_use]
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Tree depth (diagnostic).
    #[must_use]
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], idx: usize) -> usize {
            match nodes[idx] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + walk(nodes, left).max(walk(nodes, right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            walk(&self.nodes, 0)
        }
    }

    /// Number of classes the tree was trained on.
    #[must_use]
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }
}

impl Classifier for DecisionTree {
    fn predict_row(&self, row: &[f64]) -> u32 {
        let mut idx = 0;
        loop {
            match self.nodes[idx] {
                Node::Leaf { label } => return label,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if row[feature] <= threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_dataset::catalog::DatasetId;
    use gb_dataset::split::stratified_holdout;

    #[test]
    fn gini_values() {
        assert_eq!(gini(&[4, 0], 4), 0.0);
        assert!((gini(&[2, 2], 4) - 0.5).abs() < 1e-12);
        assert!((gini(&[1, 1, 1], 3) - (1.0 - 3.0 / 9.0)).abs() < 1e-12);
    }

    #[test]
    fn memorizes_training_data_unbounded() {
        let d = DatasetId::S2.generate(0.3, 1);
        let tree = DecisionTree::fit(&d, &TreeConfig::default());
        let preds = tree.predict(&d);
        let acc = preds.iter().zip(d.labels()).filter(|(a, b)| a == b).count() as f64
            / d.n_samples() as f64;
        // unbounded CART drives training error to ~0 unless duplicate
        // feature rows carry different labels
        assert!(acc > 0.99, "training accuracy {acc}");
    }

    #[test]
    fn xor_requires_depth_two() {
        let d = Dataset::from_parts(
            vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0],
            vec![0, 1, 1, 0],
            2,
            2,
        );
        let tree = DecisionTree::fit(&d, &TreeConfig::default());
        assert_eq!(tree.predict_row(&[0.0, 0.0]), 0);
        assert_eq!(tree.predict_row(&[0.0, 1.0]), 1);
        assert_eq!(tree.predict_row(&[1.0, 0.0]), 1);
        assert_eq!(tree.predict_row(&[1.0, 1.0]), 0);
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn max_depth_limits_growth() {
        let d = DatasetId::S5.generate(0.05, 2);
        let cfg = TreeConfig {
            max_depth: Some(3),
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&d, &cfg);
        assert!(tree.depth() <= 3);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let d = DatasetId::S5.generate(0.05, 2);
        let cfg = TreeConfig {
            min_samples_leaf: 20,
            ..TreeConfig::default()
        };
        // count min leaf size by pushing every train row down the tree
        let tree = DecisionTree::fit(&d, &cfg);
        let mut leaf_counts = std::collections::HashMap::new();
        for i in 0..d.n_samples() {
            let mut idx = 0;
            loop {
                match tree.nodes[idx] {
                    Node::Leaf { .. } => break,
                    Node::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    } => {
                        idx = if d.value(i, feature) <= threshold {
                            left
                        } else {
                            right
                        };
                    }
                }
            }
            *leaf_counts.entry(idx).or_insert(0usize) += 1;
        }
        assert!(leaf_counts.values().all(|&c| c >= 20), "{leaf_counts:?}");
    }

    #[test]
    fn constant_features_give_single_leaf() {
        let d = Dataset::from_parts(vec![1.0, 1.0, 1.0, 1.0], vec![0, 0, 1, 1], 1, 2);
        let tree = DecisionTree::fit(&d, &TreeConfig::default());
        assert_eq!(tree.n_nodes(), 1);
    }

    #[test]
    fn generalizes_on_blobs() {
        let d = DatasetId::S9.generate(0.1, 5);
        let (tr, te) = stratified_holdout(&d, 0.3, 2);
        let tree = DecisionTree::fit(&d.select(&tr), &TreeConfig::default());
        let test = d.select(&te);
        let acc = tree
            .predict(&test)
            .iter()
            .zip(test.labels())
            .filter(|(a, b)| a == b)
            .count() as f64
            / test.n_samples() as f64;
        assert!(acc > 0.9, "holdout accuracy {acc}");
    }

    #[test]
    fn deterministic_with_all_features() {
        let d = DatasetId::S2.generate(0.1, 7);
        let a = DecisionTree::fit(&d, &TreeConfig::default_with_seed(1));
        let b = DecisionTree::fit(&d, &TreeConfig::default_with_seed(2));
        // MaxFeatures::All ignores the seed entirely
        assert_eq!(a.predict(&d), b.predict(&d));
    }

    #[test]
    fn partition_helper_is_stable() {
        let mut v = [1, 4, 2, 5, 3];
        let k = itertools_partition(&mut v, |&x| x <= 3);
        assert_eq!(k, 3);
        assert_eq!(v, [1, 2, 3, 4, 5]);
    }
}
