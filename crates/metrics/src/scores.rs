//! Scalar classification scores: Accuracy and G-mean.
//!
//! The paper scores standard/noise experiments with Accuracy (Tables II, IV)
//! and imbalanced experiments with G-mean (Fig. 9). For multi-class data the
//! G-mean is the geometric mean of per-class recalls — the convention used
//! by imbalanced-learn, which the paper's tooling builds on.

use crate::confusion::ConfusionMatrix;

/// Fraction of correct predictions.
///
/// # Panics
/// Panics if slices differ in length or are empty.
#[must_use]
pub fn accuracy(truth: &[u32], pred: &[u32]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "length mismatch");
    assert!(!truth.is_empty(), "no predictions to score");
    truth
        .iter()
        .zip(pred.iter())
        .filter(|(a, b)| a == b)
        .count() as f64
        / truth.len() as f64
}

/// Geometric mean of per-class recalls over the classes present in `truth`.
/// Returns 0 when any present class has zero recall (imbalanced-learn
/// convention).
///
/// # Panics
/// Panics if slices differ in length or are empty.
#[must_use]
pub fn g_mean(truth: &[u32], pred: &[u32], n_classes: usize) -> f64 {
    let cm = ConfusionMatrix::from_predictions(truth, pred, n_classes);
    let recalls: Vec<f64> = cm.recalls().into_iter().flatten().collect();
    assert!(!recalls.is_empty(), "no predictions to score");
    if recalls.contains(&0.0) {
        return 0.0;
    }
    let log_sum: f64 = recalls.iter().map(|r| r.ln()).sum();
    (log_sum / recalls.len() as f64).exp()
}

/// Macro-averaged recall over the classes present in `truth` (a.k.a.
/// balanced accuracy, sklearn's `balanced_accuracy_score`).
///
/// # Panics
/// Panics if slices differ in length or are empty.
#[must_use]
pub fn balanced_accuracy(truth: &[u32], pred: &[u32], n_classes: usize) -> f64 {
    let cm = ConfusionMatrix::from_predictions(truth, pred, n_classes);
    let recalls: Vec<f64> = cm.recalls().into_iter().flatten().collect();
    assert!(!recalls.is_empty(), "no predictions to score");
    recalls.iter().sum::<f64>() / recalls.len() as f64
}

/// Macro-averaged precision over classes present in `truth`; classes never
/// predicted contribute precision 0 (sklearn's `zero_division=0`).
///
/// # Panics
/// Panics if slices differ in length or are empty.
#[must_use]
pub fn macro_precision(truth: &[u32], pred: &[u32], n_classes: usize) -> f64 {
    let cm = ConfusionMatrix::from_predictions(truth, pred, n_classes);
    let present: Vec<usize> = (0..n_classes)
        .filter(|&c| (0..n_classes).map(|p| cm.get(c, p)).sum::<usize>() > 0)
        .collect();
    assert!(!present.is_empty(), "no predictions to score");
    let precisions = cm.precisions();
    present
        .iter()
        .map(|&c| precisions[c].unwrap_or(0.0))
        .sum::<f64>()
        / present.len() as f64
}

/// Macro-averaged F1 over classes present in `truth`: the unweighted mean
/// of per-class harmonic precision/recall means, with 0 for degenerate
/// classes (sklearn's `f1_score(average="macro")`).
///
/// # Panics
/// Panics if slices differ in length or are empty.
#[must_use]
pub fn macro_f1(truth: &[u32], pred: &[u32], n_classes: usize) -> f64 {
    let cm = ConfusionMatrix::from_predictions(truth, pred, n_classes);
    let precisions = cm.precisions();
    let recalls = cm.recalls();
    let mut f1s = Vec::new();
    for c in 0..n_classes {
        let Some(r) = recalls[c] else {
            continue; // class absent from truth
        };
        let p = precisions[c].unwrap_or(0.0);
        let f1 = if p + r > 0.0 {
            2.0 * p * r / (p + r)
        } else {
            0.0
        };
        f1s.push(f1);
    }
    assert!(!f1s.is_empty(), "no predictions to score");
    f1s.iter().sum::<f64>() / f1s.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert!((accuracy(&[0, 1, 1], &[0, 1, 0]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(accuracy(&[1], &[1]), 1.0);
    }

    #[test]
    fn gmean_binary() {
        // recall(0) = 1.0, recall(1) = 0.5 -> sqrt(0.5)
        let truth = [0, 0, 1, 1];
        let pred = [0, 0, 1, 0];
        let g = g_mean(&truth, &pred, 2);
        assert!((g - 0.5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn gmean_zero_when_class_fully_missed() {
        let truth = [0, 0, 1, 1];
        let pred = [0, 0, 0, 0];
        assert_eq!(g_mean(&truth, &pred, 2), 0.0);
    }

    #[test]
    fn gmean_ignores_absent_classes() {
        // class 2 never appears in truth: only classes 0 and 1 counted
        let truth = [0, 1];
        let pred = [0, 1];
        assert_eq!(g_mean(&truth, &pred, 3), 1.0);
    }

    #[test]
    fn gmean_multiclass() {
        // recalls 1.0, 0.5, 0.5 -> (0.25)^(1/3)
        let truth = [0, 1, 1, 2, 2];
        let pred = [0, 1, 0, 2, 0];
        let g = g_mean(&truth, &pred, 3);
        assert!((g - 0.25f64.powf(1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn perfect_prediction_scores_one() {
        let truth = [0, 1, 2, 1];
        assert_eq!(accuracy(&truth, &truth), 1.0);
        assert_eq!(g_mean(&truth, &truth, 3), 1.0);
        assert_eq!(balanced_accuracy(&truth, &truth, 3), 1.0);
        assert_eq!(macro_precision(&truth, &truth, 3), 1.0);
        assert_eq!(macro_f1(&truth, &truth, 3), 1.0);
    }

    #[test]
    fn balanced_accuracy_is_mean_recall() {
        // recall(0)=1.0, recall(1)=0.5 -> 0.75
        let truth = [0, 0, 1, 1];
        let pred = [0, 0, 1, 0];
        assert!((balanced_accuracy(&truth, &pred, 2) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn macro_precision_counts_unpredicted_class_as_zero() {
        // class 1 present in truth but never predicted: precision 0
        let truth = [0, 0, 1, 1];
        let pred = [0, 0, 0, 0];
        assert!((macro_precision(&truth, &pred, 2) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn macro_f1_binary_hand_computed() {
        // class 0: p=2/3, r=1 -> f1=0.8; class 1: p=1, r=0.5 -> f1=2/3
        let truth = [0, 0, 1, 1];
        let pred = [0, 0, 1, 0];
        let expect = (0.8 + 2.0 / 3.0) / 2.0;
        assert!((macro_f1(&truth, &pred, 2) - expect).abs() < 1e-12);
    }

    #[test]
    fn macro_scores_ignore_absent_classes() {
        let truth = [0, 1];
        let pred = [0, 1];
        assert_eq!(macro_f1(&truth, &pred, 5), 1.0);
        assert_eq!(balanced_accuracy(&truth, &pred, 5), 1.0);
    }

    #[test]
    fn f1_zero_when_nothing_right_for_class() {
        let truth = [1, 1];
        let pred = [0, 0];
        assert_eq!(macro_f1(&truth, &pred, 2), 0.0);
    }
}
