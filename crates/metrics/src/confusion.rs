//! Confusion matrix.

/// A dense `q × q` confusion matrix; `counts[true][pred]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<usize>,
    n_classes: usize,
}

impl ConfusionMatrix {
    /// Builds the matrix from parallel truth/prediction slices.
    ///
    /// # Panics
    /// Panics if lengths differ or a label is ≥ `n_classes`.
    #[must_use]
    pub fn from_predictions(truth: &[u32], pred: &[u32], n_classes: usize) -> Self {
        assert_eq!(truth.len(), pred.len(), "length mismatch");
        let mut counts = vec![0usize; n_classes * n_classes];
        for (&t, &p) in truth.iter().zip(pred.iter()) {
            assert!(
                (t as usize) < n_classes && (p as usize) < n_classes,
                "label out of range"
            );
            counts[t as usize * n_classes + p as usize] += 1;
        }
        Self { counts, n_classes }
    }

    /// Number of classes.
    #[must_use]
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Cell `(true_class, predicted_class)`.
    #[must_use]
    pub fn get(&self, true_class: usize, predicted: usize) -> usize {
        self.counts[true_class * self.n_classes + predicted]
    }

    /// Total number of scored samples.
    #[must_use]
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Per-class recall (sensitivity); `None` for absent classes.
    #[must_use]
    pub fn recalls(&self) -> Vec<Option<f64>> {
        (0..self.n_classes)
            .map(|c| {
                let support: usize = (0..self.n_classes).map(|p| self.get(c, p)).sum();
                (support > 0).then(|| self.get(c, c) as f64 / support as f64)
            })
            .collect()
    }

    /// Per-class precision; `None` when the class was never predicted.
    #[must_use]
    pub fn precisions(&self) -> Vec<Option<f64>> {
        (0..self.n_classes)
            .map(|c| {
                let predicted: usize = (0..self.n_classes).map(|t| self.get(t, c)).sum();
                (predicted > 0).then(|| self.get(c, c) as f64 / predicted as f64)
            })
            .collect()
    }

    /// Overall accuracy (trace / total).
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let hits: usize = (0..self.n_classes).map(|c| self.get(c, c)).sum();
        hits as f64 / total as f64
    }

    /// Row sums (per-class truth supports).
    #[must_use]
    pub fn supports(&self) -> Vec<usize> {
        (0..self.n_classes)
            .map(|c| (0..self.n_classes).map(|p| self.get(c, p)).sum())
            .collect()
    }

    /// Column sums (per-class prediction counts).
    #[must_use]
    pub fn predicted_counts(&self) -> Vec<usize> {
        (0..self.n_classes)
            .map(|c| (0..self.n_classes).map(|t| self.get(t, c)).sum())
            .collect()
    }

    /// Cohen's kappa: chance-corrected agreement
    /// `(p_o − p_e) / (1 − p_e)`. Returns 0 when `p_e = 1` (both raters
    /// constant), the sklearn convention.
    #[must_use]
    pub fn cohen_kappa(&self) -> f64 {
        let total = self.total() as f64;
        if total == 0.0 {
            return 0.0;
        }
        let p_o = self.accuracy();
        let p_e: f64 = self
            .supports()
            .iter()
            .zip(self.predicted_counts().iter())
            .map(|(&s, &p)| (s as f64 / total) * (p as f64 / total))
            .sum();
        if (1.0 - p_e).abs() < 1e-12 {
            return 0.0;
        }
        (p_o - p_e) / (1.0 - p_e)
    }

    /// Matthews correlation coefficient, multi-class (R_k) form:
    /// `(c·s − Σ p_k t_k) / sqrt((s² − Σ p_k²)(s² − Σ t_k²))`, where `c` is
    /// the trace, `s` the total, `t_k` truth supports and `p_k` prediction
    /// counts. Returns 0 for degenerate denominators (sklearn convention).
    #[must_use]
    pub fn matthews_corrcoef(&self) -> f64 {
        let s = self.total() as f64;
        if s == 0.0 {
            return 0.0;
        }
        let c: f64 = (0..self.n_classes).map(|k| self.get(k, k)).sum::<usize>() as f64;
        let t: Vec<f64> = self.supports().iter().map(|&v| v as f64).collect();
        let p: Vec<f64> = self.predicted_counts().iter().map(|&v| v as f64).collect();
        let tp_dot: f64 = t.iter().zip(p.iter()).map(|(a, b)| a * b).sum();
        let t_sq: f64 = t.iter().map(|v| v * v).sum();
        let p_sq: f64 = p.iter().map(|v| v * v).sum();
        let denom = ((s * s - p_sq) * (s * s - t_sq)).sqrt();
        if denom < 1e-12 {
            return 0.0;
        }
        (c * s - tp_dot) / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_counts() {
        let truth = [0, 0, 1, 1, 2];
        let pred = [0, 1, 1, 1, 0];
        let cm = ConfusionMatrix::from_predictions(&truth, &pred, 3);
        assert_eq!(cm.get(0, 0), 1);
        assert_eq!(cm.get(0, 1), 1);
        assert_eq!(cm.get(1, 1), 2);
        assert_eq!(cm.get(2, 0), 1);
        assert_eq!(cm.total(), 5);
        assert!((cm.accuracy() - 3.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn recalls_and_precisions() {
        let truth = [0, 0, 1, 1];
        let pred = [0, 1, 1, 1];
        let cm = ConfusionMatrix::from_predictions(&truth, &pred, 3);
        let r = cm.recalls();
        assert!((r[0].unwrap() - 0.5).abs() < 1e-12);
        assert!((r[1].unwrap() - 1.0).abs() < 1e-12);
        assert!(r[2].is_none(), "class 2 absent");
        let p = cm.precisions();
        assert!((p[0].unwrap() - 1.0).abs() < 1e-12);
        assert!((p[1].unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!(p[2].is_none());
    }

    #[test]
    fn empty_input() {
        let cm = ConfusionMatrix::from_predictions(&[], &[], 2);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.total(), 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths() {
        let _ = ConfusionMatrix::from_predictions(&[0], &[], 1);
    }

    #[test]
    fn kappa_perfect_and_chance() {
        let truth = [0, 0, 1, 1];
        let cm = ConfusionMatrix::from_predictions(&truth, &truth, 2);
        assert!((cm.cohen_kappa() - 1.0).abs() < 1e-12);
        // predictions independent of truth -> kappa ~ 0
        let cm = ConfusionMatrix::from_predictions(&[0, 0, 1, 1], &[0, 1, 0, 1], 2);
        assert!(cm.cohen_kappa().abs() < 1e-12);
    }

    #[test]
    fn kappa_known_binary_value() {
        // classic worked example: po = 0.8, pe = 0.5 -> kappa = 0.6
        let truth = [0, 0, 0, 0, 0, 1, 1, 1, 1, 1];
        let pred = [0, 0, 0, 0, 1, 1, 1, 1, 1, 0];
        let cm = ConfusionMatrix::from_predictions(&truth, &pred, 2);
        assert!((cm.cohen_kappa() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn kappa_constant_raters_is_zero() {
        let cm = ConfusionMatrix::from_predictions(&[0, 0, 0], &[0, 0, 0], 2);
        assert_eq!(cm.cohen_kappa(), 0.0);
    }

    #[test]
    fn mcc_matches_binary_formula() {
        // tp=4 fn=1 fp=1 tn=4 -> mcc = (16-1)/sqrt(5*5*5*5) = 0.6
        let truth = [0, 0, 0, 0, 0, 1, 1, 1, 1, 1];
        let pred = [0, 0, 0, 0, 1, 1, 1, 1, 1, 0];
        let cm = ConfusionMatrix::from_predictions(&truth, &pred, 2);
        assert!((cm.matthews_corrcoef() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn mcc_bounds_and_extremes() {
        let truth = [0, 1, 2, 0, 1, 2];
        let cm = ConfusionMatrix::from_predictions(&truth, &truth, 3);
        assert!((cm.matthews_corrcoef() - 1.0).abs() < 1e-12);
        // total inversion in binary is -1
        let cm = ConfusionMatrix::from_predictions(&[0, 0, 1, 1], &[1, 1, 0, 0], 2);
        assert!((cm.matthews_corrcoef() + 1.0).abs() < 1e-12);
        // constant prediction is degenerate -> 0
        let cm = ConfusionMatrix::from_predictions(&[0, 1, 0, 1], &[0, 0, 0, 0], 2);
        assert_eq!(cm.matthews_corrcoef(), 0.0);
    }

    #[test]
    fn supports_and_predicted_counts() {
        let cm = ConfusionMatrix::from_predictions(&[0, 0, 1, 2], &[0, 1, 1, 1], 3);
        assert_eq!(cm.supports(), vec![2, 1, 1]);
        assert_eq!(cm.predicted_counts(), vec![1, 3, 0]);
    }
}
