//! Small summary-statistics helpers used by the experiment harness.

/// Arithmetic mean. Returns 0 for empty input.
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation. Returns 0 for fewer than 2 values.
#[must_use]
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Linear-interpolated quantile (`q` in `[0, 1]`).
///
/// # Panics
/// Panics on empty input or `q` outside `[0, 1]`.
#[must_use]
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "q must be in [0,1]");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Median (0.5 quantile).
///
/// # Panics
/// Panics on empty input.
#[must_use]
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Gaussian-kernel density estimate evaluated at `grid` points — the data
/// behind the paper's ridge plots (Figs. 7–8). Bandwidth by Silverman's
/// rule, floored to avoid degenerate spikes.
#[must_use]
pub fn kde(xs: &[f64], grid: &[f64]) -> Vec<f64> {
    if xs.is_empty() {
        return vec![0.0; grid.len()];
    }
    let sd = std_dev(xs);
    let n = xs.len() as f64;
    let bw = (0.9 * sd * n.powf(-0.2)).max(1e-3);
    let norm = 1.0 / (n * bw * (2.0 * std::f64::consts::PI).sqrt());
    grid.iter()
        .map(|&g| {
            xs.iter()
                .map(|&x| {
                    let z = (g - x) / bw;
                    (-0.5 * z * z).exp()
                })
                .sum::<f64>()
                * norm
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn quantiles() {
        let xs = [3.0, 1.0, 2.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((median(&xs) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn kde_integrates_to_roughly_one() {
        let xs = [0.0, 0.1, 0.2, 0.5, 0.6];
        let grid: Vec<f64> = (-200..300).map(|i| i as f64 * 0.01).collect();
        let dens = kde(&xs, &grid);
        let integral: f64 = dens.iter().sum::<f64>() * 0.01;
        assert!((integral - 1.0).abs() < 0.05, "integral {integral}");
    }

    #[test]
    fn kde_peaks_near_data() {
        let xs = [0.5; 10];
        let grid = [0.0, 0.5, 1.0];
        let dens = kde(&xs, &grid);
        assert!(dens[1] > dens[0] && dens[1] > dens[2]);
    }
}
