//! Friedman test with Iman–Davenport correction and Nemenyi critical
//! difference.
//!
//! The paper compares 8 sampling methods over 13 datasets by per-dataset
//! ranks (Fig. 9) and tests pairwise significance with Wilcoxon
//! (Table III). The Friedman test is the standard omnibus companion for
//! exactly such k-methods × n-datasets rank matrices (Demšar 2006): it asks
//! whether *any* method differs before pairwise posthoc comparisons, and
//! the Nemenyi critical difference says how far two mean ranks must be
//! apart to differ significantly. The `experiments fig9` runner reports
//! both alongside the paper's rank heatmap.

use crate::ranking::fractional_ranks;

/// Result of the Friedman omnibus test.
#[derive(Debug, Clone, PartialEq)]
pub struct FriedmanResult {
    /// Friedman chi-square statistic (k−1 degrees of freedom).
    pub chi_square: f64,
    /// P-value of the chi-square statistic.
    pub p_value: f64,
    /// Iman–Davenport F statistic (less conservative than the raw
    /// chi-square; df = (k−1, (k−1)(n−1))).
    pub iman_davenport_f: f64,
    /// P-value of the Iman–Davenport statistic.
    pub iman_davenport_p: f64,
    /// Mean rank per method (lower = better when ranks come from
    /// [`friedman_from_scores`], which ranks higher scores better).
    pub mean_ranks: Vec<f64>,
    /// Number of datasets (blocks).
    pub n_datasets: usize,
}

/// Errors for malformed Friedman inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FriedmanError {
    /// Fewer than two methods or two datasets.
    TooSmall,
    /// Rows have inconsistent lengths.
    Ragged,
}

impl std::fmt::Display for FriedmanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FriedmanError::TooSmall => {
                write!(f, "need at least 2 methods and 2 datasets")
            }
            FriedmanError::Ragged => write!(f, "score rows have differing lengths"),
        }
    }
}

impl std::error::Error for FriedmanError {}

/// Regularized lower incomplete gamma `P(a, x)` (series for `x < a+1`,
/// continued fraction otherwise). Numerical Recipes formulation.
fn gamma_p(a: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0 && x >= 0.0);
    if x == 0.0 {
        return 0.0;
    }
    let ln_gamma_a = ln_gamma(a);
    if x < a + 1.0 {
        // series expansion
        let mut term = 1.0 / a;
        let mut sum = term;
        let mut ap = a;
        for _ in 0..500 {
            ap += 1.0;
            term *= x / ap;
            sum += term;
            if term.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        sum * (-x + a * x.ln() - ln_gamma_a).exp()
    } else {
        // continued fraction for Q(a, x), Lentz's algorithm
        let tiny = 1e-300;
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / tiny;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < tiny {
                d = tiny;
            }
            c = b + an / c;
            if c.abs() < tiny {
                c = tiny;
            }
            d = 1.0 / d;
            let del = d * c;
            h *= del;
            if (del - 1.0).abs() < 1e-15 {
                break;
            }
        }
        let q = (-x + a * x.ln() - ln_gamma_a).exp() * h;
        1.0 - q
    }
}

/// Natural log of the gamma function (Lanczos approximation, g = 7).
fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // reflection formula
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + 7.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Chi-square survival function (upper tail) with `df` degrees of freedom.
#[must_use]
pub fn chi_square_sf(x: f64, df: f64) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    (1.0 - gamma_p(df / 2.0, x / 2.0)).clamp(0.0, 1.0)
}

/// Regularized incomplete beta `I_x(a, b)` via continued fraction.
fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&x));
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // use the symmetry that converges fastest
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - (front * beta_cf(b, a, 1.0 - x) / b)
    }
}

/// Continued fraction for the incomplete beta (Lentz's algorithm).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    let tiny = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < tiny {
        d = tiny;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..500 {
        let m = m as f64;
        let m2 = 2.0 * m;
        // even step
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < tiny {
            d = tiny;
        }
        c = 1.0 + aa / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        h *= d * c;
        // odd step
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < tiny {
            d = tiny;
        }
        c = 1.0 + aa / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h
}

/// F-distribution survival function with `(d1, d2)` degrees of freedom.
#[must_use]
pub fn f_sf(x: f64, d1: f64, d2: f64) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    beta_inc(d2 / 2.0, d1 / 2.0, d2 / (d2 + d1 * x)).clamp(0.0, 1.0)
}

/// Runs the Friedman test on a pre-ranked matrix: `ranks[dataset][method]`,
/// fractional ranks 1..=k within each dataset row.
///
/// # Errors
/// [`FriedmanError::TooSmall`] with fewer than 2 methods or datasets;
/// [`FriedmanError::Ragged`] when rows disagree in length.
pub fn friedman_from_ranks(ranks: &[Vec<f64>]) -> Result<FriedmanResult, FriedmanError> {
    let n = ranks.len();
    if n < 2 {
        return Err(FriedmanError::TooSmall);
    }
    let k = ranks[0].len();
    if k < 2 {
        return Err(FriedmanError::TooSmall);
    }
    if ranks.iter().any(|r| r.len() != k) {
        return Err(FriedmanError::Ragged);
    }
    let mut mean_ranks = vec![0.0f64; k];
    for row in ranks {
        for (j, &r) in row.iter().enumerate() {
            mean_ranks[j] += r;
        }
    }
    for m in mean_ranks.iter_mut() {
        *m /= n as f64;
    }
    let (nf, kf) = (n as f64, k as f64);
    let sum_sq: f64 = mean_ranks.iter().map(|r| r * r).sum();
    let chi_square = 12.0 * nf / (kf * (kf + 1.0)) * (sum_sq - kf * (kf + 1.0) * (kf + 1.0) / 4.0);
    let p_value = chi_square_sf(chi_square, kf - 1.0);
    // Iman–Davenport correction; guard the denominator for chi² ≈ n(k−1).
    let denom = nf * (kf - 1.0) - chi_square;
    let (iman_davenport_f, iman_davenport_p) = if denom > 1e-12 {
        let f = (nf - 1.0) * chi_square / denom;
        (f, f_sf(f, kf - 1.0, (kf - 1.0) * (nf - 1.0)))
    } else {
        (f64::INFINITY, 0.0)
    };
    Ok(FriedmanResult {
        chi_square,
        p_value,
        iman_davenport_f,
        iman_davenport_p,
        mean_ranks,
        n_datasets: n,
    })
}

/// Runs the Friedman test on raw scores `scores[dataset][method]` where
/// **higher is better** (accuracy, G-mean): each dataset row is converted
/// to fractional ranks with rank 1 for the best method.
///
/// # Errors
/// Same as [`friedman_from_ranks`].
pub fn friedman_from_scores(scores: &[Vec<f64>]) -> Result<FriedmanResult, FriedmanError> {
    // fractional_ranks already assigns rank 1 to the highest score
    let ranks: Vec<Vec<f64>> = scores.iter().map(|row| fractional_ranks(row)).collect();
    friedman_from_ranks(&ranks)
}

/// Nemenyi critical difference at α = 0.05 for `k` methods over
/// `n_datasets` datasets: two methods differ significantly when their mean
/// ranks differ by at least this much (Demšar 2006, Table 5).
///
/// # Panics
/// Panics for `k < 2` or `k > 10` (the tabulated range).
#[must_use]
pub fn nemenyi_critical_difference(k: usize, n_datasets: usize) -> f64 {
    // q_0.05 for the studentized range statistic / sqrt(2), k = 2..=10
    const Q05: [f64; 9] = [
        1.960, 2.343, 2.569, 2.728, 2.850, 2.949, 3.031, 3.102, 3.164,
    ];
    assert!((2..=10).contains(&k), "Nemenyi table covers k in 2..=10");
    let q = Q05[k - 2];
    q * (k as f64 * (k as f64 + 1.0) / (6.0 * n_datasets as f64)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        assert!((ln_gamma(1.0)).abs() < 1e-12);
        assert!((ln_gamma(2.0)).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn chi_square_sf_matches_known_quantiles() {
        // chi² with 1 df: P(X > 3.841) ≈ 0.05
        assert!((chi_square_sf(3.841, 1.0) - 0.05).abs() < 1e-3);
        // 4 df: P(X > 9.488) ≈ 0.05
        assert!((chi_square_sf(9.488, 4.0) - 0.05).abs() < 1e-3);
        // boundary behaviour
        assert_eq!(chi_square_sf(0.0, 3.0), 1.0);
        assert!(chi_square_sf(1e3, 3.0) < 1e-12);
    }

    #[test]
    fn f_sf_matches_known_quantiles() {
        // F(2, 10): P(X > 4.103) ≈ 0.05
        assert!((f_sf(4.103, 2.0, 10.0) - 0.05).abs() < 2e-3);
        // F(1, 1): median is 1 -> sf(1) = 0.5
        assert!((f_sf(1.0, 1.0, 1.0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn friedman_on_demsar_worked_example() {
        // Demšar (2006) §3.2.2-style data: 4 methods, 4 datasets with a
        // consistent winner produce a significant omnibus result.
        let ranks = vec![
            vec![1.0, 2.0, 3.0, 4.0],
            vec![1.0, 2.0, 3.0, 4.0],
            vec![1.0, 2.0, 3.0, 4.0],
            vec![1.0, 3.0, 2.0, 4.0],
        ];
        let res = friedman_from_ranks(&ranks).unwrap();
        assert!(res.p_value < 0.05, "p = {}", res.p_value);
        assert!(res.mean_ranks[0] < res.mean_ranks[3]);
        assert_eq!(res.n_datasets, 4);
    }

    #[test]
    fn friedman_no_difference_is_insignificant() {
        // Rotating ranks: every method has the same mean rank.
        let ranks = vec![
            vec![1.0, 2.0, 3.0],
            vec![2.0, 3.0, 1.0],
            vec![3.0, 1.0, 2.0],
        ];
        let res = friedman_from_ranks(&ranks).unwrap();
        assert!(res.chi_square.abs() < 1e-9);
        assert!((res.p_value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn from_scores_ranks_higher_as_better() {
        let scores = vec![
            vec![0.9, 0.8, 0.7],
            vec![0.95, 0.85, 0.6],
            vec![0.99, 0.9, 0.5],
        ];
        let res = friedman_from_scores(&scores).unwrap();
        assert!((res.mean_ranks[0] - 1.0).abs() < 1e-12);
        assert!((res.mean_ranks[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn ties_share_fractional_ranks() {
        let scores = vec![vec![0.5, 0.5, 0.1], vec![0.7, 0.7, 0.2]];
        let res = friedman_from_scores(&scores).unwrap();
        assert!((res.mean_ranks[0] - 1.5).abs() < 1e-12);
        assert!((res.mean_ranks[1] - 1.5).abs() < 1e-12);
        assert!((res.mean_ranks[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_degenerate_shapes() {
        assert_eq!(
            friedman_from_ranks(&[vec![1.0, 2.0]]),
            Err(FriedmanError::TooSmall)
        );
        assert_eq!(
            friedman_from_ranks(&[vec![1.0], vec![1.0]]),
            Err(FriedmanError::TooSmall)
        );
        assert_eq!(
            friedman_from_ranks(&[vec![1.0, 2.0], vec![1.0, 2.0, 3.0]]),
            Err(FriedmanError::Ragged)
        );
    }

    #[test]
    fn nemenyi_cd_matches_demsar_table() {
        // Demšar reports CD ≈ 3.143 for k=10, n=10 at α=0.05 … check the
        // formula on a couple of points instead:
        // k=2: q=1.960, CD = 1.960*sqrt(2*3/(6n)) = 1.960/sqrt(n)
        let cd = nemenyi_critical_difference(2, 16);
        assert!((cd - 1.960 / 4.0).abs() < 1e-12);
        let cd8 = nemenyi_critical_difference(8, 13);
        assert!(cd8 > 0.0 && cd8 < 4.0);
    }

    #[test]
    #[should_panic(expected = "Nemenyi table covers k in 2..=10")]
    fn nemenyi_out_of_table() {
        let _ = nemenyi_critical_difference(11, 5);
    }
}
