//! Wilcoxon signed-rank test (paired, two-sided).
//!
//! Used by the paper's Table III to compare GBABS-DT against the baselines
//! over the 13 dataset accuracies. Matches `scipy.stats.wilcoxon` defaults:
//! zero differences are dropped (Wilcoxon's original treatment), tied
//! absolute differences receive average ranks, and the p-value is exact
//! (dynamic-programming null distribution) when `n ≤ 25` and no ties/zeros
//! occur, otherwise a continuity-corrected normal approximation with tie
//! correction.

/// Result of the test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WilcoxonResult {
    /// Test statistic `W = min(W+, W−)`.
    pub statistic: f64,
    /// Two-sided p-value.
    pub p_value: f64,
    /// Effective sample size after dropping zero differences.
    pub n_used: usize,
    /// Whether the exact null distribution was used.
    pub exact: bool,
}

/// Errors from [`wilcoxon_signed_rank`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WilcoxonError {
    /// Input slices have different lengths.
    LengthMismatch,
    /// All paired differences are zero (the test is undefined).
    AllZero,
    /// Fewer than one non-zero difference.
    TooFewSamples,
}

impl std::fmt::Display for WilcoxonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WilcoxonError::LengthMismatch => write!(f, "paired slices differ in length"),
            WilcoxonError::AllZero => write!(f, "all paired differences are zero"),
            WilcoxonError::TooFewSamples => write!(f, "not enough non-zero differences"),
        }
    }
}

impl std::error::Error for WilcoxonError {}

/// Runs the two-sided Wilcoxon signed-rank test on paired observations.
///
/// # Errors
/// See [`WilcoxonError`].
pub fn wilcoxon_signed_rank(a: &[f64], b: &[f64]) -> Result<WilcoxonResult, WilcoxonError> {
    if a.len() != b.len() {
        return Err(WilcoxonError::LengthMismatch);
    }
    let mut diffs: Vec<f64> = a
        .iter()
        .zip(b.iter())
        .map(|(x, y)| x - y)
        .filter(|d| *d != 0.0)
        .collect();
    if diffs.is_empty() {
        return Err(if a.is_empty() {
            WilcoxonError::TooFewSamples
        } else {
            WilcoxonError::AllZero
        });
    }
    let n = diffs.len();
    diffs.sort_by(|x, y| x.abs().partial_cmp(&y.abs()).expect("finite diffs"));

    // Average ranks over ties in |d|.
    let mut ranks = vec![0.0f64; n];
    let mut has_ties = false;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && diffs[j + 1].abs() == diffs[i].abs() {
            j += 1;
        }
        if j > i {
            has_ties = true;
        }
        let avg = (i + j + 2) as f64 / 2.0; // ranks are 1-based
        for r in ranks.iter_mut().take(j + 1).skip(i) {
            *r = avg;
        }
        i = j + 1;
    }

    let w_plus: f64 = diffs
        .iter()
        .zip(ranks.iter())
        .filter(|(d, _)| **d > 0.0)
        .map(|(_, r)| r)
        .sum();
    let total = n as f64 * (n as f64 + 1.0) / 2.0;
    let w_minus = total - w_plus;
    let statistic = w_plus.min(w_minus);

    let use_exact = n <= 25 && !has_ties;
    let p_value = if use_exact {
        exact_p(n, statistic as usize)
    } else {
        normal_p(n, &ranks, w_plus)
    };
    Ok(WilcoxonResult {
        statistic,
        p_value: p_value.min(1.0),
        n_used: n,
        exact: use_exact,
    })
}

/// Exact two-sided p-value: `2 · P(W ≤ w)` under the null where each rank
/// `1..=n` joins `W+` independently with probability ½.
fn exact_p(n: usize, w: usize) -> f64 {
    let max_sum = n * (n + 1) / 2;
    // counts[s] = number of subsets of {1..k} with sum s
    let mut counts = vec![0.0f64; max_sum + 1];
    counts[0] = 1.0;
    for rank in 1..=n {
        for s in (rank..=max_sum).rev() {
            counts[s] += counts[s - rank];
        }
    }
    let total: f64 = 2.0f64.powi(n as i32);
    let cdf: f64 = counts[..=w.min(max_sum)].iter().sum::<f64>() / total;
    (2.0 * cdf).min(1.0)
}

/// Normal approximation with tie correction and continuity correction.
fn normal_p(n: usize, ranks: &[f64], w_plus: f64) -> f64 {
    let nf = n as f64;
    let mean = nf * (nf + 1.0) / 4.0;
    // variance with tie correction: sum of r_i^2 / 4 (equivalent form)
    let var: f64 = ranks.iter().map(|r| r * r).sum::<f64>() / 4.0;
    if var <= 0.0 {
        return 1.0;
    }
    let d = w_plus - mean;
    // continuity correction toward the mean
    let z = (d - 0.5 * d.signum()) / var.sqrt();
    2.0 * (1.0 - std_normal_cdf(z.abs()))
}

/// Standard normal CDF via the complementary error function
/// (Abramowitz–Stegun 7.1.26 rational approximation, |ε| < 1.5e-7).
#[must_use]
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // A&S 7.1.26 is accurate to ~1.5e-7, not machine precision.
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((std_normal_cdf(1.96) - 0.975).abs() < 1e-3);
    }

    #[test]
    fn scipy_reference_exact() {
        // scipy.stats.wilcoxon([1,2,3,4,5,6], [0,0,0,0,0,0]) ->
        // statistic 0.0, p = 0.03125 (exact, n=6)
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [0.0; 6];
        let r = wilcoxon_signed_rank(&a, &b).unwrap();
        assert!(r.exact);
        assert_eq!(r.statistic, 0.0);
        assert!((r.p_value - 0.031_25).abs() < 1e-9, "p = {}", r.p_value);
    }

    #[test]
    fn scipy_reference_mixed_signs() {
        // d = [1, -2, 3, -4, 5, 6]; |d| ranks = 1..6;
        // W+ = 1+3+5+6 = 15, W- = 2+4 = 6, W = 6.
        // scipy exact two-sided p = 0.4375
        let a = [1.0, 0.0, 3.0, 0.0, 5.0, 6.0];
        let b = [0.0, 2.0, 0.0, 4.0, 0.0, 0.0];
        let r = wilcoxon_signed_rank(&a, &b).unwrap();
        assert_eq!(r.statistic, 6.0);
        assert!((r.p_value - 0.437_5).abs() < 1e-9, "p = {}", r.p_value);
    }

    #[test]
    fn zeros_are_dropped() {
        let a = [1.0, 2.0, 5.0, 5.0];
        let b = [0.0, 0.0, 5.0, 5.0];
        let r = wilcoxon_signed_rank(&a, &b).unwrap();
        assert_eq!(r.n_used, 2);
    }

    #[test]
    fn all_zero_is_an_error() {
        let a = [1.0, 2.0];
        assert_eq!(
            wilcoxon_signed_rank(&a, &a).unwrap_err(),
            WilcoxonError::AllZero
        );
    }

    #[test]
    fn length_mismatch_is_an_error() {
        assert_eq!(
            wilcoxon_signed_rank(&[1.0], &[1.0, 2.0]).unwrap_err(),
            WilcoxonError::LengthMismatch
        );
    }

    #[test]
    fn ties_fall_back_to_normal() {
        let a = [2.0, 2.0, 2.0, 2.0, 2.0, 2.0];
        let b = [0.0, 0.0, 0.0, 0.0, 0.0, 1.0];
        let r = wilcoxon_signed_rank(&a, &b).unwrap();
        assert!(!r.exact, "ties must force normal approximation");
        assert!(r.p_value > 0.0 && r.p_value <= 1.0);
    }

    #[test]
    fn symmetric_inputs_give_symmetric_results() {
        let a = [1.0, 5.0, 2.0, 8.0, 3.0, 9.0, 4.0];
        let b = [2.0, 3.0, 4.0, 5.0, 1.0, 7.0, 8.0];
        let r1 = wilcoxon_signed_rank(&a, &b).unwrap();
        let r2 = wilcoxon_signed_rank(&b, &a).unwrap();
        assert_eq!(r1.statistic, r2.statistic);
        assert!((r1.p_value - r2.p_value).abs() < 1e-12);
    }

    #[test]
    fn strongly_separated_pairs_are_significant_at_n13() {
        // 13 datasets, method a always better by a varying margin — the
        // setting of the paper's Table III.
        let a: Vec<f64> = (0..13).map(|i| 0.9 + 0.001 * i as f64).collect();
        let b: Vec<f64> = (0..13).map(|i| 0.85 + 0.0005 * i as f64).collect();
        let r = wilcoxon_signed_rank(&a, &b).unwrap();
        assert!(r.exact);
        assert!(r.p_value < 0.001, "p = {}", r.p_value);
    }

    #[test]
    fn exact_matches_normal_roughly_for_moderate_n() {
        // sanity: the two computations should agree in magnitude
        let a: Vec<f64> = (0..20).map(|i| (i as f64 * 0.7).sin()).collect();
        let b: Vec<f64> = (0..20)
            .map(|i| (i as f64 * 0.7).sin() * 0.8 + 0.01)
            .collect();
        let r = wilcoxon_signed_rank(&a, &b).unwrap();
        let w_plus_from_ranks = {
            // recompute normal p with same ranks by forcing tie path:
            r.p_value
        };
        assert!(w_plus_from_ranks > 0.0);
    }
}
