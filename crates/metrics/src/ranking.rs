//! Method rankings (the paper's Fig. 9 heatmaps).
//!
//! Given one score per method on a dataset, methods are ranked 1 (best,
//! highest score) to m. Two flavours: *ordinal* integer ranks with ties
//! broken by method order (what a heatmap cell shows) and *fractional*
//! average ranks (what rank-based statistics want).

/// Ordinal ranks, 1 = highest score; ties broken toward the earlier method.
#[must_use]
pub fn ordinal_ranks(scores: &[f64]) -> Vec<usize> {
    let m = scores.len();
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .expect("finite scores")
            .then_with(|| a.cmp(&b))
    });
    let mut ranks = vec![0usize; m];
    for (pos, &method) in order.iter().enumerate() {
        ranks[method] = pos + 1;
    }
    ranks
}

/// Fractional ranks with ties averaged, 1 = highest score.
#[must_use]
pub fn fractional_ranks(scores: &[f64]) -> Vec<f64> {
    let m = scores.len();
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .expect("finite scores")
            .then_with(|| a.cmp(&b))
    });
    let mut ranks = vec![0.0f64; m];
    let mut i = 0;
    while i < m {
        let mut j = i;
        while j + 1 < m && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let avg = (i + j + 2) as f64 / 2.0;
        for &method in &order[i..=j] {
            ranks[method] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Mean rank per method across datasets: `ranks_per_dataset[d][method]`.
///
/// # Panics
/// Panics on empty input or ragged rows.
#[must_use]
pub fn mean_ranks(ranks_per_dataset: &[Vec<f64>]) -> Vec<f64> {
    assert!(!ranks_per_dataset.is_empty(), "no datasets");
    let m = ranks_per_dataset[0].len();
    let mut sums = vec![0.0; m];
    for row in ranks_per_dataset {
        assert_eq!(row.len(), m, "ragged rank rows");
        for (s, &r) in sums.iter_mut().zip(row.iter()) {
            *s += r;
        }
    }
    let d = ranks_per_dataset.len() as f64;
    sums.into_iter().map(|s| s / d).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordinal_basic() {
        assert_eq!(ordinal_ranks(&[0.5, 0.9, 0.7]), vec![3, 1, 2]);
    }

    #[test]
    fn ordinal_tie_breaks_by_method_order() {
        assert_eq!(ordinal_ranks(&[0.9, 0.9, 0.1]), vec![1, 2, 3]);
    }

    #[test]
    fn fractional_ties_averaged() {
        let r = fractional_ranks(&[0.9, 0.9, 0.1]);
        assert_eq!(r, vec![1.5, 1.5, 3.0]);
    }

    #[test]
    fn fractional_matches_ordinal_without_ties() {
        let scores = [0.3, 0.8, 0.1, 0.5];
        let o = ordinal_ranks(&scores);
        let f = fractional_ranks(&scores);
        for (a, b) in o.iter().zip(f.iter()) {
            assert!((*a as f64 - b).abs() < 1e-12);
        }
    }

    #[test]
    fn mean_ranks_across_datasets() {
        let per = vec![vec![1.0, 2.0], vec![2.0, 1.0], vec![1.0, 2.0]];
        let m = mean_ranks(&per);
        assert!((m[0] - 4.0 / 3.0).abs() < 1e-12);
        assert!((m[1] - 5.0 / 3.0).abs() < 1e-12);
    }
}
