//! # gb-metrics
//!
//! Evaluation metrics and statistics for the GBABS reproduction: Accuracy,
//! multi-class G-mean, confusion matrices, the Wilcoxon signed-rank test
//! (the paper's Table III), rank utilities (Fig. 9) and summary statistics
//! for the ridge plots (Figs. 7–8).
//!
//! ```
//! use gb_metrics::{accuracy, g_mean, wilcoxon::wilcoxon_signed_rank};
//!
//! let truth = [0, 0, 1, 1];
//! let pred = [0, 1, 1, 1];
//! assert_eq!(accuracy(&truth, &pred), 0.75);
//! assert!(g_mean(&truth, &pred, 2) > 0.7);
//!
//! let a = [0.9, 0.8, 0.95, 0.7, 0.85, 0.9];
//! let b = [0.7, 0.6, 0.80, 0.5, 0.70, 0.8];
//! let res = wilcoxon_signed_rank(&a, &b).unwrap();
//! assert!(res.p_value < 0.05);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod confusion;
pub mod friedman;
pub mod ranking;
pub mod scores;
pub mod stats;
pub mod wilcoxon;

pub use confusion::ConfusionMatrix;
pub use scores::{accuracy, balanced_accuracy, g_mean, macro_f1, macro_precision};
