//! Kernel-parity property tests (ISSUE 3 satellite).
//!
//! The workspace's cross-backend bit-identity guarantees rest on two facts:
//!
//! 1. every distance-kernel tier (AVX2, SSE2, scalar fallback) computes the
//!    **same** 4-lane accumulation tree, so tier results are bit-identical
//!    on every host and under `GB_SIMD=scalar`;
//! 2. the contract is **width-keyed**: rows narrower than `LANE_WIDTH` are
//!    summed in sequential order by every path ([`sq_euclidean`],
//!    [`sq_euclidean_dispatched`], and the batched kernel all agree), and
//!    rows at or above it use the lane tree everywhere — so for any fixed
//!    row width, every scan path produces the same bits.
//!
//! These tests drive both claims through odd lengths, remainder tails,
//! subnormals, and ±0.0, and bound the lane tree's divergence from the
//! sequential oracle by a scaled-ULP tolerance.

use gb_dataset::distance::{
    sq_euclidean, sq_euclidean_dispatched, sq_euclidean_naive, sq_euclidean_one_to_many,
    sq_euclidean_one_to_many_with, sq_euclidean_scalar, sq_euclidean_with, Kernel, LANE_WIDTH,
};
use proptest::prelude::*;

/// Interesting coordinates: normals across magnitudes, subnormals, and
/// signed zeros (NaN/inf excluded — `Dataset` constructors reject them).
fn coord() -> impl Strategy<Value = f64> {
    prop_oneof![
        8 => -1e3f64..1e3f64,
        2 => prop_oneof![
            Just(0.0f64),
            Just(-0.0f64),
            Just(f64::MIN_POSITIVE),
            Just(-f64::MIN_POSITIVE),
            Just(f64::MIN_POSITIVE / 8.0),   // subnormal
            Just(-f64::MIN_POSITIVE / 16.0), // subnormal
            Just(1e-200f64),
            Just(1e200f64),
        ],
    ]
}

/// Equal-length vector pairs covering every `len % 4` tail class.
fn vec_pair() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (0usize..70).prop_flat_map(|n| {
        (
            proptest::collection::vec(coord(), n),
            proptest::collection::vec(coord(), n),
        )
    })
}

proptest! {
    /// Every host-available tier agrees with the scalar fallback
    /// bit-for-bit — the SIMD paths can never drift from the path CI
    /// forces with `GB_SIMD=scalar`.
    #[test]
    fn all_tiers_bit_identical((a, b) in vec_pair()) {
        let want = sq_euclidean_scalar(&a, &b);
        for tier in Kernel::available() {
            let got = sq_euclidean_with(tier, &a, &b);
            prop_assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "tier {} diverged: {} vs {}",
                tier.name(),
                got,
                want
            );
        }
        // Width-keyed contract: the inline per-pair kernel is sequential
        // order; the dispatched per-pair kernel equals it below LANE_WIDTH
        // and the (tier-identical) lane tree at or above it. At n <= 2 the
        // two orders coincide, so everything agrees there.
        let seq = sq_euclidean_naive(&a, &b);
        prop_assert_eq!(sq_euclidean(&a, &b).to_bits(), seq.to_bits());
        let dispatched = sq_euclidean_dispatched(&a, &b);
        if a.len() < LANE_WIDTH {
            prop_assert_eq!(dispatched.to_bits(), seq.to_bits());
        } else {
            prop_assert_eq!(dispatched.to_bits(), want.to_bits());
        }
        if a.len() <= 2 {
            prop_assert_eq!(seq.to_bits(), want.to_bits());
        }
    }

    /// The lane-ordered kernels agree with the naive sequential oracle
    /// within a scaled-ULP reassociation bound (all summands are
    /// non-negative, so the error of either summation order is at most
    /// ~n·ε relative to the exact sum).
    #[test]
    fn lane_tree_close_to_naive((a, b) in vec_pair()) {
        let naive = sq_euclidean_naive(&a, &b);
        let lanes = sq_euclidean_scalar(&a, &b);
        if naive.is_infinite() || lanes.is_infinite() {
            // A squared term overflowed; every summation order sees it.
            prop_assert_eq!(lanes, naive);
            return;
        }
        let n = a.len() as f64;
        let tol = f64::EPSILON * naive * (n + 4.0) + f64::MIN_POSITIVE;
        prop_assert!(
            (lanes - naive).abs() <= tol,
            "lanes {} vs naive {} (n = {})",
            lanes,
            naive,
            a.len()
        );
        prop_assert!(lanes >= 0.0, "squared distance must be non-negative");
    }

    /// The batched one-to-many kernel matches per-pair calls bit-for-bit
    /// on every tier, for arbitrary row counts and widths (amortized
    /// dispatch must not change results).
    #[test]
    fn one_to_many_matches_per_pair(
        p in 0usize..20,
        rows in 0usize..12,
        seed_a in proptest::collection::vec(coord(), 0..20),
        seed_b in proptest::collection::vec(coord(), 0..240),
    ) {
        let query: Vec<f64> = (0..p).map(|i| *seed_a.get(i).unwrap_or(&1.5)).collect();
        let block: Vec<f64> = (0..p * rows)
            .map(|i| *seed_b.get(i % seed_b.len().max(1)).unwrap_or(&-0.5))
            .collect();
        let mut out = vec![f64::NAN; rows];
        for tier in Kernel::available() {
            sq_euclidean_one_to_many_with(tier, &query, &block, &mut out);
            for (r, &d) in out.iter().enumerate() {
                let row = &block[r * p..(r + 1) * p];
                // Width-keyed: sub-lane batched rows are sequential order
                // (all tiers identically), wider rows are the tier's lane
                // tree.
                let want = if p < LANE_WIDTH {
                    sq_euclidean_naive(&query, row)
                } else {
                    sq_euclidean_with(tier, &query, row)
                };
                prop_assert_eq!(
                    d.to_bits(),
                    want.to_bits(),
                    "tier {} row {}",
                    tier.name(),
                    r
                );
            }
        }
        // The dispatched batched entry agrees with the dispatched per-pair
        // kernel for every width — the invariant the hybrid scans rely on.
        sq_euclidean_one_to_many(&query, &block, &mut out);
        for (r, &d) in out.iter().enumerate() {
            let want = sq_euclidean_dispatched(&query, &block[r * p..(r + 1) * p]);
            prop_assert_eq!(d.to_bits(), want.to_bits());
        }
    }
}

/// Directed tail cases: every `len % 4` class with values whose squares
/// differ across summation orders (catches a tier that folds its remainder
/// into the wrong lane).
#[test]
fn remainder_tails_bit_identical() {
    for n in [1usize, 2, 3, 4, 5, 6, 7, 8, 9, 11, 13, 63, 64, 65] {
        let a: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64) * 1e-3).collect();
        let b: Vec<f64> = (0..n).map(|i| 3.0_f64.powi(i as i32 % 11 - 5)).collect();
        let want = sq_euclidean_scalar(&a, &b);
        for tier in Kernel::available() {
            assert_eq!(
                sq_euclidean_with(tier, &a, &b).to_bits(),
                want.to_bits(),
                "tier {} at n={n}",
                tier.name()
            );
        }
    }
}

/// Signed zeros and subnormal differences survive every tier unchanged.
#[test]
fn signed_zero_and_subnormal_tails() {
    let a = [0.0, -0.0, f64::MIN_POSITIVE, -f64::MIN_POSITIVE / 4.0, 0.0];
    let b = [-0.0, 0.0, f64::MIN_POSITIVE / 2.0, 0.0, 1e-300];
    let want = sq_euclidean_scalar(&a, &b);
    for tier in Kernel::available() {
        assert_eq!(
            sq_euclidean_with(tier, &a, &b).to_bits(),
            want.to_bits(),
            "tier {}",
            tier.name()
        );
    }
}

/// The batched boundary enforces exact strides — no silent truncation
/// (ISSUE 3 satellite fix).
#[test]
#[should_panic(expected = "row-major block")]
fn batched_boundary_rejects_short_block() {
    let mut out = vec![0.0; 3];
    // 3 rows of width 4 need 12 values; pass 11.
    sq_euclidean_one_to_many(&[0.0; 4], &[1.0; 11], &mut out);
}

/// Oversized blocks are rejected too (the old pairwise kernel silently
/// truncated to the shorter side; the batched API must not).
#[test]
#[should_panic(expected = "row-major block")]
fn batched_boundary_rejects_long_block() {
    let mut out = vec![0.0; 2];
    sq_euclidean_one_to_many(&[0.0; 4], &[1.0; 9], &mut out);
}

// ---------------------------------------------------------------------------
// Contract v2 additions: Manhattan parity, blocked many-to-many, Metric
// dispatch, and shape panics (PR 10).
// ---------------------------------------------------------------------------

use gb_dataset::distance::{
    manhattan, manhattan_dist_block_with, manhattan_one_to_many_with, manhattan_scalar,
    manhattan_with, sq_dist_block, sq_dist_block_with, Metric,
};

/// Row-major (queries, block, p) triples with p spanning the sub-lane,
/// one-vector, and multi-vector width classes.
fn block_inputs() -> impl Strategy<Value = (Vec<f64>, Vec<f64>, usize)> {
    (1usize..12, 0usize..5, 0usize..9).prop_flat_map(|(p, nq, nr)| {
        (
            proptest::collection::vec(coord(), p * nq),
            proptest::collection::vec(coord(), p * nr),
            Just(p),
        )
    })
}

proptest! {
    /// The L1 kernel obeys the same tier contract as the squared-Euclidean
    /// one: every host tier is bit-identical to the scalar 4-lane tree, and
    /// the dispatched width-keying falls back to sequential order below
    /// `LANE_WIDTH`.
    #[test]
    fn manhattan_tiers_bit_identical((a, b) in vec_pair()) {
        let want = manhattan_scalar(&a, &b);
        for tier in Kernel::available() {
            let got = manhattan_with(tier, &a, &b);
            prop_assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "tier {} diverged: {} vs {}",
                tier.name(),
                got,
                want
            );
        }
        if a.len() <= 2 {
            // At n <= 2 the sequential and lane orders coincide.
            prop_assert_eq!(manhattan(&a, &b).to_bits(), want.to_bits());
        }
    }

    /// The L1 lane tree agrees with the sequential oracle within the same
    /// scaled-ULP reassociation bound as the squared kernel (all summands
    /// non-negative).
    #[test]
    fn manhattan_lane_tree_close_to_naive((a, b) in vec_pair()) {
        let naive = manhattan(&a, &b);
        let lanes = manhattan_scalar(&a, &b);
        let n = a.len() as f64;
        let tol = f64::EPSILON * naive * (n + 4.0) + f64::MIN_POSITIVE;
        prop_assert!(
            (lanes - naive).abs() <= tol,
            "lanes {} vs naive {} (n = {})",
            lanes,
            naive,
            a.len()
        );
        prop_assert!(lanes >= 0.0);
    }

    /// The blocked many-to-many kernel is bit-identical to repeated
    /// one-to-many calls on every tier — the register tile must be a pure
    /// scheduling change, never a numeric one. This is the invariant that
    /// lets `predict_batch` / Lloyd steps switch to [`sq_dist_block`]
    /// without re-baselining any stored model.
    #[test]
    fn blocked_matches_repeated_one_to_many((queries, block, p) in block_inputs()) {
        let nq = queries.len() / p;
        let nr = block.len() / p;
        let mut blocked = vec![f64::NAN; nq * nr];
        let mut repeated = vec![f64::NAN; nr];
        for tier in Kernel::available() {
            sq_dist_block_with(tier, &queries, &block, p, &mut blocked);
            for (qi, q) in queries.chunks_exact(p).enumerate() {
                sq_euclidean_one_to_many_with(tier, q, &block, &mut repeated);
                for (r, &want) in repeated.iter().enumerate() {
                    prop_assert_eq!(
                        blocked[qi * nr + r].to_bits(),
                        want.to_bits(),
                        "tier {} query {} row {}",
                        tier.name(),
                        qi,
                        r
                    );
                }
            }
        }
        // L1 blocked path: same invariant.
        for tier in Kernel::available() {
            manhattan_dist_block_with(tier, &queries, &block, p, &mut blocked);
            for (qi, q) in queries.chunks_exact(p).enumerate() {
                manhattan_one_to_many_with(tier, q, &block, &mut repeated);
                for (r, &want) in repeated.iter().enumerate() {
                    prop_assert_eq!(
                        blocked[qi * nr + r].to_bits(),
                        want.to_bits(),
                        "L1 tier {} query {} row {}",
                        tier.name(),
                        qi,
                        r
                    );
                }
            }
        }
    }

    /// [`Metric`] dispatch is a pure router: for every metric, the batched
    /// and blocked entry points agree bit-for-bit with the metric's
    /// dispatched per-pair kernel on prepared inputs.
    #[test]
    fn metric_dispatch_matches_per_pair((queries, block, p) in block_inputs()) {
        let nq = queries.len() / p;
        let nr = block.len() / p;
        for metric in Metric::ALL {
            let mut qs = queries.clone();
            let mut rows = block.clone();
            metric.prepare_rows(&mut qs, p);
            metric.prepare_rows(&mut rows, p);
            let mut blocked = vec![f64::NAN; nq * nr];
            metric.dist_block(&qs, &rows, p, &mut blocked);
            let mut o2m = vec![f64::NAN; nr];
            for (qi, q) in qs.chunks_exact(p).enumerate() {
                metric.one_to_many(q, &rows, &mut o2m);
                for (r, row) in rows.chunks_exact(p).enumerate() {
                    let want = metric.pair(q, row);
                    prop_assert_eq!(
                        o2m[r].to_bits(),
                        want.to_bits(),
                        "{} one_to_many row {}",
                        metric.name(),
                        r
                    );
                    prop_assert_eq!(
                        blocked[qi * nr + r].to_bits(),
                        want.to_bits(),
                        "{} blocked q{} r{}",
                        metric.name(),
                        qi,
                        r
                    );
                }
            }
        }
    }

    /// Cosine preparation yields unit-ish rows, and `prepare_query` on an
    /// already-normalized row is a bitwise no-op for the other metrics.
    #[test]
    fn cosine_prepare_normalizes(row in proptest::collection::vec(-1e3f64..1e3, 1..20)) {
        let prepared = Metric::Cosine.prepare_query(&row);
        let norm: f64 = prepared.iter().map(|x| x * x).sum();
        // Zero rows stay zero; everything else lands on the unit sphere.
        prop_assert!(norm == 0.0 || (norm - 1.0).abs() < 1e-9, "norm {}", norm);
        for metric in [Metric::SqEuclidean, Metric::Manhattan] {
            prop_assert!(matches!(
                metric.prepare_query(&row),
                std::borrow::Cow::Borrowed(_)
            ));
        }
    }
}

/// Hosts with AVX2 + FMA must expose the `fma` tier (and resolve it as
/// distinct from `avx2` in name only — results are bit-identical, which
/// `all_tiers_bit_identical` already drives).
#[cfg(target_arch = "x86_64")]
#[test]
fn fma_tier_listed_when_supported() {
    if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma") {
        assert!(
            Kernel::available().contains(&Kernel::Fma),
            "avx2+fma host must list the fma tier: {:?}",
            Kernel::available()
        );
    }
}

/// The blocked kernel's shape contract: misaligned query strides panic.
#[test]
#[should_panic(expected = "queries must be row-major")]
fn blocked_rejects_misaligned_queries() {
    let mut out = vec![0.0; 2];
    sq_dist_block(&[0.0; 7], &[1.0; 8], 4, &mut out);
}

/// Misaligned block strides panic.
#[test]
#[should_panic(expected = "block must be row-major")]
fn blocked_rejects_misaligned_block() {
    let mut out = vec![0.0; 2];
    sq_dist_block(&[0.0; 4], &[1.0; 9], 4, &mut out);
}

/// Wrong output size panics (never a silent partial write).
#[test]
#[should_panic(expected = "out must be")]
fn blocked_rejects_wrong_out_len() {
    let mut out = vec![0.0; 3];
    sq_dist_block(&[0.0; 8], &[1.0; 8], 4, &mut out);
}

/// `p == 0` is a hard error, not an empty result.
#[test]
#[should_panic(expected = "p > 0")]
fn blocked_rejects_zero_width() {
    let mut out = vec![0.0; 0];
    sq_dist_block(&[], &[], 0, &mut out);
}
