//! Kernel-parity property tests (ISSUE 3 satellite).
//!
//! The workspace's cross-backend bit-identity guarantees rest on two facts:
//!
//! 1. every distance-kernel tier (AVX2, SSE2, scalar fallback) computes the
//!    **same** 4-lane accumulation tree, so tier results are bit-identical
//!    on every host and under `GB_SIMD=scalar`;
//! 2. the contract is **width-keyed**: rows narrower than `LANE_WIDTH` are
//!    summed in sequential order by every path ([`sq_euclidean`],
//!    [`sq_euclidean_dispatched`], and the batched kernel all agree), and
//!    rows at or above it use the lane tree everywhere — so for any fixed
//!    row width, every scan path produces the same bits.
//!
//! These tests drive both claims through odd lengths, remainder tails,
//! subnormals, and ±0.0, and bound the lane tree's divergence from the
//! sequential oracle by a scaled-ULP tolerance.

use gb_dataset::distance::{
    sq_euclidean, sq_euclidean_dispatched, sq_euclidean_naive, sq_euclidean_one_to_many,
    sq_euclidean_one_to_many_with, sq_euclidean_scalar, sq_euclidean_with, Kernel, LANE_WIDTH,
};
use proptest::prelude::*;

/// Interesting coordinates: normals across magnitudes, subnormals, and
/// signed zeros (NaN/inf excluded — `Dataset` constructors reject them).
fn coord() -> impl Strategy<Value = f64> {
    prop_oneof![
        8 => -1e3f64..1e3f64,
        2 => prop_oneof![
            Just(0.0f64),
            Just(-0.0f64),
            Just(f64::MIN_POSITIVE),
            Just(-f64::MIN_POSITIVE),
            Just(f64::MIN_POSITIVE / 8.0),   // subnormal
            Just(-f64::MIN_POSITIVE / 16.0), // subnormal
            Just(1e-200f64),
            Just(1e200f64),
        ],
    ]
}

/// Equal-length vector pairs covering every `len % 4` tail class.
fn vec_pair() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (0usize..70).prop_flat_map(|n| {
        (
            proptest::collection::vec(coord(), n),
            proptest::collection::vec(coord(), n),
        )
    })
}

proptest! {
    /// Every host-available tier agrees with the scalar fallback
    /// bit-for-bit — the SIMD paths can never drift from the path CI
    /// forces with `GB_SIMD=scalar`.
    #[test]
    fn all_tiers_bit_identical((a, b) in vec_pair()) {
        let want = sq_euclidean_scalar(&a, &b);
        for tier in Kernel::available() {
            let got = sq_euclidean_with(tier, &a, &b);
            prop_assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "tier {} diverged: {} vs {}",
                tier.name(),
                got,
                want
            );
        }
        // Width-keyed contract: the inline per-pair kernel is sequential
        // order; the dispatched per-pair kernel equals it below LANE_WIDTH
        // and the (tier-identical) lane tree at or above it. At n <= 2 the
        // two orders coincide, so everything agrees there.
        let seq = sq_euclidean_naive(&a, &b);
        prop_assert_eq!(sq_euclidean(&a, &b).to_bits(), seq.to_bits());
        let dispatched = sq_euclidean_dispatched(&a, &b);
        if a.len() < LANE_WIDTH {
            prop_assert_eq!(dispatched.to_bits(), seq.to_bits());
        } else {
            prop_assert_eq!(dispatched.to_bits(), want.to_bits());
        }
        if a.len() <= 2 {
            prop_assert_eq!(seq.to_bits(), want.to_bits());
        }
    }

    /// The lane-ordered kernels agree with the naive sequential oracle
    /// within a scaled-ULP reassociation bound (all summands are
    /// non-negative, so the error of either summation order is at most
    /// ~n·ε relative to the exact sum).
    #[test]
    fn lane_tree_close_to_naive((a, b) in vec_pair()) {
        let naive = sq_euclidean_naive(&a, &b);
        let lanes = sq_euclidean_scalar(&a, &b);
        if naive.is_infinite() || lanes.is_infinite() {
            // A squared term overflowed; every summation order sees it.
            prop_assert_eq!(lanes, naive);
            return;
        }
        let n = a.len() as f64;
        let tol = f64::EPSILON * naive * (n + 4.0) + f64::MIN_POSITIVE;
        prop_assert!(
            (lanes - naive).abs() <= tol,
            "lanes {} vs naive {} (n = {})",
            lanes,
            naive,
            a.len()
        );
        prop_assert!(lanes >= 0.0, "squared distance must be non-negative");
    }

    /// The batched one-to-many kernel matches per-pair calls bit-for-bit
    /// on every tier, for arbitrary row counts and widths (amortized
    /// dispatch must not change results).
    #[test]
    fn one_to_many_matches_per_pair(
        p in 0usize..20,
        rows in 0usize..12,
        seed_a in proptest::collection::vec(coord(), 0..20),
        seed_b in proptest::collection::vec(coord(), 0..240),
    ) {
        let query: Vec<f64> = (0..p).map(|i| *seed_a.get(i).unwrap_or(&1.5)).collect();
        let block: Vec<f64> = (0..p * rows)
            .map(|i| *seed_b.get(i % seed_b.len().max(1)).unwrap_or(&-0.5))
            .collect();
        let mut out = vec![f64::NAN; rows];
        for tier in Kernel::available() {
            sq_euclidean_one_to_many_with(tier, &query, &block, &mut out);
            for (r, &d) in out.iter().enumerate() {
                let row = &block[r * p..(r + 1) * p];
                // Width-keyed: sub-lane batched rows are sequential order
                // (all tiers identically), wider rows are the tier's lane
                // tree.
                let want = if p < LANE_WIDTH {
                    sq_euclidean_naive(&query, row)
                } else {
                    sq_euclidean_with(tier, &query, row)
                };
                prop_assert_eq!(
                    d.to_bits(),
                    want.to_bits(),
                    "tier {} row {}",
                    tier.name(),
                    r
                );
            }
        }
        // The dispatched batched entry agrees with the dispatched per-pair
        // kernel for every width — the invariant the hybrid scans rely on.
        sq_euclidean_one_to_many(&query, &block, &mut out);
        for (r, &d) in out.iter().enumerate() {
            let want = sq_euclidean_dispatched(&query, &block[r * p..(r + 1) * p]);
            prop_assert_eq!(d.to_bits(), want.to_bits());
        }
    }
}

/// Directed tail cases: every `len % 4` class with values whose squares
/// differ across summation orders (catches a tier that folds its remainder
/// into the wrong lane).
#[test]
fn remainder_tails_bit_identical() {
    for n in [1usize, 2, 3, 4, 5, 6, 7, 8, 9, 11, 13, 63, 64, 65] {
        let a: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64) * 1e-3).collect();
        let b: Vec<f64> = (0..n).map(|i| 3.0_f64.powi(i as i32 % 11 - 5)).collect();
        let want = sq_euclidean_scalar(&a, &b);
        for tier in Kernel::available() {
            assert_eq!(
                sq_euclidean_with(tier, &a, &b).to_bits(),
                want.to_bits(),
                "tier {} at n={n}",
                tier.name()
            );
        }
    }
}

/// Signed zeros and subnormal differences survive every tier unchanged.
#[test]
fn signed_zero_and_subnormal_tails() {
    let a = [0.0, -0.0, f64::MIN_POSITIVE, -f64::MIN_POSITIVE / 4.0, 0.0];
    let b = [-0.0, 0.0, f64::MIN_POSITIVE / 2.0, 0.0, 1e-300];
    let want = sq_euclidean_scalar(&a, &b);
    for tier in Kernel::available() {
        assert_eq!(
            sq_euclidean_with(tier, &a, &b).to_bits(),
            want.to_bits(),
            "tier {}",
            tier.name()
        );
    }
}

/// The batched boundary enforces exact strides — no silent truncation
/// (ISSUE 3 satellite fix).
#[test]
#[should_panic(expected = "row-major block")]
fn batched_boundary_rejects_short_block() {
    let mut out = vec![0.0; 3];
    // 3 rows of width 4 need 12 values; pass 11.
    sq_euclidean_one_to_many(&[0.0; 4], &[1.0; 11], &mut out);
}

/// Oversized blocks are rejected too (the old pairwise kernel silently
/// truncated to the shorter side; the batched API must not).
#[test]
#[should_panic(expected = "row-major block")]
fn batched_boundary_rejects_long_block() {
    let mut out = vec![0.0; 2];
    sq_euclidean_one_to_many(&[0.0; 4], &[1.0; 9], &mut out);
}
