//! One-hot encoding for categorical columns.
//!
//! The distance- and margin-based learners in this workspace (kNN, SMOTE
//! interpolation, the linear SVM) treat every column as numeric; categorical
//! codes like Car Evaluation's (S3) would otherwise impose a fake ordering.
//! `OneHotEncoder` expands each categorical column into one indicator
//! column per category *seen during fit*, leaving numeric columns in place
//! (categories first appearing at transform time map to all-zeros, the
//! sklearn `handle_unknown="ignore"` behaviour).

use crate::dataset::{Dataset, FeatureKind};

/// A fitted one-hot encoder.
#[derive(Debug, Clone)]
pub struct OneHotEncoder {
    /// For each input column: `None` for numeric pass-through, or the
    /// sorted list of category codes seen during fit.
    categories: Vec<Option<Vec<i64>>>,
    /// Output width.
    out_width: usize,
}

impl OneHotEncoder {
    /// Learns the category vocabulary of every categorical column.
    ///
    /// # Panics
    /// Panics on an empty dataset.
    #[must_use]
    pub fn fit(data: &Dataset) -> Self {
        assert!(data.n_samples() > 0, "cannot fit an encoder on no data");
        let mut categories: Vec<Option<Vec<i64>>> = Vec::with_capacity(data.n_features());
        for (j, kind) in data.feature_kinds().iter().enumerate() {
            if *kind == FeatureKind::Categorical {
                let mut seen: Vec<i64> = (0..data.n_samples())
                    .map(|i| data.value(i, j) as i64)
                    .collect();
                seen.sort_unstable();
                seen.dedup();
                categories.push(Some(seen));
            } else {
                categories.push(None);
            }
        }
        let out_width = categories
            .iter()
            .map(|c| c.as_ref().map_or(1, Vec::len))
            .sum();
        Self {
            categories,
            out_width,
        }
    }

    /// Number of output columns after encoding.
    #[must_use]
    pub fn out_width(&self) -> usize {
        self.out_width
    }

    /// Expands `data` into the encoded representation (all columns
    /// numeric).
    ///
    /// # Panics
    /// Panics if `data` has a different feature count than the fitted one.
    #[must_use]
    pub fn transform(&self, data: &Dataset) -> Dataset {
        assert_eq!(
            data.n_features(),
            self.categories.len(),
            "encoder fitted on different width"
        );
        let mut out = Vec::with_capacity(data.n_samples() * self.out_width);
        for i in 0..data.n_samples() {
            for (j, cats) in self.categories.iter().enumerate() {
                match cats {
                    None => out.push(data.value(i, j)),
                    Some(cats) => {
                        let code = data.value(i, j) as i64;
                        for &c in cats {
                            out.push(f64::from(u8::from(c == code)));
                        }
                    }
                }
            }
        }
        Dataset::from_parts(
            out,
            data.labels().to_vec(),
            self.out_width,
            data.n_classes(),
        )
        .with_name(data.name().to_string())
    }

    /// Convenience: fit on `train`, transform both folds.
    #[must_use]
    pub fn fit_transform_pair(train: &Dataset, test: &Dataset) -> (Dataset, Dataset) {
        let enc = Self::fit(train);
        (enc.transform(train), enc.transform(test))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed() -> Dataset {
        // col 0 numeric, col 1 categorical with codes {0, 2, 5}
        Dataset::from_parts(
            vec![1.0, 0.0, 2.0, 2.0, 3.0, 5.0, 4.0, 2.0],
            vec![0, 1, 0, 1],
            2,
            2,
        )
        .with_kinds(vec![FeatureKind::Numeric, FeatureKind::Categorical])
    }

    #[test]
    fn expands_categorical_columns_only() {
        let d = mixed();
        let enc = OneHotEncoder::fit(&d);
        assert_eq!(enc.out_width(), 1 + 3);
        let t = enc.transform(&d);
        assert_eq!(t.n_features(), 4);
        // row 0: numeric 1.0, code 0 -> [1, 0, 0]
        assert_eq!(t.row(0), &[1.0, 1.0, 0.0, 0.0]);
        // row 1: numeric 2.0, code 2 -> [0, 1, 0]
        assert_eq!(t.row(1), &[2.0, 0.0, 1.0, 0.0]);
        // row 2: code 5 -> [0, 0, 1]
        assert_eq!(t.row(2), &[3.0, 0.0, 0.0, 1.0]);
        assert_eq!(t.labels(), d.labels());
        // encoded columns are all numeric
        assert!(t.feature_kinds().iter().all(|k| *k == FeatureKind::Numeric));
    }

    #[test]
    fn exactly_one_indicator_fires_per_known_row() {
        let d = mixed();
        let t = OneHotEncoder::fit(&d).transform(&d);
        for i in 0..t.n_samples() {
            let ones: f64 = t.row(i)[1..].iter().sum();
            assert_eq!(ones, 1.0, "row {i}");
        }
    }

    #[test]
    fn unknown_category_maps_to_all_zeros() {
        let train = mixed();
        let enc = OneHotEncoder::fit(&train);
        let test = Dataset::from_parts(vec![9.0, 7.0], vec![0], 2, 2)
            .with_kinds(vec![FeatureKind::Numeric, FeatureKind::Categorical]);
        let t = enc.transform(&test);
        assert_eq!(t.row(0), &[9.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn all_numeric_dataset_is_identity() {
        let d = Dataset::from_parts(vec![1.0, 2.0, 3.0, 4.0], vec![0, 1], 2, 2);
        let enc = OneHotEncoder::fit(&d);
        assert_eq!(enc.out_width(), 2);
        let t = enc.transform(&d);
        assert_eq!(t.features(), d.features());
    }

    #[test]
    fn pair_helper_uses_train_vocabulary() {
        let train = mixed();
        let test = Dataset::from_parts(vec![0.0, 5.0], vec![1], 2, 2)
            .with_kinds(vec![FeatureKind::Numeric, FeatureKind::Categorical]);
        let (tr, te) = OneHotEncoder::fit_transform_pair(&train, &test);
        assert_eq!(tr.n_features(), te.n_features());
        assert_eq!(te.row(0), &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "cannot fit an encoder on no data")]
    fn empty_rejected() {
        let d = Dataset::from_parts(Vec::new(), Vec::new(), 1, 1);
        let _ = OneHotEncoder::fit(&d);
    }

    #[test]
    #[should_panic(expected = "encoder fitted on different width")]
    fn width_mismatch_rejected() {
        let enc = OneHotEncoder::fit(&mixed());
        let narrow = Dataset::from_parts(vec![1.0], vec![0], 1, 1);
        let _ = enc.transform(&narrow);
    }
}
