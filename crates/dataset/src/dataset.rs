//! Dense, row-major labelled dataset used throughout the workspace.
//!
//! The paper operates on datasets `D = {(x_1, y_1), …, (x_N, y_N)}` with
//! `x_i ∈ R^p` and class labels from a finite set. We store features as a
//! single contiguous `Vec<f64>` (row major) so that distance kernels stream
//! linearly through memory, and labels as dense `u32` class ids in
//! `0..n_classes`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Kind of a feature column.
///
/// Most of the paper's datasets are numeric; `Categorical` columns carry
/// integer category codes stored as `f64` and are treated specially by
/// SMOTENC and by the synthetic catalog (e.g. Car Evaluation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatureKind {
    /// Continuous real-valued feature.
    Numeric,
    /// Discrete categorical feature; values are non-negative integer codes.
    Categorical,
}

/// A dense labelled dataset.
///
/// Invariants (checked by constructors and `debug_assert`s):
/// * `features.len() == n_samples * n_features`
/// * `labels.len() == n_samples`
/// * every label is `< n_classes`
/// * `feature_kinds.len() == n_features`
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    features: Vec<f64>,
    labels: Vec<u32>,
    n_samples: usize,
    n_features: usize,
    n_classes: usize,
    feature_kinds: Vec<FeatureKind>,
    /// Human-readable name (e.g. the paper's `S5`/`banana`). Cosmetic only.
    name: String,
}

/// Errors produced when assembling a [`Dataset`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// `features.len()` is not a multiple of the row width.
    RaggedFeatures {
        /// Total number of feature values provided.
        len: usize,
        /// Declared row width.
        n_features: usize,
    },
    /// Number of rows does not match the number of labels.
    LabelMismatch {
        /// Number of feature rows.
        rows: usize,
        /// Number of labels.
        labels: usize,
    },
    /// A label is outside `0..n_classes`.
    LabelOutOfRange {
        /// Offending label value.
        label: u32,
        /// Declared number of classes.
        n_classes: usize,
    },
    /// `feature_kinds` length differs from `n_features`.
    KindMismatch {
        /// Length of the provided kinds vector.
        kinds: usize,
        /// Declared number of features.
        n_features: usize,
    },
    /// A feature value is NaN (distances would be poisoned).
    NonFinite {
        /// Row of the offending value.
        row: usize,
        /// Column of the offending value.
        col: usize,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::RaggedFeatures { len, n_features } => write!(
                f,
                "feature buffer of length {len} is not a multiple of row width {n_features}"
            ),
            DatasetError::LabelMismatch { rows, labels } => {
                write!(f, "{rows} feature rows but {labels} labels")
            }
            DatasetError::LabelOutOfRange { label, n_classes } => {
                write!(f, "label {label} out of range for {n_classes} classes")
            }
            DatasetError::KindMismatch { kinds, n_features } => {
                write!(f, "{kinds} feature kinds for {n_features} features")
            }
            DatasetError::NonFinite { row, col } => {
                write!(f, "non-finite feature value at row {row}, column {col}")
            }
        }
    }
}

impl std::error::Error for DatasetError {}

impl Dataset {
    /// Builds a dataset from a row-major feature buffer and dense labels.
    ///
    /// All feature columns are assumed [`FeatureKind::Numeric`]; use
    /// [`Dataset::with_kinds`] afterwards for mixed-type data.
    ///
    /// # Errors
    /// Returns a [`DatasetError`] if buffer sizes disagree, a label is out of
    /// range, or any feature value is NaN/infinite.
    pub fn new(
        features: Vec<f64>,
        labels: Vec<u32>,
        n_features: usize,
        n_classes: usize,
    ) -> Result<Self, DatasetError> {
        if n_features == 0 || !features.len().is_multiple_of(n_features) {
            return Err(DatasetError::RaggedFeatures {
                len: features.len(),
                n_features,
            });
        }
        let n_samples = features.len() / n_features;
        if labels.len() != n_samples {
            return Err(DatasetError::LabelMismatch {
                rows: n_samples,
                labels: labels.len(),
            });
        }
        if let Some(&bad) = labels.iter().find(|&&l| (l as usize) >= n_classes) {
            return Err(DatasetError::LabelOutOfRange {
                label: bad,
                n_classes,
            });
        }
        if let Some(pos) = features.iter().position(|v| !v.is_finite()) {
            return Err(DatasetError::NonFinite {
                row: pos / n_features,
                col: pos % n_features,
            });
        }
        Ok(Self {
            features,
            labels,
            n_samples,
            n_features,
            n_classes,
            feature_kinds: vec![FeatureKind::Numeric; n_features],
            name: String::new(),
        })
    }

    /// Like [`Dataset::new`] but panics on malformed input. Intended for
    /// tests and generators whose output is correct by construction.
    #[must_use]
    pub fn from_parts(
        features: Vec<f64>,
        labels: Vec<u32>,
        n_features: usize,
        n_classes: usize,
    ) -> Self {
        Self::new(features, labels, n_features, n_classes).expect("well-formed dataset")
    }

    /// Sets the human-readable dataset name (builder style).
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Overrides the per-column feature kinds (builder style).
    ///
    /// # Panics
    /// Panics if `kinds.len() != n_features()`.
    #[must_use]
    pub fn with_kinds(mut self, kinds: Vec<FeatureKind>) -> Self {
        assert_eq!(
            kinds.len(),
            self.n_features,
            "feature kind vector must match feature count"
        );
        self.feature_kinds = kinds;
        self
    }

    /// Number of samples `N`.
    #[must_use]
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// Number of features `p`.
    #[must_use]
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of classes `q`. Labels are `0..q`.
    #[must_use]
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Dataset name (may be empty).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Per-column feature kinds.
    #[must_use]
    pub fn feature_kinds(&self) -> &[FeatureKind] {
        &self.feature_kinds
    }

    /// Indices of categorical columns.
    #[must_use]
    pub fn categorical_columns(&self) -> Vec<usize> {
        self.feature_kinds
            .iter()
            .enumerate()
            .filter_map(|(i, k)| (*k == FeatureKind::Categorical).then_some(i))
            .collect()
    }

    /// Feature row `i`.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.features[i * self.n_features..(i + 1) * self.n_features]
    }

    /// Label of sample `i`.
    #[must_use]
    pub fn label(&self, i: usize) -> u32 {
        self.labels[i]
    }

    /// All labels.
    #[must_use]
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Raw row-major feature buffer.
    #[must_use]
    pub fn features(&self) -> &[f64] {
        &self.features
    }

    /// Single feature value.
    #[must_use]
    pub fn value(&self, row: usize, col: usize) -> f64 {
        self.features[row * self.n_features + col]
    }

    /// Iterator over `(row, label)` pairs.
    pub fn iter_rows(&self) -> impl Iterator<Item = (&[f64], u32)> + '_ {
        self.features
            .chunks_exact(self.n_features)
            .zip(self.labels.iter().copied())
    }

    /// Number of samples per class (length `n_classes`).
    #[must_use]
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for &l in &self.labels {
            counts[l as usize] += 1;
        }
        counts
    }

    /// Indices of samples grouped per class (length `n_classes`).
    #[must_use]
    pub fn class_indices(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.n_classes];
        for (i, &l) in self.labels.iter().enumerate() {
            groups[l as usize].push(i);
        }
        groups
    }

    /// Imbalance ratio: majority count / minority count over non-empty
    /// classes, as reported in the paper's Table I. Returns 1.0 for empty or
    /// single-class data.
    #[must_use]
    pub fn imbalance_ratio(&self) -> f64 {
        let counts = self.class_counts();
        let present: Vec<usize> = counts.into_iter().filter(|&c| c > 0).collect();
        let (Some(&max), Some(&min)) = (present.iter().max(), present.iter().min()) else {
            return 1.0;
        };
        if min == 0 {
            return f64::INFINITY;
        }
        max as f64 / min as f64
    }

    /// New dataset consisting of the given rows (in order; duplicates allowed).
    ///
    /// # Panics
    /// Panics if an index is out of bounds.
    #[must_use]
    pub fn select(&self, indices: &[usize]) -> Dataset {
        let mut features = Vec::with_capacity(indices.len() * self.n_features);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            features.extend_from_slice(self.row(i));
            labels.push(self.labels[i]);
        }
        Dataset {
            features,
            labels,
            n_samples: indices.len(),
            n_features: self.n_features,
            n_classes: self.n_classes,
            feature_kinds: self.feature_kinds.clone(),
            name: self.name.clone(),
        }
    }

    /// Appends a single labelled row.
    ///
    /// # Panics
    /// Panics if the row width or label is inconsistent.
    pub fn push_row(&mut self, row: &[f64], label: u32) {
        assert_eq!(row.len(), self.n_features, "row width mismatch");
        assert!(
            (label as usize) < self.n_classes,
            "label {label} out of range"
        );
        self.features.extend_from_slice(row);
        self.labels.push(label);
        self.n_samples += 1;
    }

    /// Concatenates another dataset with identical schema onto this one.
    ///
    /// # Panics
    /// Panics on schema mismatch (feature count, class count or kinds).
    pub fn extend_from(&mut self, other: &Dataset) {
        assert_eq!(self.n_features, other.n_features, "feature count mismatch");
        assert_eq!(self.n_classes, other.n_classes, "class count mismatch");
        assert_eq!(self.feature_kinds, other.feature_kinds, "kind mismatch");
        self.features.extend_from_slice(&other.features);
        self.labels.extend_from_slice(&other.labels);
        self.n_samples += other.n_samples;
    }

    /// An empty dataset sharing this one's schema; useful as an accumulator.
    #[must_use]
    pub fn empty_like(&self) -> Dataset {
        Dataset {
            features: Vec::new(),
            labels: Vec::new(),
            n_samples: 0,
            n_features: self.n_features,
            n_classes: self.n_classes,
            feature_kinds: self.feature_kinds.clone(),
            name: self.name.clone(),
        }
    }

    /// Column-wise minimum and maximum (`(min, max)` vectors).
    /// Returns zeros for an empty dataset.
    #[must_use]
    pub fn column_bounds(&self) -> (Vec<f64>, Vec<f64>) {
        let p = self.n_features;
        if self.n_samples == 0 {
            return (vec![0.0; p], vec![0.0; p]);
        }
        let mut lo = vec![f64::INFINITY; p];
        let mut hi = vec![f64::NEG_INFINITY; p];
        for row in self.features.chunks_exact(p) {
            for (j, &v) in row.iter().enumerate() {
                lo[j] = lo[j].min(v);
                hi[j] = hi[j].max(v);
            }
        }
        (lo, hi)
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} samples x {} features, {} classes, IR {:.2}]",
            if self.name.is_empty() {
                "<dataset>"
            } else {
                &self.name
            },
            self.n_samples,
            self.n_features,
            self.n_classes,
            self.imbalance_ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::from_parts(
            vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 5.0, 5.0],
            vec![0, 0, 0, 1],
            2,
            2,
        )
    }

    #[test]
    fn new_validates_shapes() {
        assert!(matches!(
            Dataset::new(vec![1.0, 2.0, 3.0], vec![0], 2, 1),
            Err(DatasetError::RaggedFeatures { .. })
        ));
        assert!(matches!(
            Dataset::new(vec![1.0, 2.0], vec![0, 1], 2, 2),
            Err(DatasetError::LabelMismatch { .. })
        ));
        assert!(matches!(
            Dataset::new(vec![1.0, 2.0], vec![3], 2, 2),
            Err(DatasetError::LabelOutOfRange { .. })
        ));
        assert!(matches!(
            Dataset::new(vec![f64::NAN, 2.0], vec![0], 2, 1),
            Err(DatasetError::NonFinite { .. })
        ));
    }

    #[test]
    fn zero_features_rejected() {
        assert!(matches!(
            Dataset::new(vec![], vec![], 0, 1),
            Err(DatasetError::RaggedFeatures { .. })
        ));
    }

    #[test]
    fn accessors() {
        let d = toy();
        assert_eq!(d.n_samples(), 4);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.n_classes(), 2);
        assert_eq!(d.row(3), &[5.0, 5.0]);
        assert_eq!(d.label(3), 1);
        assert_eq!(d.value(1, 0), 1.0);
        assert_eq!(d.class_counts(), vec![3, 1]);
        assert!((d.imbalance_ratio() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn class_indices_partition_rows() {
        let d = toy();
        let groups = d.class_indices();
        assert_eq!(groups[0], vec![0, 1, 2]);
        assert_eq!(groups[1], vec![3]);
    }

    #[test]
    fn select_preserves_order_and_allows_duplicates() {
        let d = toy();
        let s = d.select(&[3, 0, 3]);
        assert_eq!(s.n_samples(), 3);
        assert_eq!(s.row(0), &[5.0, 5.0]);
        assert_eq!(s.row(1), &[0.0, 0.0]);
        assert_eq!(s.label(2), 1);
    }

    #[test]
    fn push_and_extend() {
        let mut d = toy();
        d.push_row(&[9.0, 9.0], 1);
        assert_eq!(d.n_samples(), 5);
        let other = toy();
        d.extend_from(&other);
        assert_eq!(d.n_samples(), 9);
        assert_eq!(d.row(8), &[5.0, 5.0]);
    }

    #[test]
    fn bounds() {
        let d = toy();
        let (lo, hi) = d.column_bounds();
        assert_eq!(lo, vec![0.0, 0.0]);
        assert_eq!(hi, vec![5.0, 5.0]);
    }

    #[test]
    fn kinds_and_categorical_columns() {
        let d = toy().with_kinds(vec![FeatureKind::Numeric, FeatureKind::Categorical]);
        assert_eq!(d.categorical_columns(), vec![1]);
    }

    #[test]
    fn display_mentions_name() {
        let d = toy().with_name("banana");
        let s = format!("{d}");
        assert!(s.contains("banana"));
        assert!(s.contains("4 samples"));
    }

    #[test]
    fn empty_like_shares_schema() {
        let d = toy().with_name("t");
        let e = d.empty_like();
        assert_eq!(e.n_samples(), 0);
        assert_eq!(e.n_features(), 2);
        assert_eq!(e.n_classes(), 2);
        assert_eq!(e.name(), "t");
    }

    #[test]
    fn imbalance_ratio_degenerate() {
        let d = Dataset::from_parts(vec![0.0], vec![0], 1, 1);
        assert!((d.imbalance_ratio() - 1.0).abs() < 1e-12);
    }
}
