//! Seeded RNG plumbing.
//!
//! Every stochastic component in the workspace (generators, samplers,
//! classifiers, CV splits) takes an explicit `u64` seed so experiments are
//! reproducible run-to-run, mirroring the paper's "random seeds are set in
//! all used classifiers for a fair comparison".

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates the workspace-standard RNG from a seed.
#[must_use]
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives an independent child seed from a parent seed and a stream id.
///
/// Uses SplitMix64 finalization so nearby `(seed, stream)` pairs decorrelate;
/// this lets the experiment harness hand disjoint streams to each fold /
/// repeat / method without threading RNG state across threads.
#[must_use]
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = rng_from_seed(42);
        let mut b = rng_from_seed(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn derive_seed_is_deterministic_and_spreads() {
        assert_eq!(derive_seed(1, 2), derive_seed(1, 2));
        assert_ne!(derive_seed(1, 2), derive_seed(1, 3));
        assert_ne!(derive_seed(1, 2), derive_seed(2, 2));
        // Adjacent streams should differ in many bits, not just the low ones.
        let x = derive_seed(7, 0) ^ derive_seed(7, 1);
        assert!(x.count_ones() > 8, "poor diffusion: {x:b}");
    }
}
