//! Class-noise injection.
//!
//! The paper constructs "class noise datasets with noise ratios of 5 %, 10 %,
//! 20 %, 30 %, and 40 % ... by randomly selecting samples and altering their
//! labels". We flip each selected sample to a uniformly random *different*
//! class so the corruption is label-only and feature geometry is untouched.

use crate::dataset::Dataset;
use crate::rng::rng_from_seed;
use rand::seq::SliceRandom;
use rand::Rng;

/// The noise ratios evaluated by the paper (Figs. 6–9, Table IV).
pub const PAPER_NOISE_RATIOS: [f64; 5] = [0.05, 0.10, 0.20, 0.30, 0.40];

/// Returns a copy of `data` in which `ratio` of the samples (rounded) have
/// had their label flipped to a random different class. The set of flipped
/// rows is also returned so tests/diagnostics can measure recovery.
///
/// Single-class datasets are returned unchanged (there is nothing to flip
/// to).
///
/// # Panics
/// Panics if `ratio` is not in `[0, 1]`.
#[must_use]
pub fn inject_class_noise(data: &Dataset, ratio: f64, seed: u64) -> (Dataset, Vec<usize>) {
    assert!((0.0..=1.0).contains(&ratio), "noise ratio must be in [0,1]");
    if data.n_classes() < 2 || ratio == 0.0 {
        return (data.clone(), Vec::new());
    }
    let mut rng = rng_from_seed(seed);
    let n = data.n_samples();
    let n_flip = ((n as f64) * ratio).round() as usize;
    let mut rows: Vec<usize> = (0..n).collect();
    rows.shuffle(&mut rng);
    let mut flipped: Vec<usize> = rows.into_iter().take(n_flip).collect();
    flipped.sort_unstable();

    let mut labels = data.labels().to_vec();
    let q = data.n_classes() as u32;
    for &i in &flipped {
        let old = labels[i];
        // choose uniformly among the q-1 other classes
        let mut new = rng.gen_range(0..q - 1);
        if new >= old {
            new += 1;
        }
        labels[i] = new;
    }
    let noisy = Dataset::from_parts(
        data.features().to_vec(),
        labels,
        data.n_features(),
        data.n_classes(),
    )
    .with_name(format!("{}+noise{:.0}%", data.name(), ratio * 100.0))
    .with_kinds(data.feature_kinds().to_vec());
    (noisy, flipped)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(n: usize, q: usize) -> Dataset {
        let feats: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let labels: Vec<u32> = (0..n).map(|i| (i % q) as u32).collect();
        Dataset::from_parts(feats, labels, 1, q).with_name("base")
    }

    #[test]
    fn flips_requested_fraction() {
        let d = base(200, 4);
        let (noisy, flipped) = inject_class_noise(&d, 0.25, 3);
        assert_eq!(flipped.len(), 50);
        let changed = (0..200).filter(|&i| noisy.label(i) != d.label(i)).count();
        assert_eq!(changed, 50, "every flipped row must actually change class");
        for &i in &flipped {
            assert_ne!(noisy.label(i), d.label(i));
        }
    }

    #[test]
    fn features_untouched() {
        let d = base(50, 2);
        let (noisy, _) = inject_class_noise(&d, 0.4, 9);
        assert_eq!(noisy.features(), d.features());
    }

    #[test]
    fn zero_ratio_is_identity() {
        let d = base(30, 3);
        let (noisy, flipped) = inject_class_noise(&d, 0.0, 1);
        assert!(flipped.is_empty());
        assert_eq!(noisy.labels(), d.labels());
    }

    #[test]
    fn single_class_untouched() {
        let d = base(30, 1);
        let (noisy, flipped) = inject_class_noise(&d, 0.5, 1);
        assert!(flipped.is_empty());
        assert_eq!(noisy.labels(), d.labels());
    }

    #[test]
    fn deterministic() {
        let d = base(100, 3);
        let (a, fa) = inject_class_noise(&d, 0.2, 77);
        let (b, fb) = inject_class_noise(&d, 0.2, 77);
        assert_eq!(a.labels(), b.labels());
        assert_eq!(fa, fb);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn new_labels_roughly_uniform_over_other_classes() {
        let d = base(9000, 3);
        let (noisy, flipped) = inject_class_noise(&d, 1.0, 5);
        let mut transitions = [[0usize; 3]; 3];
        for &i in &flipped {
            transitions[d.label(i) as usize][noisy.label(i) as usize] += 1;
        }
        for from in 0..3 {
            for to in 0..3 {
                if from == to {
                    assert_eq!(transitions[from][to], 0);
                } else {
                    // each off-diagonal cell expects ~1500; allow wide slack
                    assert!(
                        transitions[from][to] > 1200 && transitions[from][to] < 1800,
                        "cell {from}->{to} = {}",
                        transitions[from][to]
                    );
                }
            }
        }
    }
}
