//! Feature scaling.
//!
//! Distance-based methods (granular balls, kNN, SMOTE) are sensitive to
//! feature ranges, so the experiment harness standardizes numeric columns
//! (fit on the training fold, applied to both folds — never leaking test
//! statistics). Categorical columns are passed through untouched.

use crate::dataset::{Dataset, FeatureKind};

/// A fitted per-column standardizer (z-score on numeric columns).
#[derive(Debug, Clone)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
    kinds: Vec<FeatureKind>,
}

impl StandardScaler {
    /// Fits column means and standard deviations on `data`.
    ///
    /// Columns with (near-)zero variance get `std = 1` so they map to zero
    /// rather than exploding.
    #[must_use]
    pub fn fit(data: &Dataset) -> Self {
        let p = data.n_features();
        let n = data.n_samples().max(1) as f64;
        let mut means = vec![0.0; p];
        for row in data.features().chunks_exact(p) {
            for (j, &v) in row.iter().enumerate() {
                means[j] += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; p];
        for row in data.features().chunks_exact(p) {
            for (j, &v) in row.iter().enumerate() {
                let d = v - means[j];
                vars[j] += d * d;
            }
        }
        let stds = vars
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s < 1e-12 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        Self {
            means,
            stds,
            kinds: data.feature_kinds().to_vec(),
        }
    }

    /// Applies the fitted transform, returning a new dataset.
    ///
    /// # Panics
    /// Panics if `data` has a different feature count than the fitted one.
    #[must_use]
    pub fn transform(&self, data: &Dataset) -> Dataset {
        let p = data.n_features();
        assert_eq!(p, self.means.len(), "scaler fitted on different width");
        let mut out = Vec::with_capacity(data.features().len());
        for row in data.features().chunks_exact(p) {
            for (j, &v) in row.iter().enumerate() {
                if self.kinds[j] == FeatureKind::Categorical {
                    out.push(v);
                } else {
                    out.push((v - self.means[j]) / self.stds[j]);
                }
            }
        }
        Dataset::from_parts(out, data.labels().to_vec(), p, data.n_classes())
            .with_name(data.name().to_string())
            .with_kinds(data.feature_kinds().to_vec())
    }

    /// Convenience: fit on `train`, transform both folds.
    #[must_use]
    pub fn fit_transform_pair(train: &Dataset, test: &Dataset) -> (Dataset, Dataset) {
        let scaler = Self::fit(train);
        (scaler.transform(train), scaler.transform(test))
    }

    /// Fitted column means.
    #[must_use]
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Fitted column standard deviations.
    #[must_use]
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }
}

/// A fitted per-column min–max scaler mapping numeric columns to `[0, 1]`
/// — the normalization the granular-ball reference implementations apply
/// before granulation (GB radii are only comparable across dimensions when
/// feature ranges are).
#[derive(Debug, Clone)]
pub struct MinMaxScaler {
    mins: Vec<f64>,
    ranges: Vec<f64>,
    kinds: Vec<FeatureKind>,
}

impl MinMaxScaler {
    /// Fits column minima and ranges on `data`. Constant columns get range
    /// 1 so they map to 0 instead of dividing by zero.
    #[must_use]
    pub fn fit(data: &Dataset) -> Self {
        let p = data.n_features();
        let (mins, maxs) = data.column_bounds();
        let ranges = mins
            .iter()
            .zip(maxs.iter())
            .map(|(&lo, &hi)| {
                let r = hi - lo;
                if r < 1e-12 {
                    1.0
                } else {
                    r
                }
            })
            .collect();
        debug_assert_eq!(mins.len(), p);
        Self {
            mins,
            ranges,
            kinds: data.feature_kinds().to_vec(),
        }
    }

    /// Applies the fitted transform. Out-of-range values (test fold beyond
    /// the training extremes) map linearly outside `[0, 1]`, the sklearn
    /// behaviour.
    ///
    /// # Panics
    /// Panics if `data` has a different feature count than the fitted one.
    #[must_use]
    pub fn transform(&self, data: &Dataset) -> Dataset {
        let p = data.n_features();
        assert_eq!(p, self.mins.len(), "scaler fitted on different width");
        let mut out = Vec::with_capacity(data.features().len());
        for row in data.features().chunks_exact(p) {
            for (j, &v) in row.iter().enumerate() {
                if self.kinds[j] == FeatureKind::Categorical {
                    out.push(v);
                } else {
                    out.push((v - self.mins[j]) / self.ranges[j]);
                }
            }
        }
        Dataset::from_parts(out, data.labels().to_vec(), p, data.n_classes())
            .with_name(data.name().to_string())
            .with_kinds(data.feature_kinds().to_vec())
    }

    /// Convenience: fit on `train`, transform both folds.
    #[must_use]
    pub fn fit_transform_pair(train: &Dataset, test: &Dataset) -> (Dataset, Dataset) {
        let scaler = Self::fit(train);
        (scaler.transform(train), scaler.transform(test))
    }

    /// Fitted column minima.
    #[must_use]
    pub fn mins(&self) -> &[f64] {
        &self.mins
    }

    /// Fitted column ranges (max − min, floored to 1 for constants).
    #[must_use]
    pub fn ranges(&self) -> &[f64] {
        &self.ranges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_to_zero_mean_unit_var() {
        let d = Dataset::from_parts(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], vec![0, 0, 0], 2, 1);
        let s = StandardScaler::fit(&d);
        let t = s.transform(&d);
        let p = 2;
        for j in 0..p {
            let mean: f64 = (0..3).map(|i| t.value(i, j)).sum::<f64>() / 3.0;
            let var: f64 = (0..3).map(|i| t.value(i, j).powi(2)).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_column_maps_to_zero() {
        let d = Dataset::from_parts(vec![7.0, 7.0, 7.0], vec![0, 0, 0], 1, 1);
        let s = StandardScaler::fit(&d);
        let t = s.transform(&d);
        for i in 0..3 {
            assert_eq!(t.value(i, 0), 0.0);
        }
    }

    #[test]
    fn categorical_columns_pass_through() {
        let d = Dataset::from_parts(vec![1.0, 2.0, 3.0, 0.0, 5.0, 1.0], vec![0, 0, 0], 2, 1)
            .with_kinds(vec![FeatureKind::Numeric, FeatureKind::Categorical]);
        let t = StandardScaler::fit(&d).transform(&d);
        assert_eq!(t.value(0, 1), 2.0);
        assert_eq!(t.value(1, 1), 0.0);
        assert_eq!(t.value(2, 1), 1.0);
    }

    #[test]
    fn transform_uses_train_statistics_only() {
        let train = Dataset::from_parts(vec![0.0, 10.0], vec![0, 0], 1, 1);
        let test = Dataset::from_parts(vec![5.0], vec![0], 1, 1);
        let (_tr, te) = StandardScaler::fit_transform_pair(&train, &test);
        // train mean 5, std 5 -> test value 5 maps to 0
        assert!(te.value(0, 0).abs() < 1e-12);
    }

    #[test]
    fn minmax_maps_training_columns_onto_unit_interval() {
        let d = Dataset::from_parts(vec![2.0, -1.0, 4.0, 0.0, 6.0, 1.0], vec![0, 0, 0], 2, 1);
        let t = MinMaxScaler::fit(&d).transform(&d);
        for j in 0..2 {
            let vals: Vec<f64> = (0..3).map(|i| t.value(i, j)).collect();
            assert_eq!(vals.iter().cloned().fold(f64::INFINITY, f64::min), 0.0);
            assert_eq!(vals.iter().cloned().fold(0.0, f64::max), 1.0);
        }
        // linearity: midpoint maps to 0.5
        assert!((t.value(1, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn minmax_constant_column_maps_to_zero() {
        let d = Dataset::from_parts(vec![3.0, 3.0, 3.0], vec![0, 0, 0], 1, 1);
        let t = MinMaxScaler::fit(&d).transform(&d);
        for i in 0..3 {
            assert_eq!(t.value(i, 0), 0.0);
        }
    }

    #[test]
    fn minmax_test_fold_can_exceed_unit_interval() {
        let train = Dataset::from_parts(vec![0.0, 10.0], vec![0, 0], 1, 1);
        let test = Dataset::from_parts(vec![-5.0, 15.0], vec![0, 0], 1, 1);
        let (_tr, te) = MinMaxScaler::fit_transform_pair(&train, &test);
        assert!((te.value(0, 0) + 0.5).abs() < 1e-12);
        assert!((te.value(1, 0) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn minmax_categorical_columns_pass_through() {
        let d = Dataset::from_parts(vec![1.0, 2.0, 3.0, 0.0, 5.0, 1.0], vec![0, 0, 0], 2, 1)
            .with_kinds(vec![FeatureKind::Numeric, FeatureKind::Categorical]);
        let t = MinMaxScaler::fit(&d).transform(&d);
        assert_eq!(t.value(0, 1), 2.0);
        assert_eq!(t.value(2, 1), 1.0);
    }
}
