//! CSV import/export.
//!
//! The reproduction runs on synthetic surrogates, but a downstream user will
//! want to feed the *real* UCI/KEEL files through the same pipeline. This
//! module reads headered CSV into a [`Dataset`] — inferring numeric vs
//! categorical columns and densifying string labels — and writes datasets
//! back out.

use crate::dataset::{Dataset, FeatureKind};
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::Path;

/// Which column holds the class label.
#[derive(Debug, Clone)]
pub enum LabelColumn {
    /// Column by zero-based index.
    Index(usize),
    /// Column by header name.
    Name(String),
    /// The last column (the UCI convention).
    Last,
}

/// CSV parsing options.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Label column selector.
    pub label: LabelColumn,
    /// Field separator.
    pub separator: char,
    /// Treat the first row as a header (default true).
    pub has_header: bool,
}

impl Default for CsvOptions {
    fn default() -> Self {
        Self {
            label: LabelColumn::Last,
            separator: ',',
            has_header: true,
        }
    }
}

/// Errors from CSV import.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file has no data rows.
    Empty,
    /// A row has the wrong number of fields.
    Ragged {
        /// 1-based line number.
        line: usize,
        /// Fields found.
        found: usize,
        /// Fields expected.
        expected: usize,
    },
    /// The label column selector does not resolve.
    BadLabelColumn(String),
    /// A numeric field failed to parse and the column was already committed
    /// as numeric.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// Column index.
        column: usize,
        /// Offending text.
        text: String,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "io error: {e}"),
            CsvError::Empty => write!(f, "no data rows"),
            CsvError::Ragged {
                line,
                found,
                expected,
            } => write!(f, "line {line}: {found} fields, expected {expected}"),
            CsvError::BadLabelColumn(s) => write!(f, "label column not found: {s}"),
            CsvError::BadNumber { line, column, text } => {
                write!(f, "line {line}, column {column}: cannot parse {text:?}")
            }
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

fn split_line(line: &str, sep: char) -> Vec<String> {
    line.split(sep).map(|s| s.trim().to_string()).collect()
}

/// Reads a CSV file into a [`Dataset`].
///
/// Column typing: a feature column whose every value parses as `f64` is
/// numeric; otherwise it is categorical and its distinct strings are mapped
/// to integer codes in first-appearance order. Labels (numeric or string)
/// are densified to `0..q` in sorted order of their text form.
///
/// # Errors
/// See [`CsvError`].
pub fn read_csv(path: &Path, options: &CsvOptions) -> Result<Dataset, CsvError> {
    let content = fs::read_to_string(path)?;
    read_csv_str(&content, options).map(|d| {
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        d.with_name(name)
    })
}

/// [`read_csv`] over an in-memory string (used by tests and pipes).
///
/// # Errors
/// See [`CsvError`].
pub fn read_csv_str(content: &str, options: &CsvOptions) -> Result<Dataset, CsvError> {
    let mut lines = content
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let header: Option<Vec<String>> = if options.has_header {
        lines.next().map(|(_, l)| split_line(l, options.separator))
    } else {
        None
    };
    let rows: Vec<(usize, Vec<String>)> = lines
        .map(|(i, l)| (i + 1, split_line(l, options.separator)))
        .collect();
    if rows.is_empty() {
        return Err(CsvError::Empty);
    }
    let width = header
        .as_ref()
        .map(Vec::len)
        .unwrap_or_else(|| rows[0].1.len());
    for (line, fields) in &rows {
        if fields.len() != width {
            return Err(CsvError::Ragged {
                line: *line,
                found: fields.len(),
                expected: width,
            });
        }
    }

    let label_idx = match &options.label {
        LabelColumn::Index(i) => {
            if *i >= width {
                return Err(CsvError::BadLabelColumn(format!(
                    "index {i} >= width {width}"
                )));
            }
            *i
        }
        LabelColumn::Name(name) => header
            .as_ref()
            .and_then(|h| h.iter().position(|c| c == name))
            .ok_or_else(|| CsvError::BadLabelColumn(name.clone()))?,
        LabelColumn::Last => width - 1,
    };

    let feature_cols: Vec<usize> = (0..width).filter(|&c| c != label_idx).collect();
    // column typing
    let mut numeric = vec![true; width];
    for (_, fields) in &rows {
        for &c in &feature_cols {
            if numeric[c] && fields[c].parse::<f64>().is_err() {
                numeric[c] = false;
            }
        }
    }
    // categorical code maps (first-appearance order)
    let mut code_maps: Vec<BTreeMap<String, f64>> = vec![BTreeMap::new(); width];
    // labels: densify sorted text forms
    let mut label_values: Vec<String> = rows.iter().map(|(_, f2)| f2[label_idx].clone()).collect();
    label_values.sort();
    label_values.dedup();
    let label_code = |s: &str| {
        label_values
            .binary_search_by(|v| v.as_str().cmp(s))
            .expect("present") as u32
    };

    let mut features = Vec::with_capacity(rows.len() * feature_cols.len());
    let mut labels = Vec::with_capacity(rows.len());
    for (line, fields) in &rows {
        for &c in &feature_cols {
            if numeric[c] {
                let v: f64 = fields[c].parse().map_err(|_| CsvError::BadNumber {
                    line: *line,
                    column: c,
                    text: fields[c].clone(),
                })?;
                features.push(v);
            } else {
                let next_code = code_maps[c].len() as f64;
                let code = *code_maps[c].entry(fields[c].clone()).or_insert(next_code);
                features.push(code);
            }
        }
        labels.push(label_code(&fields[label_idx]));
    }
    let kinds: Vec<FeatureKind> = feature_cols
        .iter()
        .map(|&c| {
            if numeric[c] {
                FeatureKind::Numeric
            } else {
                FeatureKind::Categorical
            }
        })
        .collect();
    let d = Dataset::from_parts(features, labels, feature_cols.len(), label_values.len())
        .with_kinds(kinds);
    Ok(d)
}

/// Renders a dataset as headered CSV text (`f0..f{p-1}, label`), the exact
/// format [`read_csv_str`] parses back (numeric round trip is lossless:
/// values print via Rust's shortest-roundtrip float formatting).
#[must_use]
pub fn write_csv_str(data: &Dataset) -> String {
    let mut out = String::new();
    let header: Vec<String> = (0..data.n_features())
        .map(|j| format!("f{j}"))
        .chain(std::iter::once("label".to_string()))
        .collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for (row, label) in data.iter_rows() {
        let mut fields: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        fields.push(label.to_string());
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    out
}

/// Writes a dataset as headered CSV (`f0..f{p-1}, label`).
///
/// # Errors
/// Propagates I/O failures.
pub fn write_csv(data: &Dataset, path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut out = fs::File::create(path)?;
    write!(out, "{}", write_csv_str(data))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
a,b,color,class
1.0,2.5,red,yes
2.0,3.5,blue,no
3.0,4.5,red,yes
4.5,0.5,green,no
";

    #[test]
    fn parses_mixed_columns() {
        let d = read_csv_str(SAMPLE, &CsvOptions::default()).unwrap();
        assert_eq!(d.n_samples(), 4);
        assert_eq!(d.n_features(), 3);
        assert_eq!(d.n_classes(), 2);
        assert_eq!(
            d.feature_kinds(),
            &[
                FeatureKind::Numeric,
                FeatureKind::Numeric,
                FeatureKind::Categorical
            ]
        );
        // "red" appeared first -> code 0; "blue" -> 1; "green" -> 2
        assert_eq!(d.value(0, 2), 0.0);
        assert_eq!(d.value(1, 2), 1.0);
        assert_eq!(d.value(3, 2), 2.0);
        // labels sorted: "no" -> 0, "yes" -> 1
        assert_eq!(d.label(0), 1);
        assert_eq!(d.label(1), 0);
    }

    #[test]
    fn label_by_name_and_index() {
        let by_name = read_csv_str(
            SAMPLE,
            &CsvOptions {
                label: LabelColumn::Name("class".into()),
                ..Default::default()
            },
        )
        .unwrap();
        let by_index = read_csv_str(
            SAMPLE,
            &CsvOptions {
                label: LabelColumn::Index(3),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(by_name.labels(), by_index.labels());
    }

    #[test]
    fn label_in_middle_column() {
        let csv = "x,class,y\n1,a,2\n3,b,4\n";
        let d = read_csv_str(
            csv,
            &CsvOptions {
                label: LabelColumn::Index(1),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.row(0), &[1.0, 2.0]);
        assert_eq!(d.label(1), 1);
    }

    #[test]
    fn ragged_rows_rejected() {
        let csv = "a,b\n1,2\n3\n";
        let err = read_csv_str(csv, &CsvOptions::default()).unwrap_err();
        assert!(matches!(err, CsvError::Ragged { line: 3, .. }), "{err}");
    }

    #[test]
    fn missing_label_column_rejected() {
        let err = read_csv_str(
            SAMPLE,
            &CsvOptions {
                label: LabelColumn::Name("nope".into()),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, CsvError::BadLabelColumn(_)));
    }

    #[test]
    fn empty_file_rejected() {
        let err = read_csv_str("a,b\n", &CsvOptions::default()).unwrap_err();
        assert!(matches!(err, CsvError::Empty));
    }

    #[test]
    fn headerless_parsing() {
        let csv = "1,2,0\n3,4,1\n";
        let d = read_csv_str(
            csv,
            &CsvOptions {
                has_header: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(d.n_samples(), 2);
        assert_eq!(d.n_classes(), 2);
    }

    #[test]
    fn roundtrip_through_files() {
        use crate::catalog::DatasetId;
        let d = DatasetId::S2.generate(0.05, 1);
        let path = std::env::temp_dir().join("gbabs-io-test.csv");
        write_csv(&d, &path).unwrap();
        let back = read_csv(&path, &CsvOptions::default()).unwrap();
        assert_eq!(back.n_samples(), d.n_samples());
        assert_eq!(back.n_features(), d.n_features());
        assert_eq!(back.labels(), d.labels());
        for i in 0..d.n_samples() {
            for j in 0..d.n_features() {
                assert!((back.value(i, j) - d.value(i, j)).abs() < 1e-12);
            }
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn semicolon_separator() {
        let csv = "a;b;c\n1;2;x\n3;4;y\n";
        let d = read_csv_str(
            csv,
            &CsvOptions {
                separator: ';',
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.n_classes(), 2);
    }

    mod roundtrip_props {
        use super::super::*;
        use proptest::prelude::*;

        fn arb_numeric_dataset() -> impl Strategy<Value = Dataset> {
            (1usize..40, 1usize..6, 1usize..4).prop_flat_map(|(n, p, q)| {
                (
                    proptest::collection::vec(-1e6f64..1e6, n * p),
                    proptest::collection::vec(0u32..q as u32, n),
                    Just(p),
                )
                    .prop_map(move |(feats, mut labels, p)| {
                        // ensure every class id below the max present label is
                        // dense enough for read_csv's label densification to
                        // reproduce the same ids: force labels 0..q' to appear
                        labels.sort_unstable();
                        let q_eff = (*labels.last().unwrap() as usize + 1).min(labels.len());
                        for (i, l) in labels.iter_mut().take(q_eff).enumerate() {
                            *l = i as u32;
                        }
                        let q = *labels.iter().max().unwrap() as usize + 1;
                        Dataset::from_parts(feats, labels, p, q)
                    })
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            #[test]
            fn numeric_csv_roundtrip_is_lossless(data in arb_numeric_dataset()) {
                let text = write_csv_str(&data);
                let back = read_csv_str(&text, &CsvOptions::default()).unwrap();
                prop_assert_eq!(back.n_samples(), data.n_samples());
                prop_assert_eq!(back.n_features(), data.n_features());
                prop_assert_eq!(back.n_classes(), data.n_classes());
                prop_assert_eq!(back.features(), data.features());
                prop_assert_eq!(back.labels(), data.labels());
            }

            #[test]
            fn written_csv_has_one_line_per_row_plus_header(
                data in arb_numeric_dataset()
            ) {
                let text = write_csv_str(&data);
                prop_assert_eq!(text.lines().count(), data.n_samples() + 1);
                prop_assert!(text.starts_with("f0,"));
            }
        }
    }
}
