//! The `NeighborIndex` abstraction: one API over the brute-force scan
//! ([`crate::neighbors`]), the KD-tree ([`crate::kdtree`]) and the VP-tree
//! ([`crate::vptree`]), with **tombstone deletion** so RD-GBG can remove
//! covered rows from the undivided set without rebuilding from scratch.
//!
//! Contract shared by every backend (property-tested in `gbabs`):
//!
//! * all distances are **kernel values** of the index's
//!   [`Metric`](crate::distance::Metric) — squared Euclidean by default,
//!   L1 for Manhattan, squared chord (on internally L2-normalized rows)
//!   for cosine. The monotone `rank_of` map (`sqrt` / identity) is
//!   deferred until a ball radius is finalized. Field names say `sq_*`
//!   for continuity with the Euclidean-only era;
//! * k-NN results are the exact `k` nearest *alive* rows ordered by
//!   `(sq_dist, row)` ascending, ties broken toward the smaller row;
//! * range queries return every alive row within the (kernel-space) bound,
//!   in unspecified order;
//! * deleted rows never appear in any result;
//! * cosine indexes normalize build rows once and every query per call
//!   through the same scalar helper, so normalized coordinates — and hence
//!   all results — are bit-identical across backends and kernel tiers.
//!
//! Because every backend is exact and applies the identical tie-break, the
//! RD-GBG models built on top of them are **bit-identical** across
//! backends; the backend only changes the asymptotics:
//!
//! | operation            | Brute  | KdTree (low p)  | VpTree (low intrinsic dim) |
//! |----------------------|--------|-----------------|----------------------------|
//! | build                | O(n)   | O(n log n)      | O(n log n)                 |
//! | k-NN query           | O(n)   | O(log n + k)    | O(log n + k)               |
//! | range query          | O(n)   | O(log n + out)  | O(log n + out)             |
//! | delete               | O(1)   | O(1)            | O(1)                       |
//!
//! Tree queries degrade toward O(n) as the (intrinsic) dimensionality
//! grows; [`GranulationBackend::Auto`] picks a sensible backend per
//! dataset shape.

use crate::dataset::Dataset;
use crate::distance::{calibrated_leaf_size, manhattan, sq_euclidean, Metric, LANE_WIDTH};
use crate::kdtree::KdTree;
use crate::vptree::VpTree;
use std::fmt;

/// One neighbour hit in squared-distance space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SqNeighbor {
    /// Row index into the indexed dataset.
    pub row: usize,
    /// Squared Euclidean distance to the query.
    pub sq_dist: f64,
}

/// Whether a range query's bound is `< bound` or `<= bound`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeBound {
    /// Strictly inside: `sq_dist < bound`.
    Strict,
    /// Inclusive: `sq_dist <= bound`.
    Inclusive,
}

impl RangeBound {
    /// Applies the bound test.
    #[inline]
    #[must_use]
    pub fn admits(self, sq_dist: f64, sq_bound: f64) -> bool {
        match self {
            RangeBound::Strict => sq_dist < sq_bound,
            RangeBound::Inclusive => sq_dist <= sq_bound,
        }
    }
}

/// Bounded best-`k` accumulator over `(sq_dist, row)` with the workspace's
/// canonical tie-break (smaller row wins at equal distance). A binary
/// max-heap, so inserts are `O(log k)` — this replaces both the `O(k·n)`
/// insertion buffer the old RD-GBG scan used and the linear worst-entry
/// scans in the tree queries.
#[derive(Debug, Clone)]
pub struct KBest {
    k: usize,
    /// Max-heap on `(sq_dist, row)` lexicographic order.
    heap: Vec<(f64, usize)>,
}

#[inline]
fn entry_gt(a: (f64, usize), b: (f64, usize)) -> bool {
    a.0 > b.0 || (a.0 == b.0 && a.1 > b.1)
}

impl KBest {
    /// New accumulator keeping the best `k` entries.
    #[must_use]
    pub fn new(k: usize) -> Self {
        Self {
            k,
            heap: Vec::with_capacity(k.min(1024)),
        }
    }

    /// Squared distance of the current worst kept entry, or `+inf` while
    /// fewer than `k` entries are held. Exact pruning threshold for tree
    /// traversals.
    #[inline]
    #[must_use]
    pub fn worst_sq(&self) -> f64 {
        if self.heap.len() < self.k {
            f64::INFINITY
        } else {
            self.heap[0].0
        }
    }

    /// Number of entries currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no entries are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Offers an entry; keeps it only if it beats the current worst.
    #[inline]
    pub fn insert(&mut self, sq_dist: f64, row: usize) {
        if self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push((sq_dist, row));
            self.sift_up(self.heap.len() - 1);
        } else if entry_gt(self.heap[0], (sq_dist, row)) {
            self.heap[0] = (sq_dist, row);
            self.sift_down(0);
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if entry_gt(self.heap[i], self.heap[parent]) {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut largest = i;
            if l < self.heap.len() && entry_gt(self.heap[l], self.heap[largest]) {
                largest = l;
            }
            if r < self.heap.len() && entry_gt(self.heap[r], self.heap[largest]) {
                largest = r;
            }
            if largest == i {
                break;
            }
            self.heap.swap(i, largest);
            i = largest;
        }
    }

    /// Merges another accumulator into this one (used by chunked parallel
    /// brute scans; the result is independent of chunking).
    pub fn merge(&mut self, other: &KBest) {
        for &(d, r) in &other.heap {
            self.insert(d, r);
        }
    }

    /// Extracts the kept entries sorted ascending by `(sq_dist, row)`.
    #[must_use]
    pub fn into_sorted(self) -> Vec<SqNeighbor> {
        let mut v: Vec<SqNeighbor> = self
            .heap
            .into_iter()
            .map(|(sq_dist, row)| SqNeighbor { row, sq_dist })
            .collect();
        v.sort_unstable_by(|a, b| {
            a.sq_dist
                .partial_cmp(&b.sq_dist)
                .expect("finite distances")
                .then_with(|| a.row.cmp(&b.row))
        });
        v
    }
}

/// Lazily yields alive rows in ascending `(sq_dist, row)` order from a
/// pivot — the default [`NeighborIndex::distance_ordered`] implementation.
///
/// Works by geometric re-querying: fetch the `k` nearest, emit them, then
/// re-query with `2k` once exhausted. Because every backend's
/// `k_nearest_sq` is exact under the shared tie-break, each larger result
/// extends the previous one, so the emitted sequence is exactly the fully
/// sorted alive set — but a consumer that stops after a short prefix (the
/// GBG++ hard-attention peel) pays `O(prefix · query)` instead of a full
/// `O(n log n)` sort. The index must not be mutated during iteration
/// (enforced by the borrow).
struct DistanceOrdered<'a, I: NeighborIndex + ?Sized> {
    index: &'a I,
    query: &'a [f64],
    batch: Vec<SqNeighbor>,
    /// Entries of `batch` already handed out.
    emitted: usize,
    /// `k` of the last `k_nearest_sq` call (0 = none yet).
    k: usize,
    /// Set once a query returned fewer than `k` hits — the alive set is
    /// exhausted and no larger re-query can add entries.
    done: bool,
}

impl<'a, I: NeighborIndex + ?Sized> DistanceOrdered<'a, I> {
    const INITIAL_K: usize = 32;

    fn new(index: &'a I, query: &'a [f64]) -> Self {
        Self {
            index,
            query,
            batch: Vec::new(),
            emitted: 0,
            k: 0,
            done: false,
        }
    }
}

impl<I: NeighborIndex + ?Sized> Iterator for DistanceOrdered<'_, I> {
    type Item = SqNeighbor;

    fn next(&mut self) -> Option<SqNeighbor> {
        if self.emitted == self.batch.len() {
            if self.done {
                return None;
            }
            self.k = if self.k == 0 {
                Self::INITIAL_K
            } else {
                self.k * 2
            };
            self.batch = self.index.k_nearest_sq(self.query, self.k, None);
            self.done = self.batch.len() < self.k;
            if self.emitted == self.batch.len() {
                return None;
            }
        }
        let hit = self.batch[self.emitted];
        self.emitted += 1;
        Some(hit)
    }
}

/// Rows per blocked-kernel call in [`assign_to_nearest`].
const ASSIGN_BLOCK: usize = 128;

/// Bulk assign-to-nearest-centroid — the Lloyd-step query shape of the
/// k-division / 2-means granulation lineage, routed through the blocked
/// many-to-many kernel with the **centroids as the query tile**. For every
/// row of the row-major `points` block (each `n_features` wide), writes the
/// index of its nearest centroid in the row-major `centroids` block into
/// `out`; ties break toward the **smaller centroid index**, so callers
/// that gather centroids in ascending row order inherit the workspace's
/// smaller-row tie-break.
///
/// Determinism: distances come from [`sq_dist_block`], which is
/// bit-identical to the per-pair kernels per the width-keyed contract (and
/// `(a-b)²` is bitwise symmetric), and the argmin still walks centroids in
/// ascending index with strict `<` — so routing through the register tile
/// cannot change an assignment.
///
/// # Panics
/// Panics unless `points.len()` and `centroids.len()` are multiples of
/// `n_features` (`n_features > 0`) and `out` holds one slot per point row.
pub fn assign_to_nearest(points: &[f64], centroids: &[f64], n_features: usize, out: &mut [u32]) {
    assign_prepared(Metric::SqEuclidean, points, centroids, n_features, out);
}

/// [`assign_to_nearest`] under an explicit metric. Cosine normalizes
/// copies of both blocks first (the Lloyd callers pass raw means); the
/// other metrics run zero-copy.
///
/// # Panics
/// Same shape contract as [`assign_to_nearest`].
pub fn assign_to_nearest_with(
    metric: Metric,
    points: &[f64],
    centroids: &[f64],
    n_features: usize,
    out: &mut [u32],
) {
    if metric.normalizes() {
        let mut pts = points.to_vec();
        let mut cents = centroids.to_vec();
        metric.prepare_rows(&mut pts, n_features);
        metric.prepare_rows(&mut cents, n_features);
        assign_prepared(metric, &pts, &cents, n_features, out);
    } else {
        assign_prepared(metric, points, centroids, n_features, out);
    }
}

/// Shared argmin sweep over kernel-ready blocks.
fn assign_prepared(
    metric: Metric,
    points: &[f64],
    centroids: &[f64],
    n_features: usize,
    out: &mut [u32],
) {
    assert!(n_features > 0, "assign_to_nearest needs n_features > 0");
    assert_eq!(
        points.len(),
        n_features * out.len(),
        "points must be exactly out.len() rows of n_features"
    );
    assert_eq!(
        centroids.len() % n_features,
        0,
        "ragged centroid block (len {} vs {n_features} features)",
        centroids.len()
    );
    let n_centroids = centroids.len() / n_features;
    assert!(n_centroids > 0, "assign_to_nearest needs >= 1 centroid");
    assert!(
        n_centroids <= u32::MAX as usize,
        "centroid index must fit u32"
    );
    // Centroid-major scratch: dists[ci * rows + r], exactly the blocked
    // kernel's output layout with centroids as queries.
    let mut dists = vec![0.0f64; n_centroids * ASSIGN_BLOCK];
    let mut best = [f64::INFINITY; ASSIGN_BLOCK];
    let mut lo = 0usize;
    while lo < out.len() {
        let hi = (lo + ASSIGN_BLOCK).min(out.len());
        let rows = hi - lo;
        let block = &points[lo * n_features..hi * n_features];
        best[..rows].fill(f64::INFINITY);
        // Parity with the per-pair loops: centroid 0 wins when no distance
        // compares below +inf (all-NaN rows included).
        out[lo..hi].fill(0);
        metric.dist_block(
            centroids,
            block,
            n_features,
            &mut dists[..n_centroids * rows],
        );
        for ci in 0..n_centroids {
            let crow = &dists[ci * rows..(ci + 1) * rows];
            for (r, &d) in crow.iter().enumerate() {
                // Strict `<` keeps the earliest centroid on ties, exactly
                // like the per-pair loops this replaces.
                if d < best[r] {
                    best[r] = d;
                    out[lo + r] = ci as u32;
                }
            }
        }
        lo = hi;
    }
}

/// A nearest-neighbour index over the rows of a dataset snapshot, with
/// tombstone deletion. See the module docs for the exactness contract.
pub trait NeighborIndex: Send + Sync {
    /// The metric this index computes kernel values in. Backends built via
    /// [`GranulationBackend::build_with`] report the metric they were given.
    fn metric(&self) -> Metric {
        Metric::SqEuclidean
    }

    /// Rows the index was built over (alive + deleted).
    fn n_rows(&self) -> usize;

    /// Rows still alive.
    fn n_alive(&self) -> usize;

    /// Whether `row` is alive.
    fn is_alive(&self, row: usize) -> bool;

    /// Tombstones `row`. Returns `false` when it was already deleted.
    fn delete(&mut self, row: usize) -> bool;

    /// Exact `k` nearest alive rows to `query` (excluding `skip`), sorted
    /// ascending by `(sq_dist, row)`.
    fn k_nearest_sq(&self, query: &[f64], k: usize, skip: Option<usize>) -> Vec<SqNeighbor>;

    /// The single nearest alive row, or `None` when nothing (else) is alive.
    fn nearest_sq(&self, query: &[f64], skip: Option<usize>) -> Option<SqNeighbor> {
        self.k_nearest_sq(query, 1, skip).first().copied()
    }

    /// Nearest alive row whose label differs from `label`, or `None`.
    fn nearest_heterogeneous_sq(
        &self,
        query: &[f64],
        label: u32,
        skip: Option<usize>,
    ) -> Option<SqNeighbor>;

    /// Every alive row within `sq_bound` of `query` under `bound`
    /// semantics, excluding `skip`. Order unspecified.
    fn range_sq(
        &self,
        query: &[f64],
        sq_bound: f64,
        bound: RangeBound,
        skip: Option<usize>,
    ) -> Vec<SqNeighbor>;

    /// Distance-ordered iteration from a pivot: lazily yields every alive
    /// row in ascending `(sq_dist, row)` order — the "attention" query of
    /// the GBG++ hard-attention peel, which consumes only the homogeneous
    /// prefix. The default implementation re-queries
    /// [`NeighborIndex::k_nearest_sq`] with geometrically growing `k`, so a
    /// consumer
    /// that stops after `m` rows pays `O(m)` queries of exact results
    /// rather than a full sort. Every backend currently uses this default
    /// (a sort-the-alive-set brute override measured slower on the GBG++
    /// peel — short prefixes dominate); the hook exists so a backend with
    /// a genuinely cheaper total order can take it.
    ///
    /// The borrow prevents mutation while the iterator lives; drop it
    /// before tombstoning the consumed rows.
    fn distance_ordered<'a>(
        &'a self,
        query: &'a [f64],
    ) -> Box<dyn Iterator<Item = SqNeighbor> + 'a> {
        Box::new(DistanceOrdered::new(self, query))
    }

    /// Bulk assign-to-nearest-centroid over caller-supplied row-major
    /// blocks — the Lloyd-step query of the k-division / 2-means lineage.
    /// The default implementation is the dense blocked-kernel sweep
    /// [`assign_to_nearest_with`] under [`NeighborIndex::metric`]
    /// (backend-independent by construction: every backend runs the
    /// identical SIMD path, so outputs cannot differ); it lives on the
    /// trait so a future centroid-indexed backend can override it for
    /// large centroid sets without touching callers.
    ///
    /// # Panics
    /// Same block-shape contract as [`assign_to_nearest`].
    fn assign_to_centroids(
        &self,
        points: &[f64],
        centroids: &[f64],
        n_features: usize,
        out: &mut [u32],
    ) {
        assign_to_nearest_with(self.metric(), points, centroids, n_features, out);
    }
}

/// Shared tombstone state for the tree indexes: the alive bitmap plus the
/// compaction policy (rebuild once deletions since the last build outnumber
/// the survivors, so query cost tracks `|alive|`, amortized O(log n) per
/// delete). Owning the policy here keeps KD-tree and VP-tree behaviour in
/// lock-step.
#[derive(Debug, Clone)]
pub(crate) struct Tombstones {
    alive: Vec<bool>,
    n_alive: usize,
    deleted_since_build: usize,
}

impl Tombstones {
    pub(crate) fn new(n: usize) -> Self {
        Self {
            alive: vec![true; n],
            n_alive: n,
            deleted_since_build: 0,
        }
    }

    #[inline]
    pub(crate) fn is_alive(&self, row: usize) -> bool {
        self.alive[row]
    }

    pub(crate) fn n_alive(&self) -> usize {
        self.n_alive
    }

    /// Tombstones `row`. `None` when it was already deleted; otherwise
    /// whether the owner should rebuild its node arena now.
    pub(crate) fn delete(&mut self, row: usize) -> Option<bool> {
        if !self.alive[row] {
            return None;
        }
        self.alive[row] = false;
        self.n_alive -= 1;
        self.deleted_since_build += 1;
        Some(self.n_alive >= 64 && self.deleted_since_build > self.n_alive)
    }

    /// Marks a rebuild done and returns the surviving rows in ascending
    /// order.
    pub(crate) fn begin_rebuild(&mut self) -> Vec<u32> {
        self.deleted_since_build = 0;
        (0..self.alive.len() as u32)
            .filter(|&r| self.alive[r as usize])
            .collect()
    }
}

/// Brute-force [`NeighborIndex`]: alive rows kept **densely packed** in a
/// contiguous row-major buffer, scanned in blocks through the batched
/// [`crate::distance::sq_euclidean_one_to_many`] kernel. `delete` is O(p)
/// via a block swap-remove; scans touch only alive rows no matter how many
/// tombstones have accumulated, so late RD-GBG iterations stay cheap — and
/// because the buffer compacts itself on every delete, the SIMD kernel
/// always streams a gap-free slab.
#[derive(Debug, Clone)]
pub struct BruteIndex {
    labels: Vec<u32>,
    n_features: usize,
    metric: Metric,
    /// Dense list of alive rows (unordered); `alive_points` is parallel to
    /// it, one `n_features`-wide block per entry.
    alive_rows: Vec<u32>,
    /// Row-major coordinates of the alive rows (metric-prepared: cosine
    /// normalizes them at build), in `alive_rows` order.
    alive_points: Vec<f64>,
    /// `position[row]` = index into `alive_rows`, or `u32::MAX` if deleted.
    position: Vec<u32>,
}

const GONE: u32 = u32::MAX;

/// Rows per batched-kernel call in the brute scans.
const SCAN_BLOCK: usize = 128;

/// Row filter for the brute sweeps — see [`BruteIndex`]'s `scan_blocked`.
#[derive(Clone, Copy)]
enum ScanFilter<'a> {
    /// Exclude at most one alive *slot* (`usize::MAX` = none); the sweep
    /// stays fully batched.
    SkipSlot(usize),
    /// Arbitrary predicate over original row ids; engages the hybrid
    /// dense/sparse path.
    Keep(&'a (dyn Fn(u32) -> bool + Sync)),
}

impl BruteIndex {
    /// Builds the index over every row of `data` (squared Euclidean).
    ///
    /// # Panics
    /// Panics on an empty dataset.
    #[must_use]
    pub fn build(data: &Dataset) -> Self {
        Self::build_with(data, Metric::SqEuclidean)
    }

    /// Builds the index over every row of `data` under `metric` (cosine
    /// normalizes the packed coordinate buffer once, here).
    ///
    /// # Panics
    /// Panics on an empty dataset.
    #[must_use]
    pub fn build_with(data: &Dataset, metric: Metric) -> Self {
        assert!(data.n_samples() > 0, "cannot index an empty dataset");
        let n = data.n_samples();
        let mut alive_points = data.features().to_vec();
        metric.prepare_rows(&mut alive_points, data.n_features());
        Self {
            labels: data.labels().to_vec(),
            n_features: data.n_features(),
            metric,
            alive_rows: (0..n as u32).collect(),
            alive_points,
            position: (0..n as u32).collect(),
        }
    }
}

impl NeighborIndex for BruteIndex {
    fn metric(&self) -> Metric {
        self.metric
    }

    fn n_rows(&self) -> usize {
        self.position.len()
    }

    fn n_alive(&self) -> usize {
        self.alive_rows.len()
    }

    fn is_alive(&self, row: usize) -> bool {
        self.position[row] != GONE
    }

    fn delete(&mut self, row: usize) -> bool {
        let pos = self.position[row];
        if pos == GONE {
            return false;
        }
        let pos = pos as usize;
        let last = self.alive_rows.len() - 1;
        self.alive_rows.swap_remove(pos);
        // Mirror the swap-remove on the packed coordinate buffer.
        let p = self.n_features;
        if pos != last {
            self.alive_points
                .copy_within(last * p..(last + 1) * p, pos * p);
        }
        self.alive_points.truncate(last * p);
        if let Some(&moved) = self.alive_rows.get(pos) {
            self.position[moved as usize] = pos as u32;
        }
        self.position[row] = GONE;
        true
    }

    fn k_nearest_sq(&self, query: &[f64], k: usize, skip: Option<usize>) -> Vec<SqNeighbor> {
        if k == 0 {
            return Vec::new();
        }
        let query = self.metric.prepare_query(query);
        self.scan_best(&query, k, self.skip_filter(skip))
            .into_sorted()
    }

    fn nearest_heterogeneous_sq(
        &self,
        query: &[f64],
        label: u32,
        skip: Option<usize>,
    ) -> Option<SqNeighbor> {
        let query = self.metric.prepare_query(query);
        let keep = move |row: u32| Some(row as usize) != skip && self.labels[row as usize] != label;
        self.scan_best(&query, 1, ScanFilter::Keep(&keep))
            .into_sorted()
            .first()
            .copied()
    }

    fn range_sq(
        &self,
        query: &[f64],
        sq_bound: f64,
        bound: RangeBound,
        skip: Option<usize>,
    ) -> Vec<SqNeighbor> {
        let query = self.metric.prepare_query(query);
        let query = &*query;
        let chunks = self.scan_chunks();
        let filter = self.skip_filter(skip);
        let scan_one = |slot_lo: usize, slot_hi: usize| {
            let mut out = Vec::new();
            self.scan_blocked(slot_lo, slot_hi, query, filter, |row, d| {
                if bound.admits(d, sq_bound) {
                    out.push(SqNeighbor {
                        row: row as usize,
                        sq_dist: d,
                    });
                }
            });
            out
        };
        if chunks <= 1 {
            return scan_one(0, self.alive_rows.len());
        }
        use rayon::prelude::*;
        let chunk_len = self.alive_rows.len().div_ceil(chunks);
        let parts: Vec<Vec<SqNeighbor>> = (0..chunks)
            .into_par_iter()
            .map(|c| {
                let lo = c * chunk_len;
                let hi = ((c + 1) * chunk_len).min(self.alive_rows.len());
                scan_one(lo, hi)
            })
            .collect();
        parts.concat()
    }
}

impl BruteIndex {
    /// Number of parallel chunks for the current scan size (1 = serial).
    /// Distance scans only go multi-threaded once they are long enough to
    /// amortize thread hand-off.
    fn scan_chunks(&self) -> usize {
        const PAR_THRESHOLD: usize = 16_384;
        let n = self.alive_rows.len();
        if n < PAR_THRESHOLD {
            1
        } else {
            rayon::current_num_threads()
                .min(n / (PAR_THRESHOLD / 2))
                .max(1)
        }
    }

    /// The filter for a skip-only query: resolves the skipped row to its
    /// current slot so the sweep stays fully batched.
    fn skip_filter(&self, skip: Option<usize>) -> ScanFilter<'_> {
        let slot = match skip {
            Some(row) if self.position[row] != GONE => self.position[row] as usize,
            _ => usize::MAX,
        };
        ScanFilter::SkipSlot(slot)
    }

    /// Blocked sweep over the packed alive buffer. A [`ScanFilter::SkipSlot`]
    /// query batches every block through the one-to-many kernel (the one
    /// excluded slot's distance is computed and discarded); an arbitrary
    /// [`ScanFilter::Keep`] predicate engages the hybrid path — a fully
    /// admitted block is batched, a filtered block (heterogeneous-label
    /// queries) pays per-pair calls for kept rows only, so rejected
    /// distances are never computed. Every path uses the same kernel tier
    /// → bit-identical distances.
    fn scan_blocked(
        &self,
        slot_lo: usize,
        slot_hi: usize,
        query: &[f64],
        filter: ScanFilter<'_>,
        mut hit: impl FnMut(u32, f64),
    ) {
        let p = self.n_features;
        let mut dists = [0.0f64; SCAN_BLOCK];
        let mut lo = slot_lo;
        match filter {
            ScanFilter::SkipSlot(skip_slot) if p >= LANE_WIDTH => {
                while lo < slot_hi {
                    let hi = (lo + SCAN_BLOCK).min(slot_hi);
                    self.metric.one_to_many(
                        query,
                        &self.alive_points[lo * p..hi * p],
                        &mut dists[..hi - lo],
                    );
                    for s in lo..hi {
                        if s != skip_slot {
                            hit(self.alive_rows[s], dists[s - lo]);
                        }
                    }
                    lo = hi;
                }
            }
            ScanFilter::SkipSlot(skip_slot) if self.metric == Metric::Manhattan => {
                // Sub-lane L1 rows: same bare-loop shape as the Euclidean
                // arm below, with the L1 inline kernel.
                for s in slot_lo..slot_hi {
                    if s != skip_slot {
                        let d = manhattan(query, &self.alive_points[s * p..(s + 1) * p]);
                        hit(self.alive_rows[s], d);
                    }
                }
            }
            ScanFilter::SkipSlot(skip_slot) => {
                // Sub-lane rows: no vector work to batch — one tight loop
                // of the inline per-pair kernel over the packed buffer.
                // (Cosine shares it: its kernel value is squared Euclidean
                // on the pre-normalized buffer/query.)
                for s in slot_lo..slot_hi {
                    if s != skip_slot {
                        let d = sq_euclidean(query, &self.alive_points[s * p..(s + 1) * p]);
                        hit(self.alive_rows[s], d);
                    }
                }
            }
            ScanFilter::Keep(keep) if p < LANE_WIDTH => {
                // Sub-lane rows: fused filter + inline per-pair kernel,
                // one metric branch hoisted out of the loop.
                if self.metric == Metric::Manhattan {
                    for s in slot_lo..slot_hi {
                        if keep(self.alive_rows[s]) {
                            let d = manhattan(query, &self.alive_points[s * p..(s + 1) * p]);
                            hit(self.alive_rows[s], d);
                        }
                    }
                } else {
                    for s in slot_lo..slot_hi {
                        if keep(self.alive_rows[s]) {
                            let d = sq_euclidean(query, &self.alive_points[s * p..(s + 1) * p]);
                            hit(self.alive_rows[s], d);
                        }
                    }
                }
            }
            ScanFilter::Keep(keep) => {
                let mut admitted = [false; SCAN_BLOCK];
                while lo < slot_hi {
                    let hi = (lo + SCAN_BLOCK).min(slot_hi);
                    let mut kept = 0usize;
                    for s in lo..hi {
                        admitted[s - lo] = keep(self.alive_rows[s]);
                        kept += usize::from(admitted[s - lo]);
                    }
                    if kept == hi - lo {
                        self.metric.one_to_many(
                            query,
                            &self.alive_points[lo * p..hi * p],
                            &mut dists[..hi - lo],
                        );
                        for s in lo..hi {
                            hit(self.alive_rows[s], dists[s - lo]);
                        }
                    } else if kept > 0 {
                        for s in lo..hi {
                            if admitted[s - lo] {
                                let d = self
                                    .metric
                                    .pair(query, &self.alive_points[s * p..(s + 1) * p]);
                                hit(self.alive_rows[s], d);
                            }
                        }
                    }
                    lo = hi;
                }
            }
        }
    }

    /// Best-`k` scan over the packed alive buffer, blocked through the
    /// batched kernel and chunked across threads when large. The merge
    /// applies the same `(sq_dist, row)` total order as a serial scan, so
    /// the result is independent of chunking and thread count.
    fn scan_best(&self, query: &[f64], k: usize, filter: ScanFilter<'_>) -> KBest {
        let chunks = self.scan_chunks();
        let scan_one = |slot_lo: usize, slot_hi: usize| {
            let mut best = KBest::new(k);
            self.scan_blocked(slot_lo, slot_hi, query, filter, |row, d| {
                best.insert(d, row as usize);
            });
            best
        };
        if chunks <= 1 {
            return scan_one(0, self.alive_rows.len());
        }
        use rayon::prelude::*;
        let chunk_len = self.alive_rows.len().div_ceil(chunks);
        let parts: Vec<KBest> = (0..chunks)
            .into_par_iter()
            .map(|c| {
                let lo = c * chunk_len;
                let hi = ((c + 1) * chunk_len).min(self.alive_rows.len());
                scan_one(lo, hi)
            })
            .collect();
        let mut merged = KBest::new(k);
        for part in &parts {
            merged.merge(part);
        }
        merged
    }
}

/// Which index implementation backs the granulation / neighbour queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GranulationBackend {
    /// Choose per dataset shape: KD-tree up to moderate dimensionality,
    /// VP-tree beyond (axis-aligned splits stop pruning in high `p`).
    #[default]
    Auto,
    /// Linear scan over alive rows. Exact reference; best for tiny data
    /// and worst-case dimensionality.
    Brute,
    /// Median-split KD-tree. Best at low/medium `p`.
    KdTree,
    /// Vantage-point tree. Best when intrinsic dimensionality is low even
    /// if ambient `p` is large.
    VpTree,
}

impl GranulationBackend {
    /// The concrete (non-`Auto`) backends, for sweeps and property tests.
    pub const CONCRETE: [GranulationBackend; 3] = [
        GranulationBackend::Brute,
        GranulationBackend::KdTree,
        GranulationBackend::VpTree,
    ];

    /// CLI spelling.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            GranulationBackend::Auto => "auto",
            GranulationBackend::Brute => "brute",
            GranulationBackend::KdTree => "kdtree",
            GranulationBackend::VpTree => "vptree",
        }
    }

    /// Parses a CLI spelling.
    #[must_use]
    pub fn from_str_opt(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "auto" => Some(GranulationBackend::Auto),
            "brute" | "bruteforce" | "linear" => Some(GranulationBackend::Brute),
            "kdtree" | "kd" | "kd-tree" => Some(GranulationBackend::KdTree),
            "vptree" | "vp" | "vp-tree" => Some(GranulationBackend::VpTree),
            _ => None,
        }
    }

    /// Resolves `Auto` to a concrete backend for a dataset shape.
    #[must_use]
    pub fn resolve(self, n_samples: usize, n_features: usize) -> Self {
        match self {
            GranulationBackend::Auto => {
                if n_samples < 256 {
                    // Tree build overhead beats query savings on tiny data.
                    GranulationBackend::Brute
                } else if n_features <= 24 {
                    GranulationBackend::KdTree
                } else {
                    GranulationBackend::VpTree
                }
            }
            concrete => concrete,
        }
    }

    /// Builds an index over every row of `data` (squared Euclidean).
    ///
    /// # Panics
    /// Panics on an empty dataset.
    #[must_use]
    pub fn build(self, data: &Dataset) -> Box<dyn NeighborIndex> {
        self.build_with(data, Metric::SqEuclidean)
    }

    /// Builds an index over every row of `data` under `metric`. Tree
    /// backends take their bucket size from the kernel-aware calibration
    /// sweep ([`calibrated_leaf_size`]) instead of the pre-v2 hardcoded 16
    /// — leaf size changes traversal granularity only, never results.
    ///
    /// # Panics
    /// Panics on an empty dataset.
    #[must_use]
    pub fn build_with(self, data: &Dataset, metric: Metric) -> Box<dyn NeighborIndex> {
        match self.resolve(data.n_samples(), data.n_features()) {
            GranulationBackend::Brute => Box::new(BruteIndex::build_with(data, metric)),
            GranulationBackend::KdTree => Box::new(KdTree::build_with(
                data,
                calibrated_leaf_size(data.n_features()),
                metric,
            )),
            GranulationBackend::VpTree => Box::new(VpTree::build_with(
                data,
                calibrated_leaf_size(data.n_features()),
                metric,
            )),
            GranulationBackend::Auto => unreachable!("resolve returns concrete"),
        }
    }
}

impl fmt::Display for GranulationBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;
    use rand::Rng;

    fn random_data(n: usize, p: usize, q: u32, seed: u64) -> Dataset {
        let mut rng = rng_from_seed(seed);
        let feats: Vec<f64> = (0..n * p).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let labels: Vec<u32> = (0..n).map(|_| rng.gen_range(0..q)).collect();
        Dataset::from_parts(feats, labels, p, q as usize)
    }

    fn backends(data: &Dataset) -> Vec<(&'static str, Box<dyn NeighborIndex>)> {
        GranulationBackend::CONCRETE
            .iter()
            .map(|b| (b.name(), b.build(data)))
            .collect()
    }

    /// Reference result computed straight from the dataset.
    fn ref_k_nearest(
        data: &Dataset,
        alive: &[bool],
        query: &[f64],
        k: usize,
        skip: Option<usize>,
    ) -> Vec<SqNeighbor> {
        let mut all: Vec<SqNeighbor> = (0..data.n_samples())
            .filter(|&r| alive[r] && Some(r) != skip)
            .map(|r| SqNeighbor {
                row: r,
                sq_dist: sq_euclidean(data.row(r), query),
            })
            .collect();
        all.sort_by(|a, b| {
            a.sq_dist
                .partial_cmp(&b.sq_dist)
                .unwrap()
                .then_with(|| a.row.cmp(&b.row))
        });
        all.truncate(k);
        all
    }

    #[test]
    fn kbest_keeps_exact_topk_with_ties() {
        let mut kb = KBest::new(3);
        for (d, r) in [(2.0, 5), (1.0, 9), (1.0, 2), (3.0, 0), (1.0, 7), (0.5, 4)] {
            kb.insert(d, r);
        }
        let got = kb.into_sorted();
        let rows: Vec<usize> = got.iter().map(|n| n.row).collect();
        // 0.5@4, then the 1.0 ties by ascending row: 2, 7
        assert_eq!(rows, vec![4, 2, 7]);
    }

    #[test]
    fn kbest_merge_is_chunking_invariant() {
        let entries: Vec<(f64, usize)> = (0..200)
            .map(|i| ((i * 37 % 101) as f64 * 0.25, i))
            .collect();
        let mut whole = KBest::new(9);
        for &(d, r) in &entries {
            whole.insert(d, r);
        }
        let mut left = KBest::new(9);
        let mut right = KBest::new(9);
        for &(d, r) in &entries[..97] {
            left.insert(d, r);
        }
        for &(d, r) in &entries[97..] {
            right.insert(d, r);
        }
        left.merge(&right);
        assert_eq!(whole.into_sorted(), left.into_sorted());
    }

    #[test]
    fn all_backends_agree_with_reference_under_deletions() {
        for (n, p) in [(120usize, 2usize), (150, 7), (90, 40)] {
            let data = random_data(n, p, 3, n as u64);
            let mut alive = vec![true; n];
            let mut idx = backends(&data);
            let mut rng = rng_from_seed(17);
            for round in 0..6 {
                // delete a random batch
                for _ in 0..n / 10 {
                    let r = rng.gen_range(0..n);
                    if alive.iter().filter(|&&a| a).count() <= 5 {
                        break;
                    }
                    if alive[r] {
                        alive[r] = false;
                        for (_, ix) in idx.iter_mut() {
                            assert!(ix.delete(r));
                        }
                    }
                }
                for _ in 0..10 {
                    let qi = rng.gen_range(0..n);
                    let skip = if rng.gen_bool(0.5) { Some(qi) } else { None };
                    let q = data.row(qi).to_vec();
                    let want = ref_k_nearest(&data, &alive, &q, 4, skip);
                    for (name, ix) in idx.iter() {
                        let got = ix.k_nearest_sq(&q, 4, skip);
                        assert_eq!(
                            got.iter().map(|h| h.row).collect::<Vec<_>>(),
                            want.iter().map(|h| h.row).collect::<Vec<_>>(),
                            "{name} n={n} p={p} round={round}"
                        );
                        assert_eq!(ix.n_alive(), alive.iter().filter(|&&a| a).count());
                    }
                }
            }
        }
    }

    #[test]
    fn heterogeneous_and_range_agree_across_backends() {
        let data = random_data(140, 3, 4, 9);
        let mut idx = backends(&data);
        let mut rng = rng_from_seed(5);
        for _ in 0..25 {
            let del = rng.gen_range(0..data.n_samples());
            for (_, ix) in idx.iter_mut() {
                ix.delete(del);
            }
        }
        for _ in 0..20 {
            let qi = rng.gen_range(0..data.n_samples());
            let q = data.row(qi).to_vec();
            let label = data.label(qi);
            let sq_bound = rng.gen_range(0.5..40.0);
            let het: Vec<Option<SqNeighbor>> = idx
                .iter()
                .map(|(_, ix)| ix.nearest_heterogeneous_sq(&q, label, Some(qi)))
                .collect();
            for w in het.windows(2) {
                match (&w[0], &w[1]) {
                    (Some(a), Some(b)) => {
                        assert_eq!(a.row, b.row);
                        assert!((a.sq_dist - b.sq_dist).abs() < 1e-12);
                    }
                    (None, None) => {}
                    _ => panic!("backends disagree on heterogeneous existence"),
                }
            }
            for bound in [RangeBound::Strict, RangeBound::Inclusive] {
                let mut sets: Vec<Vec<usize>> = idx
                    .iter()
                    .map(|(_, ix)| {
                        let mut rows: Vec<usize> = ix
                            .range_sq(&q, sq_bound, bound, Some(qi))
                            .into_iter()
                            .map(|h| h.row)
                            .collect();
                        rows.sort_unstable();
                        rows
                    })
                    .collect();
                let first = sets.remove(0);
                for s in sets {
                    assert_eq!(first, s, "range sets differ");
                }
            }
        }
    }

    #[test]
    fn delete_reports_double_delete() {
        let data = random_data(20, 2, 2, 1);
        for (_, mut ix) in backends(&data) {
            assert!(ix.delete(3));
            assert!(!ix.delete(3));
            assert!(!ix.is_alive(3));
            assert_eq!(ix.n_alive(), 19);
            assert_eq!(ix.n_rows(), 20);
        }
    }

    #[test]
    fn deleted_rows_never_returned() {
        let data = random_data(50, 2, 2, 2);
        for (name, mut ix) in backends(&data) {
            for r in 0..25 {
                ix.delete(r * 2);
            }
            let hits = ix.k_nearest_sq(data.row(0), 50, None);
            assert_eq!(hits.len(), 25, "{name}");
            assert!(hits.iter().all(|h| h.row % 2 == 1), "{name}");
        }
    }

    #[test]
    fn k_zero_and_oversized_k() {
        let data = random_data(10, 2, 2, 3);
        for (_, ix) in backends(&data) {
            assert!(ix.k_nearest_sq(data.row(0), 0, None).is_empty());
            assert_eq!(ix.k_nearest_sq(data.row(0), 99, Some(0)).len(), 9);
        }
    }

    #[test]
    fn distance_ordered_yields_full_sorted_sequence_on_every_backend() {
        for (n, p) in [(1usize, 2usize), (40, 2), (130, 5), (90, 40)] {
            let data = random_data(n, p, 3, 7 + n as u64);
            let mut alive = vec![true; n];
            let mut idx = backends(&data);
            let mut rng = rng_from_seed(3);
            for _ in 0..n / 4 {
                let r = rng.gen_range(0..n);
                if alive[r] && alive.iter().filter(|&&a| a).count() > 2 {
                    alive[r] = false;
                    for (_, ix) in idx.iter_mut() {
                        ix.delete(r);
                    }
                }
            }
            let q = data.row(rng.gen_range(0..n)).to_vec();
            let n_alive = alive.iter().filter(|&&a| a).count();
            let want = ref_k_nearest(&data, &alive, &q, n_alive, None);
            let mut sequences: Vec<Vec<SqNeighbor>> = Vec::new();
            for (name, ix) in idx.iter() {
                let got: Vec<SqNeighbor> = ix.distance_ordered(&q).collect();
                assert_eq!(got.len(), want.len(), "{name} n={n} p={p}");
                for (g, w) in got.iter().zip(want.iter()) {
                    assert_eq!(g.row, w.row, "{name} n={n} p={p}");
                }
                // A short prefix (the peel consumer's pattern) agrees too.
                let prefix: Vec<usize> = ix.distance_ordered(&q).take(5).map(|h| h.row).collect();
                let want_prefix: Vec<usize> = want.iter().take(5).map(|h| h.row).collect();
                assert_eq!(prefix, want_prefix, "{name} prefix");
                sequences.push(got);
            }
            // Distances are bit-identical across backends (the width-keyed
            // kernel contract), though not necessarily vs the sequential
            // reference kernel at p >= LANE_WIDTH.
            for pair in sequences.windows(2) {
                for (a, b) in pair[0].iter().zip(pair[1].iter()) {
                    assert_eq!(a.sq_dist.to_bits(), b.sq_dist.to_bits(), "n={n} p={p}");
                }
            }
        }
    }

    #[test]
    fn distance_ordered_is_usable_through_dyn() {
        let data = random_data(50, 3, 2, 11);
        let ix: Box<dyn NeighborIndex> = GranulationBackend::KdTree.build(&data);
        let rows: Vec<usize> = ix.distance_ordered(data.row(0)).map(|h| h.row).collect();
        assert_eq!(rows.len(), 50);
        assert_eq!(rows[0], 0, "self is nearest to itself");
    }

    #[test]
    fn assign_to_nearest_matches_per_pair_argmin() {
        for p in [1usize, 2, 3, 7, 16] {
            let data = random_data(300, p, 2, 100 + p as u64);
            let cents = random_data(6, p, 2, 200 + p as u64);
            let mut out = vec![u32::MAX; 300];
            assign_to_nearest(data.features(), cents.features(), p, &mut out);
            for (r, &got) in out.iter().enumerate() {
                let mut best = 0usize;
                let mut best_d = f64::INFINITY;
                for c in 0..6 {
                    let d = sq_euclidean(data.row(r), cents.row(c));
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
                assert_eq!(got as usize, best, "p={p} row {r}");
            }
            // Trait-default routing is the same function.
            let ix = GranulationBackend::VpTree.build(&data);
            let mut via_trait = vec![u32::MAX; 300];
            ix.assign_to_centroids(data.features(), cents.features(), p, &mut via_trait);
            assert_eq!(out, via_trait, "p={p}");
        }
    }

    #[test]
    fn assign_to_nearest_ties_break_toward_smaller_centroid() {
        // Two identical centroids: every point must pick centroid 0.
        let points = [0.0, 0.0, 3.0, 4.0, -1.0, 2.5];
        let cents = [1.0, 1.0, 1.0, 1.0];
        let mut out = [9u32; 3];
        assign_to_nearest(&points, &cents, 2, &mut out);
        assert_eq!(out, [0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "points must be exactly")]
    fn assign_to_nearest_rejects_ragged_points() {
        let mut out = [0u32; 2];
        assign_to_nearest(&[0.0; 5], &[0.0; 2], 2, &mut out);
    }

    #[test]
    fn backend_parsing_and_auto_resolution() {
        assert_eq!(
            GranulationBackend::from_str_opt("KD-Tree"),
            Some(GranulationBackend::KdTree)
        );
        assert_eq!(
            GranulationBackend::from_str_opt("vp"),
            Some(GranulationBackend::VpTree)
        );
        assert_eq!(GranulationBackend::from_str_opt("quantum"), None);
        assert_eq!(
            GranulationBackend::Auto.resolve(100, 2),
            GranulationBackend::Brute
        );
        assert_eq!(
            GranulationBackend::Auto.resolve(10_000, 2),
            GranulationBackend::KdTree
        );
        assert_eq!(
            GranulationBackend::Auto.resolve(10_000, 128),
            GranulationBackend::VpTree
        );
        assert_eq!(
            GranulationBackend::Brute.resolve(10_000, 128),
            GranulationBackend::Brute
        );
        assert_eq!(format!("{}", GranulationBackend::KdTree), "kdtree");
    }
}
