//! Distance kernels: runtime-dispatched SIMD with deterministic
//! lane-ordered accumulation.
//!
//! The paper uses Euclidean distance throughout (`△(·,⋆)` in Eq. 1). We keep
//! the squared form available because every comparison-only consumer (nearest
//! neighbour search, radius checks) can avoid the `sqrt`.
//!
//! # Kernel tiers
//!
//! `sq_euclidean` is the innermost loop of every neighbour backend, GB-kNN
//! prediction, and every sampler's NN scan, so it is implemented three times
//! and the fastest host-supported variant is selected **once** per process
//! via [`is_x86_feature_detected!`]:
//!
//! | tier               | selected when                                      |
//! |--------------------|----------------------------------------------------|
//! | [`Kernel::Avx2`]   | x86_64 with AVX2 (4 × f64 per vector op)           |
//! | [`Kernel::Sse2`]   | x86_64 without AVX2 (2 × f64, two accumulators)    |
//! | [`Kernel::Scalar`] | any other arch, or forced via `GB_SIMD=scalar`     |
//!
//! Set the `GB_SIMD` environment variable to `scalar` (or `off`/`0`) before
//! the first distance call to force the scalar tier — CI runs the whole test
//! suite once per tier so the fallback can never silently rot. `sse2` and
//! `avx2` are also accepted (each silently degrades to the best available
//! tier when unsupported); any other value means auto-detect.
//!
//! # Determinism: a width-keyed contract around one accumulation tree
//!
//! Floating-point addition is not associative, so a naive "sum in a
//! different order when vectorized" kernel would break the workspace's
//! cross-backend bit-identity property tests the moment two consumers mix
//! tiers (or two hosts detect different CPUs). Every vectorizable kernel
//! therefore commits to the **same** summation tree:
//!
//! 1. four strided lane accumulators: `lane[j] += d_i²` for `i ≡ j (mod 4)`
//!    over the length-4-aligned prefix (AVX2 holds them in one 256-bit
//!    register, SSE2 in two 128-bit registers, the scalar tier in a
//!    4-element array — the *arithmetic* is identical);
//! 2. the `len % 4` tail elements fold into lanes `0..len % 4` in order;
//! 3. final reduction `(lane0 + lane2) + (lane1 + lane3)`.
//!
//! IEEE-754 ops are exactly rounded, so identical operand sequences give
//! bit-identical results on every tier and every host. FMA is deliberately
//! **not** used: fusing `d*d + acc` changes rounding and would split the
//! tiers.
//!
//! Rows narrower than [`LANE_WIDTH`] have no vector work at all, and there
//! the deciding cost is code shape, not arithmetic: measured on the RD-GBG
//! hot path at p = 2, anything heavier than a bare sequential loop in the
//! inline per-pair kernel (lane arrays, dispatch branches, even a
//! never-taken fallback call edge) costs 13–40%. The contract is therefore
//! **keyed on row width**:
//!
//! * `p < LANE_WIDTH` — every path sums in **sequential order**:
//!   [`sq_euclidean`], [`sq_euclidean_dispatched`], and
//!   [`sq_euclidean_one_to_many`] (all tiers) agree bit-for-bit;
//! * `p ≥ LANE_WIDTH` — every *hot scan* path uses the **lane tree**:
//!   [`sq_euclidean_dispatched`], [`sq_euclidean_one_to_many`], and all
//!   explicit tiers agree bit-for-bit (the inline [`sq_euclidean`] stays
//!   sequential; scan code never mixes it into lane-tree comparisons at
//!   these widths).
//!
//! Distances are only ever *compared* at one fixed width, so each width
//! class being internally bit-identical is exactly what the cross-backend
//! property tests need — and `tests/kernel_parity.rs` drives the whole
//! contract through odd lengths, remainder tails, subnormals, and ±0.0.
//! [`sq_euclidean_naive`] names the sequential order explicitly for tests;
//! the two orders coincide bitwise for `p ≤ 2`.
//!
//! # Invariants (no silent truncation)
//!
//! The pairwise kernels debug-assert equal lengths (in release the shorter
//! slice wins, as before the SIMD work). The batched
//! [`sq_euclidean_one_to_many`] boundary is where mismatches are actually
//! caught: it always asserts the exact stride relation
//! `block.len() == query.len() * out.len()`, so a ragged block can never
//! silently truncate into wrong distances.

use std::sync::OnceLock;

/// f64 lanes per vector op (AVX2 register width). Rows narrower than this
/// have no vector work at all — scan loops use it to pick the inline
/// per-pair kernel over a pointless batched call.
pub const LANE_WIDTH: usize = 4;

/// A distance-kernel tier. See the module docs for the selection rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// AVX2: 4 × f64 lanes in one 256-bit accumulator.
    Avx2,
    /// SSE2: 2 × f64 lanes in each of two 128-bit accumulators.
    Sse2,
    /// Portable scalar tier with the same 4-lane accumulation tree.
    Scalar,
}

impl Kernel {
    /// CLI/env spelling of the tier.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Avx2 => "avx2",
            Kernel::Sse2 => "sse2",
            Kernel::Scalar => "scalar",
        }
    }

    /// Every tier runnable on this host, fastest first. Always ends with
    /// [`Kernel::Scalar`].
    #[must_use]
    pub fn available() -> Vec<Kernel> {
        let mut tiers = Vec::with_capacity(3);
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx2") {
                tiers.push(Kernel::Avx2);
            }
            tiers.push(Kernel::Sse2);
        }
        tiers.push(Kernel::Scalar);
        tiers
    }

    /// Detects the preferred tier for this host, honouring the `GB_SIMD`
    /// override. Does not cache; see [`active_kernel`] for the process-wide
    /// choice.
    #[must_use]
    pub fn detect() -> Kernel {
        let forced = std::env::var("GB_SIMD").unwrap_or_default();
        match forced.to_ascii_lowercase().as_str() {
            "scalar" | "off" | "0" => return Kernel::Scalar,
            "sse2" => {
                #[cfg(target_arch = "x86_64")]
                return Kernel::Sse2;
                #[cfg(not(target_arch = "x86_64"))]
                return Kernel::Scalar;
            }
            "avx2" => {
                // Unsupported override degrades to the best available
                // tier, exactly like auto-detection.
                return *Kernel::available().first().expect("non-empty tier list");
            }
            _ => {}
        }
        *Kernel::available().first().expect("non-empty tier list")
    }
}

/// The kernel tier every dispatched entry point uses, selected once per
/// process (first call wins; `GB_SIMD` must be set before that).
#[must_use]
pub fn active_kernel() -> Kernel {
    static ACTIVE: OnceLock<Kernel> = OnceLock::new();
    *ACTIVE.get_or_init(Kernel::detect)
}

/// Squared Euclidean distance between two equal-length vectors — the
/// sequential per-pair kernel, fully inline.
///
/// This is the *sub-lane* half of the workspace's determinism contract
/// (see the module docs): rows narrower than [`LANE_WIDTH`] are summed in
/// sequential order by every path, and this plain loop is that order. The
/// body is deliberately a bare zip loop — no dispatch branch, no call
/// edge, no panic path. Measured on the RD-GBG hot path at p = 2, every
/// "smarter" body (lane-array forms, slice-pattern ladders, an outlined
/// fallback call) cost 13–40%: the call edge alone steals registers from
/// the caller's loop even when never taken.
///
/// Hot per-pair call sites on rows ≥ [`LANE_WIDTH`] must use
/// [`sq_euclidean_dispatched`] (lane-tree arithmetic, SIMD when
/// available) so their bits match the batched scans; blocked scans use
/// [`sq_euclidean_one_to_many`].
///
/// # Panics
/// Debug-asserts equal lengths (documented invariant: callers in this
/// workspace always pass rows of a single dataset); in release the shorter
/// length wins, exactly like the pre-SIMD kernel. Batched callers get the
/// full stride check at the [`sq_euclidean_one_to_many`] boundary.
#[inline]
#[must_use]
pub fn sq_euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Per-pair squared Euclidean via the process-wide [`active_kernel`] tier.
/// For per-pair call sites on rows ≥ [`LANE_WIDTH`] (vantage-point
/// distances, the sparse arms of the hybrid scans) where bits must match
/// the batched lane-tree kernels; sub-lane rows fall back to
/// [`sq_euclidean`]'s sequential order, completing the width-keyed
/// contract — for any row width, this function, [`sq_euclidean_one_to_many`]
/// and the scan paths built on them all agree bit-for-bit.
///
/// # Panics
/// Same contract as [`sq_euclidean`], except that a shorter `b` panics
/// (bounds check) instead of truncating when `a.len() >= LANE_WIDTH`.
#[must_use]
pub fn sq_euclidean_dispatched(a: &[f64], b: &[f64]) -> f64 {
    if a.len() < LANE_WIDTH {
        debug_assert_eq!(a.len(), b.len());
        return sq_euclidean(a, b);
    }
    sq_euclidean_with(active_kernel(), a, b)
}

/// [`sq_euclidean`] via an explicit kernel tier (parity tests, benches).
///
/// # Panics
/// Same contract as [`sq_euclidean`].
#[inline]
#[must_use]
pub fn sq_euclidean_with(kernel: Kernel, a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let b = &b[..a.len()];
    match kernel {
        // The feature re-check keeps this safe for arbitrary caller-chosen
        // tiers (not just detected ones); `is_x86_feature_detected!`
        // caches, and an unsupported request degrades to SSE2 — which is
        // bit-identical, so results are unaffected.
        #[cfg(target_arch = "x86_64")]
        // SAFETY: AVX2 verified on this host; slices are equal-length.
        Kernel::Avx2 if is_x86_feature_detected!("avx2") => unsafe { x86::sq_euclidean_avx2(a, b) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86_64 baseline.
        Kernel::Avx2 | Kernel::Sse2 => unsafe { x86::sq_euclidean_sse2(a, b) },
        _ => sq_euclidean_scalar(a, b),
    }
}

/// Distances from one query row to every row of a contiguous row-major
/// block, written into `out` (one `f64` per row). This is the batched form
/// the hot scans use: tier dispatch happens once per call and the block
/// streams linearly through cache. Results are bit-identical to
/// [`sq_euclidean_dispatched`] per row (sequential order below
/// [`LANE_WIDTH`], the lane tree at or above it).
///
/// # Panics
/// Always (release included) asserts the exact stride relation
/// `block.len() == query.len() * out.len()` — ragged inputs panic instead
/// of silently truncating.
#[inline]
pub fn sq_euclidean_one_to_many(query: &[f64], block: &[f64], out: &mut [f64]) {
    sq_euclidean_one_to_many_with(active_kernel(), query, block, out);
}

/// [`sq_euclidean_one_to_many`] via an explicit kernel tier.
///
/// # Panics
/// Same stride contract as [`sq_euclidean_one_to_many`].
pub fn sq_euclidean_one_to_many_with(
    kernel: Kernel,
    query: &[f64],
    block: &[f64],
    out: &mut [f64],
) {
    let p = query.len();
    assert_eq!(
        block.len(),
        p * out.len(),
        "row-major block must be exactly out.len() rows of query.len() features \
         (block {} vs {} rows x {} features)",
        block.len(),
        out.len(),
        p
    );
    if p == 0 {
        out.fill(0.0);
        return;
    }
    if p < LANE_WIDTH {
        // Sub-lane rows have no vector work for any tier; every tier uses
        // the sequential per-pair kernel so the sub-lane half of the
        // width-keyed contract holds for batched calls too.
        for (row, d) in block.chunks_exact(p).zip(out.iter_mut()) {
            *d = sq_euclidean(query, row);
        }
        return;
    }
    match kernel {
        // Feature re-check as in `sq_euclidean_with`: safe for arbitrary
        // caller-chosen tiers, degrading to the bit-identical SSE2 kernel.
        #[cfg(target_arch = "x86_64")]
        // SAFETY: AVX2 verified on this host; the stride assertion above
        // guarantees in-bounds row slices.
        Kernel::Avx2 if is_x86_feature_detected!("avx2") => unsafe {
            x86::one_to_many_avx2(query, block, out)
        },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86_64 baseline.
        Kernel::Avx2 | Kernel::Sse2 => unsafe { x86::one_to_many_sse2(query, block, out) },
        _ => {
            for (row, d) in block.chunks_exact(p).zip(out.iter_mut()) {
                *d = sq_euclidean_scalar(query, row);
            }
        }
    }
}

/// The scalar tier: portable, and **the** reference the SIMD tiers must
/// match bit-for-bit. Uses the 4-lane strided accumulation tree described
/// in the module docs.
///
/// Written to be free of call edges, bounds checks, and panic paths so it
/// inlines cleanly into hot scan loops (slice patterns for the sub-lane
/// forms, `chunks_exact` + `zip` for the rest). The sub-lane hardcoded
/// forms fold the zero lanes away, which is exact — a squared difference
/// is never `-0.0`, and `x + 0.0 == x` holds bitwise for everything else —
/// so they are bit-identical to the full tree and to the SIMD tiers
/// (property-tested). Mismatched lengths truncate to the shorter slice,
/// like the pre-SIMD kernel (equal lengths are the documented invariant).
#[inline]
#[must_use]
pub fn sq_euclidean_scalar(a: &[f64], b: &[f64]) -> f64 {
    // Lane tree with the zero lanes folded: (l0 + l2) + (l1 + l3).
    match (a, b) {
        ([], _) | (_, []) => return 0.0,
        ([a0], [b0, ..]) | ([a0, ..], [b0]) => {
            let d = a0 - b0;
            return d * d;
        }
        ([a0, a1], [b0, b1, ..]) | ([a0, a1, ..], [b0, b1]) => {
            let d0 = a0 - b0;
            let d1 = a1 - b1;
            return d0 * d0 + d1 * d1;
        }
        ([a0, a1, a2], [b0, b1, b2, ..]) | ([a0, a1, a2, ..], [b0, b1, b2]) => {
            let d0 = a0 - b0;
            let d1 = a1 - b1;
            let d2 = a2 - b2;
            return (d0 * d0 + d2 * d2) + d1 * d1;
        }
        _ => {}
    }
    let mut lanes = [0.0f64; 4];
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    for (ka, kb) in (&mut ca).zip(&mut cb) {
        // One step per 256-bit vector op: four independent chains the
        // compiler keeps in registers (and may pack) even without SIMD.
        for (lane, (x, y)) in lanes.iter_mut().zip(ka.iter().zip(kb.iter())) {
            let d = x - y;
            *lane += d * d;
        }
    }
    // `len % 4` tail elements fold into lanes 0..len % 4, in order.
    for (lane, (x, y)) in lanes
        .iter_mut()
        .zip(ca.remainder().iter().zip(cb.remainder().iter()))
    {
        let d = x - y;
        *lane += d * d;
    }
    (lanes[0] + lanes[2]) + (lanes[1] + lanes[3])
}

/// Sequential left-to-right reference kernel (the pre-SIMD implementation).
/// Kept as the test oracle: the lane-ordered kernels agree with it within a
/// scaled-ULP tolerance, never necessarily bit-for-bit.
#[must_use]
pub fn sq_euclidean_naive(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! x86_64 tiers. Every function mirrors `sq_euclidean_scalar`'s
    //! accumulation tree exactly — see the module docs for why.
    use std::arch::x86_64::{
        __m256d, _mm256_add_pd, _mm256_loadu_pd, _mm256_mul_pd, _mm256_setzero_pd,
        _mm256_storeu_pd, _mm256_sub_pd, _mm_add_pd, _mm_loadu_pd, _mm_mul_pd, _mm_setzero_pd,
        _mm_storeu_pd, _mm_sub_pd,
    };

    /// Folds the `len % 4` tail into the lane array (same order as the
    /// scalar tier) and applies the final reduction.
    #[inline(always)]
    fn finish(mut lanes: [f64; 4], a: &[f64], b: &[f64], chunks: usize) -> f64 {
        let n = a.len();
        for (j, lane) in lanes.iter_mut().enumerate().take(n % 4) {
            let i = 4 * chunks + j;
            let d = a[i] - b[i];
            *lane += d * d;
        }
        (lanes[0] + lanes[2]) + (lanes[1] + lanes[3])
    }

    /// # Safety
    /// Caller guarantees AVX2 support and `b.len() >= a.len()`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sq_euclidean_avx2(a: &[f64], b: &[f64]) -> f64 {
        let chunks = a.len() / 4;
        let acc = avx2_accumulate(a.as_ptr(), b.as_ptr(), chunks);
        let mut lanes = [0.0f64; 4];
        _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
        finish(lanes, a, b, chunks)
    }

    /// Lane accumulation over the aligned prefix: `chunks` vector steps of
    /// sub → mul → add (no FMA; it would change rounding vs. scalar).
    ///
    /// # Safety
    /// Caller guarantees AVX2 support and `4 * chunks` readable f64s at
    /// both pointers.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn avx2_accumulate(a: *const f64, b: *const f64, chunks: usize) -> __m256d {
        let mut acc = _mm256_setzero_pd();
        for c in 0..chunks {
            let va = _mm256_loadu_pd(a.add(4 * c));
            let vb = _mm256_loadu_pd(b.add(4 * c));
            let d = _mm256_sub_pd(va, vb);
            acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
        }
        acc
    }

    /// # Safety
    /// Caller guarantees `block.len() == query.len() * out.len()` and AVX2
    /// support.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn one_to_many_avx2(query: &[f64], block: &[f64], out: &mut [f64]) {
        let p = query.len();
        for (r, d) in out.iter_mut().enumerate() {
            let row = &block[r * p..(r + 1) * p];
            *d = sq_euclidean_avx2(query, row);
        }
    }

    /// # Safety
    /// `b.len() >= a.len()` (SSE2 is part of the x86_64 baseline).
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn sq_euclidean_sse2(a: &[f64], b: &[f64]) -> f64 {
        let chunks = a.len() / 4;
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        // Two 128-bit accumulators model the four lanes: acc01 = lanes
        // {0, 1}, acc23 = lanes {2, 3}.
        let mut acc01 = _mm_setzero_pd();
        let mut acc23 = _mm_setzero_pd();
        for c in 0..chunks {
            let d0 = _mm_sub_pd(_mm_loadu_pd(ap.add(4 * c)), _mm_loadu_pd(bp.add(4 * c)));
            acc01 = _mm_add_pd(acc01, _mm_mul_pd(d0, d0));
            let d1 = _mm_sub_pd(
                _mm_loadu_pd(ap.add(4 * c + 2)),
                _mm_loadu_pd(bp.add(4 * c + 2)),
            );
            acc23 = _mm_add_pd(acc23, _mm_mul_pd(d1, d1));
        }
        let mut lanes = [0.0f64; 4];
        _mm_storeu_pd(lanes.as_mut_ptr(), acc01);
        _mm_storeu_pd(lanes.as_mut_ptr().add(2), acc23);
        finish(lanes, a, b, chunks)
    }

    /// # Safety
    /// Caller guarantees `block.len() == query.len() * out.len()`.
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn one_to_many_sse2(query: &[f64], block: &[f64], out: &mut [f64]) {
        let p = query.len();
        for (r, d) in out.iter_mut().enumerate() {
            let row = &block[r * p..(r + 1) * p];
            *d = sq_euclidean_sse2(query, row);
        }
    }
}

/// Euclidean distance between two equal-length vectors.
#[inline]
#[must_use]
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    sq_euclidean(a, b).sqrt()
}

/// Heterogeneous value-difference used by SMOTENC-style samplers: Euclidean
/// over numeric columns plus a fixed `categorical_penalty` for every
/// categorical column whose codes differ. Not on the hot path — stays a
/// sequential scalar loop (its only consumers compare values produced by
/// this same function).
#[must_use]
pub fn mixed_distance(a: &[f64], b: &[f64], categorical: &[bool], categorical_penalty: f64) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), categorical.len());
    let mut acc = 0.0;
    for ((x, y), &is_cat) in a.iter().zip(b.iter()).zip(categorical.iter()) {
        if is_cat {
            if (x - y).abs() > f64::EPSILON {
                acc += categorical_penalty * categorical_penalty;
            }
        } else {
            let d = x - y;
            acc += d * d;
        }
    }
    acc.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_matches_hand_computation() {
        let a = [0.0, 3.0];
        let b = [4.0, 0.0];
        assert!((euclidean(&a, &b) - 5.0).abs() < 1e-12);
        assert!((sq_euclidean(&a, &b) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn zero_distance_to_self() {
        let a = [1.5, -2.0, 7.0];
        assert_eq!(euclidean(&a, &a), 0.0);
    }

    #[test]
    fn every_available_tier_matches_scalar_bits() {
        let a: Vec<f64> = (0..23).map(|i| (i as f64).sin() * 3.0).collect();
        let b: Vec<f64> = (0..23).map(|i| (i as f64).cos() * -2.0).collect();
        let want = sq_euclidean_scalar(&a, &b);
        for tier in Kernel::available() {
            let got = sq_euclidean_with(tier, &a, &b);
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "{} disagrees with scalar",
                tier.name()
            );
        }
    }

    #[test]
    fn one_to_many_matches_per_pair_bits() {
        let p = 7;
        let query: Vec<f64> = (0..p).map(|i| i as f64 * 0.3 - 1.0).collect();
        let block: Vec<f64> = (0..5 * p).map(|i| (i as f64 * 0.71).fract()).collect();
        let mut out = vec![0.0; 5];
        for tier in Kernel::available() {
            sq_euclidean_one_to_many_with(tier, &query, &block, &mut out);
            for (r, &d) in out.iter().enumerate() {
                let want = sq_euclidean_with(tier, &query, &block[r * p..(r + 1) * p]);
                assert_eq!(d.to_bits(), want.to_bits(), "{} row {r}", tier.name());
            }
        }
    }

    #[test]
    #[should_panic(expected = "row-major block")]
    fn one_to_many_rejects_ragged_block() {
        let mut out = vec![0.0; 2];
        sq_euclidean_one_to_many(&[1.0, 2.0], &[0.0; 3], &mut out);
    }

    #[test]
    fn one_to_many_zero_width_rows() {
        let mut out = vec![9.0; 4];
        sq_euclidean_one_to_many(&[], &[], &mut out);
        assert_eq!(out, vec![0.0; 4]);
    }

    #[test]
    fn lane_tree_matches_naive_within_tolerance() {
        for n in [1usize, 2, 3, 4, 5, 7, 8, 15, 64, 257] {
            let a: Vec<f64> = (0..n)
                .map(|i| ((i * 37) % 19) as f64 * 0.37 - 3.0)
                .collect();
            let b: Vec<f64> = (0..n)
                .map(|i| ((i * 11) % 23) as f64 * -0.21 + 1.0)
                .collect();
            let lanes = sq_euclidean_scalar(&a, &b);
            let naive = sq_euclidean_naive(&a, &b);
            let tol = f64::EPSILON * naive * (n as f64 + 4.0) + f64::MIN_POSITIVE;
            assert!(
                (lanes - naive).abs() <= tol,
                "n={n}: lanes {lanes} vs naive {naive}"
            );
        }
    }

    #[test]
    fn detection_reports_a_host_tier() {
        let k = active_kernel();
        assert!(Kernel::available().contains(&k), "{k:?}");
        assert!(!k.name().is_empty());
    }

    #[test]
    fn mixed_distance_counts_category_mismatches() {
        let a = [1.0, 0.0, 2.0];
        let b = [1.0, 1.0, 3.0];
        let cat = [false, true, true];
        // numeric part identical; two categorical mismatches of penalty 1.
        let d = mixed_distance(&a, &b, &cat, 1.0);
        assert!((d - (2.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn mixed_distance_equal_categories_costs_nothing() {
        let a = [1.0, 5.0];
        let b = [2.0, 5.0];
        let cat = [false, true];
        assert!((mixed_distance(&a, &b, &cat, 10.0) - 1.0).abs() < 1e-12);
    }
}
