//! Distance kernels.
//!
//! The paper uses Euclidean distance throughout (`△(·,⋆)` in Eq. 1). We keep
//! the squared form available because every comparison-only consumer (nearest
//! neighbour search, radius checks) can avoid the `sqrt`.

/// Squared Euclidean distance between two equal-length vectors.
///
/// # Panics
/// Debug-asserts equal lengths; in release, the shorter length wins (callers
/// in this workspace always pass rows of a single dataset).
#[inline]
#[must_use]
pub fn sq_euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Euclidean distance between two equal-length vectors.
#[inline]
#[must_use]
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    sq_euclidean(a, b).sqrt()
}

/// Heterogeneous value-difference used by SMOTENC-style samplers: Euclidean
/// over numeric columns plus a fixed `categorical_penalty` for every
/// categorical column whose codes differ.
#[must_use]
pub fn mixed_distance(a: &[f64], b: &[f64], categorical: &[bool], categorical_penalty: f64) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), categorical.len());
    let mut acc = 0.0;
    for ((x, y), &is_cat) in a.iter().zip(b.iter()).zip(categorical.iter()) {
        if is_cat {
            if (x - y).abs() > f64::EPSILON {
                acc += categorical_penalty * categorical_penalty;
            }
        } else {
            let d = x - y;
            acc += d * d;
        }
    }
    acc.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_matches_hand_computation() {
        let a = [0.0, 3.0];
        let b = [4.0, 0.0];
        assert!((euclidean(&a, &b) - 5.0).abs() < 1e-12);
        assert!((sq_euclidean(&a, &b) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn zero_distance_to_self() {
        let a = [1.5, -2.0, 7.0];
        assert_eq!(euclidean(&a, &a), 0.0);
    }

    #[test]
    fn mixed_distance_counts_category_mismatches() {
        let a = [1.0, 0.0, 2.0];
        let b = [1.0, 1.0, 3.0];
        let cat = [false, true, true];
        // numeric part identical; two categorical mismatches of penalty 1.
        let d = mixed_distance(&a, &b, &cat, 1.0);
        assert!((d - (2.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn mixed_distance_equal_categories_costs_nothing() {
        let a = [1.0, 5.0];
        let b = [2.0, 5.0];
        let cat = [false, true];
        assert!((mixed_distance(&a, &b, &cat, 10.0) - 1.0).abs() < 1e-12);
    }
}
