//! Distance kernels: runtime-dispatched SIMD with deterministic
//! lane-ordered accumulation — **kernel contract v2**.
//!
//! The paper uses Euclidean distance throughout (`△(·,⋆)` in Eq. 1). We keep
//! the squared form available because every comparison-only consumer (nearest
//! neighbour search, radius checks) can avoid the `sqrt`. Contract v2 opens
//! two more metrics ([`Metric::Manhattan`], [`Metric::Cosine`]) and a blocked
//! many-to-many kernel ([`sq_dist_block`]) on top of the PR-3 one-to-many
//! layer.
//!
//! # Kernel tiers
//!
//! The per-pair kernel is the innermost loop of every neighbour backend,
//! GB-kNN prediction, and every sampler's NN scan, so it is implemented once
//! per tier and the fastest host-supported variant is selected **once** per
//! process via [`is_x86_feature_detected!`]:
//!
//! | tier               | selected when                                       |
//! |--------------------|-----------------------------------------------------|
//! | [`Kernel::Fma`]    | x86_64 with AVX2 + FMA (4 × f64 fused per vector op)|
//! | [`Kernel::Avx2`]   | compat spelling of the same 256-bit fused tier      |
//! | [`Kernel::Sse2`]   | x86_64 with FMA but not AVX2 (2 × 128-bit fused)    |
//! | [`Kernel::Scalar`] | any other host, or forced via `GB_SIMD=scalar`      |
//!
//! Set the `GB_SIMD` environment variable before the first distance call to
//! force a tier: `fma`, `avx2`, `sse2`, `scalar` (aliases `off`, `0`), or
//! `auto`/unset for detection. A *known but unsupported* tier degrades to the
//! best available one (results are unaffected — all tiers are bit-identical);
//! an **unknown value is an error** ([`validate_simd_env`] at CLI/server
//! startup, a panic from [`active_kernel`] as the backstop). CI runs the test
//! suite once per tier so no fallback can silently rot.
//!
//! # Determinism: a (width, contract-version)-keyed accumulation tree
//!
//! Floating-point addition is not associative, so a naive "sum in a
//! different order when vectorized" kernel would break the workspace's
//! cross-backend bit-identity property tests the moment two consumers mix
//! tiers (or two hosts detect different CPUs). Every vectorizable kernel
//! therefore commits to the **same** summation tree, versioned as
//! [`CONTRACT_VERSION`] = 2:
//!
//! 1. four strided lane accumulators updated with a **fused** step:
//!    `lane[j] = fma(d_i, d_i, lane[j])` for `i ≡ j (mod 4)` over the
//!    length-4-aligned prefix (the FMA tier holds them in one 256-bit
//!    register, SSE2 in two 128-bit registers, the scalar tier in a
//!    4-element array via [`f64::mul_add`] — the *arithmetic* is identical
//!    because IEEE-754 `fma` is correctly rounded everywhere);
//! 2. the `len % 4` tail elements fold into lanes `0..len % 4` in order,
//!    with the same fused step;
//! 3. final reduction `(lane0 + lane2) + (lane1 + lane3)`.
//!
//! This is the v1 tree with the `mul → add` pair fused: v2 re-keys the
//! bit-identity contract to (width, contract-version) and moves **all width
//! classes of every tier to the fused tree together** — the contract bump is
//! deliberate, and the CI perf gate is re-baselined against it. On x86_64
//! without hardware FMA every tier (including a forced `sse2`/`avx2`/`fma`)
//! resolves to the scalar `mul_add` tree, which libm evaluates with the same
//! correct rounding — slow, but still bit-identical.
//!
//! Rows narrower than [`LANE_WIDTH`] have no vector work at all, and there
//! the deciding cost is code shape, not arithmetic: measured on the RD-GBG
//! hot path at p = 2, anything heavier than a bare sequential loop in the
//! inline per-pair kernel (lane arrays, dispatch branches, even a
//! never-taken fallback call edge) costs 13–40%. The contract therefore
//! stays **keyed on row width**, and the sub-lane class keeps v1's exact
//! unfused sequential sum:
//!
//! * `p < LANE_WIDTH` — every path sums in **sequential order** (`acc += d²`,
//!   unfused): [`sq_euclidean`], [`sq_euclidean_dispatched`],
//!   [`sq_euclidean_one_to_many`], and [`sq_dist_block`] (all tiers) agree
//!   bit-for-bit;
//! * `p ≥ LANE_WIDTH` — every *hot scan* path uses the **fused lane tree**:
//!   [`sq_euclidean_dispatched`], [`sq_euclidean_one_to_many`],
//!   [`sq_dist_block`], and all explicit tiers agree bit-for-bit (the inline
//!   [`sq_euclidean`] stays sequential; scan code never mixes it into
//!   lane-tree comparisons at these widths).
//!
//! The blocked kernel is bit-identical to repeated one-to-many calls by
//! construction: each accumulator of the Q×R register tile executes exactly
//! the per-pair chunk sequence, so blocking changes instruction-level
//! parallelism and cache behaviour, never arithmetic.
//!
//! Distances are only ever *compared* at one fixed width, so each width
//! class being internally bit-identical is exactly what the cross-backend
//! property tests need — and `tests/kernel_parity.rs` drives the whole
//! contract through odd lengths, remainder tails, subnormals, and ±0.0.
//! [`sq_euclidean_naive`] names the sequential order explicitly for tests.
//!
//! # Metrics
//!
//! [`Metric`] threads through kernel dispatch, `NeighborIndex` builds, and
//! GB-kNN. Each metric defines a *kernel value* (what the hot loops compute
//! and compare) and a *rank value* (`Metric::rank_of`, the human-facing
//! distance):
//!
//! | metric                  | kernel value                  | rank value      |
//! |-------------------------|-------------------------------|-----------------|
//! | [`Metric::SqEuclidean`] | `Σ d²`                        | `sqrt` (L2)     |
//! | [`Metric::Manhattan`]   | `Σ abs(d)`                    | identity (L1)   |
//! | [`Metric::Cosine`]      | `Σ d²` on L2-normalized rows  | `sqrt` (chord)  |
//!
//! Manhattan reuses the same lane tree with `abs` in place of the fused
//! square (`abs`/`add` are exact-ordered, so all tiers are bit-identical by
//! the same argument). Cosine is implemented as squared Euclidean over
//! [`l2_normalize_rows`]-normalized data: the chord distance
//! `‖â − b̂‖ = sqrt(2 − 2cosθ)` is strictly monotone in cosine distance, so
//! neighbour rankings are exact and the triangle inequality holds for index
//! pruning. Zero rows normalize to themselves (deterministically).
//!
//! # Invariants (no silent truncation)
//!
//! The pairwise kernels debug-assert equal lengths (in release the shorter
//! slice wins, as before the SIMD work). The batched boundaries are where
//! mismatches are actually caught: [`sq_euclidean_one_to_many`] always
//! asserts `block.len() == query.len() * out.len()`, and [`sq_dist_block`]
//! asserts `p > 0`, both strides divisible by `p`, and
//! `out.len() == n_queries * n_rows` — ragged inputs panic instead of
//! silently truncating.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// f64 lanes per vector op (256-bit register width). Rows narrower than this
/// have no vector work at all — scan loops use it to pick the inline
/// per-pair kernel over a pointless batched call.
pub const LANE_WIDTH: usize = 4;

/// Version of the bit-identity contract implemented by this module. Bumped
/// when the accumulation tree changes (v1: unfused `mul → add`; v2: fused
/// `mul_add` on every tier, all width classes moved together). Surfaced in
/// `/healthz` and `gb_build_info` so operators can tell two builds will
/// produce bit-identical models before mixing them.
pub const CONTRACT_VERSION: u32 = 2;

/// A distance-kernel tier. See the module docs for the selection rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// AVX2 + FMA: 4 × f64 lanes fused in one 256-bit accumulator.
    Fma,
    /// Compat spelling of the 256-bit fused tier (v1 name). Same codepath
    /// as [`Kernel::Fma`].
    Avx2,
    /// SSE2 + FMA: 2 × f64 lanes fused in each of two 128-bit accumulators.
    Sse2,
    /// Portable scalar tier: the same fused 4-lane tree via [`f64::mul_add`].
    Scalar,
}

impl Kernel {
    /// CLI/env spelling of the tier.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Fma => "fma",
            Kernel::Avx2 => "avx2",
            Kernel::Sse2 => "sse2",
            Kernel::Scalar => "scalar",
        }
    }

    /// Every tier runnable on this host, fastest first. Always ends with
    /// [`Kernel::Scalar`]. Under contract v2 the SIMD tiers require hardware
    /// FMA (the fused step is the contract); hosts without it run scalar.
    #[must_use]
    pub fn available() -> Vec<Kernel> {
        let mut tiers = Vec::with_capacity(4);
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("fma") {
                if is_x86_feature_detected!("avx2") {
                    tiers.push(Kernel::Fma);
                    tiers.push(Kernel::Avx2);
                }
                tiers.push(Kernel::Sse2);
            }
        }
        tiers.push(Kernel::Scalar);
        tiers
    }

    /// The tier this request actually runs on this host: a known but
    /// unsupported tier degrades to the best available one (bit-identical,
    /// so results are unaffected — only speed).
    #[must_use]
    pub fn resolve(self) -> Kernel {
        #[cfg(target_arch = "x86_64")]
        {
            let fma = is_x86_feature_detected!("fma");
            match self {
                Kernel::Fma | Kernel::Avx2 if fma && is_x86_feature_detected!("avx2") => self,
                Kernel::Fma | Kernel::Avx2 | Kernel::Sse2 if fma => Kernel::Sse2,
                _ => Kernel::Scalar,
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        Kernel::Scalar
    }

    /// Detects the preferred tier for this host, honouring the `GB_SIMD`
    /// override. Does not cache; see [`active_kernel`] for the process-wide
    /// choice.
    ///
    /// # Panics
    /// On an unrecognized `GB_SIMD` value — call [`validate_simd_env`] at
    /// startup for a clean error instead.
    #[must_use]
    pub fn detect() -> Kernel {
        let raw = std::env::var("GB_SIMD").unwrap_or_default();
        match kernel_from_env(&raw) {
            Ok(Some(forced)) => forced.resolve(),
            Ok(None) => *Kernel::available().first().expect("non-empty tier list"),
            Err(msg) => panic!("{msg}"),
        }
    }
}

/// Parses a `GB_SIMD` value. `Ok(None)` means auto-detect (empty or
/// `auto`); a known tier name returns that tier (which [`Kernel::resolve`]
/// may still degrade); anything else is an error listing the valid values.
///
/// # Errors
/// Unknown tier names.
pub fn kernel_from_env(raw: &str) -> Result<Option<Kernel>, String> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "" | "auto" => Ok(None),
        "fma" => Ok(Some(Kernel::Fma)),
        "avx2" => Ok(Some(Kernel::Avx2)),
        "sse2" => Ok(Some(Kernel::Sse2)),
        "scalar" | "off" | "0" => Ok(Some(Kernel::Scalar)),
        other => Err(format!(
            "GB_SIMD={other:?} is not a recognized kernel tier; valid values: \
             fma, avx2, sse2, scalar (aliases: off, 0), auto (or unset)"
        )),
    }
}

/// Startup validation of the `GB_SIMD` override: returns the tier that will
/// be active, or the same error [`Kernel::detect`] would panic with. CLIs
/// call this before any distance work so a typo'd override is a clean
/// startup error, not a silent scalar fallback (the pre-v2 behaviour) or a
/// mid-request panic.
///
/// # Errors
/// Unknown `GB_SIMD` values.
pub fn validate_simd_env() -> Result<Kernel, String> {
    let raw = std::env::var("GB_SIMD").unwrap_or_default();
    Ok(match kernel_from_env(&raw)? {
        Some(forced) => forced.resolve(),
        None => *Kernel::available().first().expect("non-empty tier list"),
    })
}

/// The kernel tier every dispatched entry point uses, selected once per
/// process (first call wins; `GB_SIMD` must be set before that).
#[must_use]
pub fn active_kernel() -> Kernel {
    static ACTIVE: OnceLock<Kernel> = OnceLock::new();
    *ACTIVE.get_or_init(Kernel::detect)
}

/// Squared Euclidean distance between two equal-length vectors — the
/// sequential per-pair kernel, fully inline.
///
/// This is the *sub-lane* half of the workspace's determinism contract
/// (see the module docs): rows narrower than [`LANE_WIDTH`] are summed in
/// sequential order by every path, and this plain loop is that order. The
/// body is deliberately a bare zip loop — no dispatch branch, no call
/// edge, no panic path. Measured on the RD-GBG hot path at p = 2, every
/// "smarter" body (lane-array forms, slice-pattern ladders, an outlined
/// fallback call) cost 13–40%: the call edge alone steals registers from
/// the caller's loop even when never taken.
///
/// Hot per-pair call sites on rows ≥ [`LANE_WIDTH`] must use
/// [`sq_euclidean_dispatched`] (fused lane-tree arithmetic, SIMD when
/// available) so their bits match the batched scans; blocked scans use
/// [`sq_euclidean_one_to_many`] or [`sq_dist_block`].
///
/// # Panics
/// Debug-asserts equal lengths (documented invariant: callers in this
/// workspace always pass rows of a single dataset); in release the shorter
/// length wins, exactly like the pre-SIMD kernel. Batched callers get the
/// full stride check at the [`sq_euclidean_one_to_many`] boundary.
#[inline]
#[must_use]
pub fn sq_euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Per-pair squared Euclidean via the process-wide [`active_kernel`] tier.
/// For per-pair call sites on rows ≥ [`LANE_WIDTH`] (vantage-point
/// distances, the sparse arms of the hybrid scans) where bits must match
/// the batched lane-tree kernels; sub-lane rows fall back to
/// [`sq_euclidean`]'s sequential order, completing the width-keyed
/// contract — for any row width, this function, [`sq_euclidean_one_to_many`]
/// and the scan paths built on them all agree bit-for-bit.
///
/// # Panics
/// Same contract as [`sq_euclidean`], except that a shorter `b` panics
/// (bounds check) instead of truncating when `a.len() >= LANE_WIDTH`.
#[must_use]
pub fn sq_euclidean_dispatched(a: &[f64], b: &[f64]) -> f64 {
    if a.len() < LANE_WIDTH {
        debug_assert_eq!(a.len(), b.len());
        return sq_euclidean(a, b);
    }
    sq_euclidean_with(active_kernel(), a, b)
}

/// [`sq_euclidean`] via an explicit kernel tier (parity tests, benches).
///
/// # Panics
/// Same contract as [`sq_euclidean`].
#[inline]
#[must_use]
pub fn sq_euclidean_with(kernel: Kernel, a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let b = &b[..a.len()];
    match kernel {
        // The feature re-check keeps this safe for arbitrary caller-chosen
        // tiers (not just detected ones); `is_x86_feature_detected!`
        // caches, and an unsupported request degrades down the (equally
        // bit-identical) tier chain, so results are unaffected.
        #[cfg(target_arch = "x86_64")]
        // SAFETY: AVX2 + FMA verified on this host; slices are equal-length.
        Kernel::Fma | Kernel::Avx2
            if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") =>
        unsafe { x86::sq_euclidean_fma256(a, b) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: FMA verified (SSE2 is part of the x86_64 baseline).
        Kernel::Fma | Kernel::Avx2 | Kernel::Sse2 if is_x86_feature_detected!("fma") => unsafe {
            x86::sq_euclidean_fma128(a, b)
        },
        _ => sq_euclidean_scalar(a, b),
    }
}

/// Distances from one query row to every row of a contiguous row-major
/// block, written into `out` (one `f64` per row). This is the batched form
/// the hot scans use: tier dispatch happens once per call and the block
/// streams linearly through cache. Results are bit-identical to
/// [`sq_euclidean_dispatched`] per row (sequential order below
/// [`LANE_WIDTH`], the fused lane tree at or above it).
///
/// # Panics
/// Always (release included) asserts the exact stride relation
/// `block.len() == query.len() * out.len()` — ragged inputs panic instead
/// of silently truncating.
#[inline]
pub fn sq_euclidean_one_to_many(query: &[f64], block: &[f64], out: &mut [f64]) {
    sq_euclidean_one_to_many_with(active_kernel(), query, block, out);
}

/// [`sq_euclidean_one_to_many`] via an explicit kernel tier.
///
/// # Panics
/// Same stride contract as [`sq_euclidean_one_to_many`].
pub fn sq_euclidean_one_to_many_with(
    kernel: Kernel,
    query: &[f64],
    block: &[f64],
    out: &mut [f64],
) {
    let p = query.len();
    assert_eq!(
        block.len(),
        p * out.len(),
        "row-major block must be exactly out.len() rows of query.len() features \
         (block {} vs {} rows x {} features)",
        block.len(),
        out.len(),
        p
    );
    if p == 0 {
        out.fill(0.0);
        return;
    }
    if p < LANE_WIDTH {
        // Sub-lane rows have no vector work for any tier; every tier uses
        // the sequential per-pair kernel so the sub-lane half of the
        // width-keyed contract holds for batched calls too.
        for (row, d) in block.chunks_exact(p).zip(out.iter_mut()) {
            *d = sq_euclidean(query, row);
        }
        return;
    }
    match kernel {
        // Feature re-check as in `sq_euclidean_with`: safe for arbitrary
        // caller-chosen tiers, degrading down the bit-identical chain.
        #[cfg(target_arch = "x86_64")]
        // SAFETY: AVX2 + FMA verified on this host; the stride assertion
        // above guarantees in-bounds row slices.
        Kernel::Fma | Kernel::Avx2
            if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") =>
        unsafe { x86::one_to_many_fma256(query, block, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: FMA verified (SSE2 is part of the x86_64 baseline).
        Kernel::Fma | Kernel::Avx2 | Kernel::Sse2 if is_x86_feature_detected!("fma") => unsafe {
            x86::one_to_many_fma128(query, block, out)
        },
        _ => {
            for (row, d) in block.chunks_exact(p).zip(out.iter_mut()) {
                *d = sq_euclidean_scalar(query, row);
            }
        }
    }
}

/// Blocked many-to-many squared-Euclidean kernel: distances from `Q` query
/// rows to `R` block rows (both row-major, `p` features), written to `out`
/// in `out[q * R + r]` layout.
///
/// On the FMA tier this runs a 2-query × 4-row register tile — eight
/// independent fused accumulator chains that reuse every loaded row chunk
/// across both queries, which is where the ≥ 1.5× over repeated one-to-many
/// comes from (ILP + cache reuse; see `benches/kernels.rs`). Every
/// accumulator executes exactly the per-pair chunk sequence, so the result
/// is **bit-identical** to calling [`sq_euclidean_one_to_many`] per query
/// (property-tested). Other tiers decompose into repeated one-to-many calls
/// (identical bits, no tile win).
///
/// # Panics
/// Always asserts `p > 0`, `queries.len() % p == 0`,
/// `block.len() % p == 0`, and `out.len() == n_queries * n_rows`.
#[inline]
pub fn sq_dist_block(queries: &[f64], block: &[f64], p: usize, out: &mut [f64]) {
    sq_dist_block_with(active_kernel(), queries, block, p, out);
}

/// [`sq_dist_block`] via an explicit kernel tier.
///
/// # Panics
/// Same shape contract as [`sq_dist_block`].
pub fn sq_dist_block_with(
    kernel: Kernel,
    queries: &[f64],
    block: &[f64],
    p: usize,
    out: &mut [f64],
) {
    let (_nq, nr) = check_block_shape(queries, block, p, out);
    if out.is_empty() {
        // No queries or no rows: nothing to write (`chunks_exact_mut(0)`
        // would panic below).
        return;
    }
    if p < LANE_WIDTH {
        // Sub-lane contract: sequential per-pair order on every path.
        for (q, orow) in queries.chunks_exact(p).zip(out.chunks_exact_mut(nr)) {
            for (row, d) in block.chunks_exact(p).zip(orow.iter_mut()) {
                *d = sq_euclidean(q, row);
            }
        }
        return;
    }
    match kernel {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: AVX2 + FMA verified on this host; shapes asserted by
        // `check_block_shape`.
        Kernel::Fma | Kernel::Avx2
            if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") =>
        unsafe { x86::dist_block_fma256(queries, block, p, nr, out) },
        _ => {
            for (q, orow) in queries.chunks_exact(p).zip(out.chunks_exact_mut(nr)) {
                sq_euclidean_one_to_many_with(kernel, q, block, orow);
            }
        }
    }
}

/// Shared shape validation for the blocked kernels. Returns `(nq, nr)`.
fn check_block_shape(queries: &[f64], block: &[f64], p: usize, out: &mut [f64]) -> (usize, usize) {
    assert!(p > 0, "blocked kernel requires p > 0");
    assert_eq!(
        queries.len() % p,
        0,
        "queries must be row-major with {p} features (len {})",
        queries.len()
    );
    assert_eq!(
        block.len() % p,
        0,
        "block must be row-major with {p} features (len {})",
        block.len()
    );
    let nq = queries.len() / p;
    let nr = block.len() / p;
    assert_eq!(
        out.len(),
        nq * nr,
        "out must be {nq} queries x {nr} rows (got {})",
        out.len()
    );
    (nq, nr)
}

/// The scalar tier: portable, and **the** reference the SIMD tiers must
/// match bit-for-bit. Uses the fused 4-lane strided accumulation tree
/// described in the module docs — [`f64::mul_add`] is correctly rounded on
/// every host (hardware FMA where present, libm's soft-fma otherwise), so
/// this is bit-identical to the vector tiers everywhere.
///
/// The sub-lane hardcoded forms fold the zero lanes away, which is exact —
/// a squared difference is never `-0.0`, `fma(d, d, 0.0)` rounds exactly
/// like `d * d`, and `x + 0.0 == x` holds bitwise for everything else — so
/// they are bit-identical to the full tree and to the SIMD tiers
/// (property-tested). Mismatched lengths truncate to the shorter slice,
/// like the pre-SIMD kernel (equal lengths are the documented invariant).
#[inline]
#[must_use]
pub fn sq_euclidean_scalar(a: &[f64], b: &[f64]) -> f64 {
    // Lane tree with the zero lanes folded: (l0 + l2) + (l1 + l3).
    match (a, b) {
        ([], _) | (_, []) => return 0.0,
        ([a0], [b0, ..]) | ([a0, ..], [b0]) => {
            let d = a0 - b0;
            return d * d;
        }
        ([a0, a1], [b0, b1, ..]) | ([a0, a1, ..], [b0, b1]) => {
            let d0 = a0 - b0;
            let d1 = a1 - b1;
            return d0 * d0 + d1 * d1;
        }
        ([a0, a1, a2], [b0, b1, b2, ..]) | ([a0, a1, a2, ..], [b0, b1, b2]) => {
            let d0 = a0 - b0;
            let d1 = a1 - b1;
            let d2 = a2 - b2;
            return (d0 * d0 + d2 * d2) + d1 * d1;
        }
        _ => {}
    }
    let mut lanes = [0.0f64; 4];
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    for (ka, kb) in (&mut ca).zip(&mut cb) {
        // One step per 256-bit vector op: four independent fused chains the
        // compiler keeps in registers even without SIMD.
        for (lane, (x, y)) in lanes.iter_mut().zip(ka.iter().zip(kb.iter())) {
            let d = x - y;
            *lane = d.mul_add(d, *lane);
        }
    }
    // `len % 4` tail elements fold into lanes 0..len % 4, in order.
    for (lane, (x, y)) in lanes
        .iter_mut()
        .zip(ca.remainder().iter().zip(cb.remainder().iter()))
    {
        let d = x - y;
        *lane = d.mul_add(d, *lane);
    }
    (lanes[0] + lanes[2]) + (lanes[1] + lanes[3])
}

/// Sequential left-to-right reference kernel (the pre-SIMD implementation).
/// Kept as the test oracle: the lane-ordered kernels agree with it within a
/// scaled-ULP tolerance, never necessarily bit-for-bit.
#[must_use]
pub fn sq_euclidean_naive(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

// ---------------------------------------------------------------------------
// Manhattan (L1) kernels
// ---------------------------------------------------------------------------

/// Manhattan (L1) distance — the sequential per-pair kernel, fully inline.
/// The sub-lane half of the L1 contract (rows `< LANE_WIDTH` sum in this
/// order on every path) and the naive test oracle in one: `abs` and `add`
/// are exact-ordered ops, so the only freedom is summation order.
#[inline]
#[must_use]
pub fn manhattan(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        acc += (x - y).abs();
    }
    acc
}

/// Per-pair Manhattan via the process-wide [`active_kernel`] tier,
/// width-keyed exactly like [`sq_euclidean_dispatched`].
#[must_use]
pub fn manhattan_dispatched(a: &[f64], b: &[f64]) -> f64 {
    if a.len() < LANE_WIDTH {
        debug_assert_eq!(a.len(), b.len());
        return manhattan(a, b);
    }
    manhattan_with(active_kernel(), a, b)
}

/// [`manhattan`] via an explicit kernel tier (the 4-lane tree; see module
/// docs). The L1 vector paths need no FMA — `Fma`/`Avx2` key on AVX2 alone.
///
/// # Panics
/// Same contract as [`sq_euclidean`].
#[inline]
#[must_use]
pub fn manhattan_with(kernel: Kernel, a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let b = &b[..a.len()];
    match kernel {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: AVX2 verified on this host; slices are equal-length.
        Kernel::Fma | Kernel::Avx2 if is_x86_feature_detected!("avx2") => unsafe {
            x86::manhattan_avx2(a, b)
        },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86_64 baseline.
        Kernel::Fma | Kernel::Avx2 | Kernel::Sse2 => unsafe { x86::manhattan_sse2(a, b) },
        _ => manhattan_scalar(a, b),
    }
}

/// The scalar L1 tier: the same 4-lane strided tree with `abs` in place of
/// the fused square. Bit-identical to the vector tiers because every step
/// (`sub`, `abs`, `add`) is exactly rounded and the order is fixed.
#[inline]
#[must_use]
pub fn manhattan_scalar(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut lanes = [0.0f64; 4];
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    for (ka, kb) in (&mut ca).zip(&mut cb) {
        for (lane, (x, y)) in lanes.iter_mut().zip(ka.iter().zip(kb.iter())) {
            *lane += (x - y).abs();
        }
    }
    for (lane, (x, y)) in lanes
        .iter_mut()
        .zip(ca.remainder().iter().zip(cb.remainder().iter()))
    {
        *lane += (x - y).abs();
    }
    (lanes[0] + lanes[2]) + (lanes[1] + lanes[3])
}

/// L1 one-to-many: [`sq_euclidean_one_to_many`]'s shape and width-keying
/// with Manhattan arithmetic.
///
/// # Panics
/// Same stride contract as [`sq_euclidean_one_to_many`].
#[inline]
pub fn manhattan_one_to_many(query: &[f64], block: &[f64], out: &mut [f64]) {
    manhattan_one_to_many_with(active_kernel(), query, block, out);
}

/// [`manhattan_one_to_many`] via an explicit kernel tier.
///
/// # Panics
/// Same stride contract as [`sq_euclidean_one_to_many`].
pub fn manhattan_one_to_many_with(kernel: Kernel, query: &[f64], block: &[f64], out: &mut [f64]) {
    let p = query.len();
    assert_eq!(
        block.len(),
        p * out.len(),
        "row-major block must be exactly out.len() rows of query.len() features \
         (block {} vs {} rows x {} features)",
        block.len(),
        out.len(),
        p
    );
    if p == 0 {
        out.fill(0.0);
        return;
    }
    if p < LANE_WIDTH {
        for (row, d) in block.chunks_exact(p).zip(out.iter_mut()) {
            *d = manhattan(query, row);
        }
        return;
    }
    match kernel {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: AVX2 verified; the stride assertion guarantees in-bounds
        // row slices.
        Kernel::Fma | Kernel::Avx2 if is_x86_feature_detected!("avx2") => unsafe {
            x86::manhattan_one_to_many_avx2(query, block, out)
        },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86_64 baseline.
        Kernel::Fma | Kernel::Avx2 | Kernel::Sse2 => unsafe {
            x86::manhattan_one_to_many_sse2(query, block, out)
        },
        _ => {
            for (row, d) in block.chunks_exact(p).zip(out.iter_mut()) {
                *d = manhattan_scalar(query, row);
            }
        }
    }
}

/// Blocked many-to-many Manhattan kernel, [`sq_dist_block`]'s shape. L1 has
/// no register tile yet (the fused-multiply win does not exist for
/// `abs`/`add`, so blocking buys only cache reuse) — every tier decomposes
/// into repeated [`manhattan_one_to_many_with`] calls, which makes blocked
/// == repeated bit-identity hold by construction here too.
///
/// # Panics
/// Same shape contract as [`sq_dist_block`].
#[inline]
pub fn manhattan_dist_block(queries: &[f64], block: &[f64], p: usize, out: &mut [f64]) {
    manhattan_dist_block_with(active_kernel(), queries, block, p, out);
}

/// [`manhattan_dist_block`] via an explicit kernel tier.
///
/// # Panics
/// Same shape contract as [`sq_dist_block`].
pub fn manhattan_dist_block_with(
    kernel: Kernel,
    queries: &[f64],
    block: &[f64],
    p: usize,
    out: &mut [f64],
) {
    let (_nq, nr) = check_block_shape(queries, block, p, out);
    if out.is_empty() {
        // Same empty-shape guard as [`sq_dist_block_with`].
        return;
    }
    if p < LANE_WIDTH {
        for (q, orow) in queries.chunks_exact(p).zip(out.chunks_exact_mut(nr)) {
            for (row, d) in block.chunks_exact(p).zip(orow.iter_mut()) {
                *d = manhattan(q, row);
            }
        }
        return;
    }
    for (q, orow) in queries.chunks_exact(p).zip(out.chunks_exact_mut(nr)) {
        manhattan_one_to_many_with(kernel, q, block, orow);
    }
}

// ---------------------------------------------------------------------------
// Metric
// ---------------------------------------------------------------------------

/// The distance metric threaded through kernel dispatch, `NeighborIndex`
/// builds, and GB-kNN. See the module docs for the kernel-value / rank-value
/// split per metric. `Cosine` consumers must pass L2-normalized rows to the
/// kernel entry points ([`Metric::prepare_rows`] / [`Metric::prepare_query`]
/// do this); the index backends and GB-kNN handle it internally.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub enum Metric {
    /// Squared Euclidean kernel values; rank = `sqrt` (the paper's metric).
    #[default]
    SqEuclidean,
    /// L1 kernel values; rank = identity.
    Manhattan,
    /// Squared chord on L2-normalized rows (monotone in cosine distance);
    /// rank = `sqrt`.
    Cosine,
}

impl Metric {
    /// Every supported metric (test matrices, CLI help).
    pub const ALL: [Metric; 3] = [Metric::SqEuclidean, Metric::Manhattan, Metric::Cosine];

    /// CLI/env/store spelling.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Metric::SqEuclidean => "sqeuclidean",
            Metric::Manhattan => "manhattan",
            Metric::Cosine => "cosine",
        }
    }

    /// Parses a metric name. Accepts the canonical spellings plus common
    /// aliases (`l2`/`euclidean`, `l1`/`cityblock`).
    ///
    /// # Errors
    /// Unknown names, listing the valid spellings.
    pub fn parse(raw: &str) -> Result<Metric, String> {
        match raw.trim().to_ascii_lowercase().as_str() {
            "sqeuclidean" | "sq-euclidean" | "euclidean" | "l2" => Ok(Metric::SqEuclidean),
            "manhattan" | "l1" | "cityblock" => Ok(Metric::Manhattan),
            "cosine" => Ok(Metric::Cosine),
            other => Err(format!(
                "unknown metric {other:?}; valid values: sqeuclidean (aliases: euclidean, l2), \
                 manhattan (aliases: l1, cityblock), cosine"
            )),
        }
    }

    /// Whether kernel inputs must be L2-normalized first (cosine only).
    #[must_use]
    pub fn normalizes(self) -> bool {
        matches!(self, Metric::Cosine)
    }

    /// Kernel value → rank value (the monotone map hot loops defer).
    #[inline]
    #[must_use]
    pub fn rank_of(self, kernel_value: f64) -> f64 {
        match self {
            Metric::SqEuclidean | Metric::Cosine => kernel_value.sqrt(),
            Metric::Manhattan => kernel_value,
        }
    }

    /// Axis-gap lower bound in kernel space: for a point at coordinate
    /// difference `diff` along one dimension, every row on the far side is
    /// at kernel distance ≥ this (KD-tree pruning).
    #[inline]
    #[must_use]
    pub fn plane_gap(self, diff: f64) -> f64 {
        match self {
            Metric::SqEuclidean | Metric::Cosine => diff * diff,
            Metric::Manhattan => diff.abs(),
        }
    }

    /// Per-pair kernel value in sequential (sub-lane) order — the inline
    /// kernel for `p < LANE_WIDTH` hot loops. Cosine inputs must already be
    /// normalized.
    #[inline]
    #[must_use]
    pub fn pair_seq(self, a: &[f64], b: &[f64]) -> f64 {
        match self {
            Metric::SqEuclidean | Metric::Cosine => sq_euclidean(a, b),
            Metric::Manhattan => manhattan(a, b),
        }
    }

    /// Per-pair kernel value via the active tier, width-keyed. Cosine
    /// inputs must already be normalized.
    #[inline]
    #[must_use]
    pub fn pair(self, a: &[f64], b: &[f64]) -> f64 {
        match self {
            Metric::SqEuclidean | Metric::Cosine => sq_euclidean_dispatched(a, b),
            Metric::Manhattan => manhattan_dispatched(a, b),
        }
    }

    /// Rank-space distance between two raw (unprepared) rows. Not a hot
    /// path — cosine allocates normalized copies. Used where a distance in
    /// the metric's human-facing unit is needed outside the index (ball
    /// conflict gaps, diagnostics).
    #[must_use]
    pub fn rank_pair(self, a: &[f64], b: &[f64]) -> f64 {
        match self {
            Metric::SqEuclidean => sq_euclidean_dispatched(a, b).sqrt(),
            Metric::Manhattan => manhattan_dispatched(a, b),
            Metric::Cosine => {
                let mut an = a.to_vec();
                let mut bn = b.to_vec();
                l2_normalize_row(&mut an);
                l2_normalize_row(&mut bn);
                sq_euclidean_dispatched(&an, &bn).sqrt()
            }
        }
    }

    /// One-to-many kernel values via the active tier. Cosine inputs must
    /// already be normalized.
    ///
    /// # Panics
    /// Same stride contract as [`sq_euclidean_one_to_many`].
    #[inline]
    pub fn one_to_many(self, query: &[f64], block: &[f64], out: &mut [f64]) {
        match self {
            Metric::SqEuclidean | Metric::Cosine => sq_euclidean_one_to_many(query, block, out),
            Metric::Manhattan => manhattan_one_to_many(query, block, out),
        }
    }

    /// Blocked many-to-many kernel values via the active tier. Cosine
    /// inputs must already be normalized.
    ///
    /// # Panics
    /// Same shape contract as [`sq_dist_block`].
    #[inline]
    pub fn dist_block(self, queries: &[f64], block: &[f64], p: usize, out: &mut [f64]) {
        match self {
            Metric::SqEuclidean | Metric::Cosine => sq_dist_block(queries, block, p, out),
            Metric::Manhattan => manhattan_dist_block(queries, block, p, out),
        }
    }

    /// Prepares a row-major data matrix for this metric's kernels: L2
    /// normalization for cosine, identity otherwise.
    pub fn prepare_rows(self, data: &mut [f64], p: usize) {
        if self.normalizes() {
            l2_normalize_rows(data, p);
        }
    }

    /// Prepares one query row for this metric's kernels (cosine: returns a
    /// normalized copy; other metrics borrow the input unchanged).
    #[must_use]
    pub fn prepare_query<'q>(self, query: &'q [f64]) -> std::borrow::Cow<'q, [f64]> {
        if self.normalizes() {
            let mut q = query.to_vec();
            l2_normalize_row(&mut q);
            std::borrow::Cow::Owned(q)
        } else {
            std::borrow::Cow::Borrowed(query)
        }
    }
}

impl std::fmt::Display for Metric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Metric {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Metric::parse(s)
    }
}

/// Sequential sum of squares of one row (the normalization norm). Plain
/// scalar on purpose: it runs once per row at build/query time, and having
/// exactly one implementation with no tier dispatch makes normalized
/// coordinates trivially bit-identical across tiers and hosts.
#[inline]
#[must_use]
pub fn sq_norm(row: &[f64]) -> f64 {
    let mut acc = 0.0;
    for x in row {
        acc += x * x;
    }
    acc
}

/// L2-normalizes one row in place. Zero rows (and rows whose norm is not
/// finite) are left unchanged — deterministic, and a zero query is then at
/// kernel distance `Σ b̂²  = 1` from every normalized row, which ranks all
/// rows equally instead of poisoning the scan with NaNs.
#[inline]
pub fn l2_normalize_row(row: &mut [f64]) {
    let norm = sq_norm(row).sqrt();
    if norm > 0.0 && norm.is_finite() {
        for x in row {
            *x /= norm;
        }
    }
}

/// L2-normalizes every row of a row-major matrix in place (cosine prep).
///
/// # Panics
/// Asserts `data.len()` is a multiple of `p` (for `p > 0`).
pub fn l2_normalize_rows(data: &mut [f64], p: usize) {
    if p == 0 {
        return;
    }
    assert_eq!(
        data.len() % p,
        0,
        "row-major matrix must be a multiple of {p} features (len {})",
        data.len()
    );
    for row in data.chunks_exact_mut(p) {
        l2_normalize_row(row);
    }
}

// ---------------------------------------------------------------------------
// Kernel-aware leaf sizing
// ---------------------------------------------------------------------------

/// Default KD/VP leaf size — the pre-v2 hardcoded bucket, kept as the
/// sub-lane and fallback answer.
pub const DEFAULT_LEAF_SIZE: usize = 16;

const LEAF_CANDIDATES: [usize; 5] = [8, 16, 32, 64, 128];
/// Rows scanned per candidate during the calibration sweep; small enough to
/// keep a build's calibration cost in the tens of microseconds per width.
const LEAF_SWEEP_ROWS: usize = 4096;

/// KD/VP leaf size for rows of width `p`, chosen by a one-off calibration
/// sweep against the active kernel tier (cached per width for the process).
///
/// Bigger leaves amortize per-call dispatch across more rows of
/// [`sq_euclidean_one_to_many`] but weaken tree pruning; the sweet spot
/// moved when the kernels got faster, so v2 measures instead of hardcoding:
/// the sweep times the batched kernel at each candidate bucket size and
/// picks the **smallest** candidate within 10% of the best per-row
/// throughput. Leaf size changes traversal granularity only — query
/// results are exact and bit-identical regardless (KBest/range sets are
/// order-independent), so timing noise here can never affect output, only
/// speed.
///
/// `GB_LEAF_SIZE` overrides the sweep with a fixed bucket (2..=512) for
/// benchmarking and regression hunts.
///
/// # Panics
/// On an unparsable or out-of-range `GB_LEAF_SIZE`.
#[must_use]
pub fn calibrated_leaf_size(p: usize) -> usize {
    if let Some(forced) = leaf_size_from_env() {
        return forced;
    }
    if p < LANE_WIDTH {
        // Sub-lane rows use the inline per-pair kernel — no batched call to
        // amortize, nothing to calibrate.
        return DEFAULT_LEAF_SIZE;
    }
    static CACHE: OnceLock<Mutex<HashMap<usize, usize>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(&hit) = cache.lock().expect("leaf cache poisoned").get(&p) {
        return hit;
    }
    let chosen = sweep_leaf_size(p);
    cache.lock().expect("leaf cache poisoned").insert(p, chosen);
    chosen
}

fn leaf_size_from_env() -> Option<usize> {
    let raw = std::env::var("GB_LEAF_SIZE").ok()?;
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return None;
    }
    let parsed: usize = trimmed
        .parse()
        .unwrap_or_else(|_| panic!("GB_LEAF_SIZE={trimmed:?} is not a positive integer"));
    assert!(
        (2..=512).contains(&parsed),
        "GB_LEAF_SIZE={parsed} out of range (valid: 2..=512)"
    );
    Some(parsed)
}

/// Times the batched kernel at each candidate bucket size over synthetic
/// data and returns the smallest bucket within 10% of the best per-row
/// cost.
fn sweep_leaf_size(p: usize) -> usize {
    let max_leaf = *LEAF_CANDIDATES.last().expect("non-empty candidates");
    // Deterministic synthetic rows; the values are irrelevant (no
    // data-dependent branches in the kernels), only the shape matters.
    let block: Vec<f64> = (0..max_leaf * p).map(|i| (i % 251) as f64 * 0.17).collect();
    let query: Vec<f64> = (0..p).map(|i| (i % 17) as f64 * 0.71).collect();
    let mut out = vec![0.0f64; max_leaf];
    // Warm the dispatch (OnceLock) and the cache lines outside the timers.
    sq_euclidean_one_to_many(&query, &block, &mut out);

    let mut costs = [0.0f64; LEAF_CANDIDATES.len()];
    for (cost, &cand) in costs.iter_mut().zip(LEAF_CANDIDATES.iter()) {
        let reps = LEAF_SWEEP_ROWS / cand;
        let start = std::time::Instant::now();
        for _ in 0..reps {
            sq_euclidean_one_to_many(&query, &block[..cand * p], &mut out[..cand]);
        }
        let rows = (reps * cand) as f64;
        *cost = start.elapsed().as_nanos() as f64 / rows;
        // Keep the optimizer honest about the output buffer.
        std::hint::black_box(&out);
    }
    let best = costs.iter().copied().fold(f64::INFINITY, f64::min);
    for (&cost, &cand) in costs.iter().zip(LEAF_CANDIDATES.iter()) {
        if cost <= best * 1.10 {
            return cand;
        }
    }
    DEFAULT_LEAF_SIZE
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! x86_64 tiers. Every function mirrors `sq_euclidean_scalar`'s fused
    //! accumulation tree (or `manhattan_scalar`'s abs tree) exactly — see
    //! the module docs for why.
    use std::arch::x86_64::{
        __m256d, _mm256_add_pd, _mm256_andnot_pd, _mm256_fmadd_pd, _mm256_loadu_pd, _mm256_set1_pd,
        _mm256_setzero_pd, _mm256_storeu_pd, _mm256_sub_pd, _mm_add_pd, _mm_andnot_pd,
        _mm_fmadd_pd, _mm_loadu_pd, _mm_set1_pd, _mm_setzero_pd, _mm_storeu_pd, _mm_sub_pd,
    };

    /// Folds the `len % 4` tail into the lane array with the same fused
    /// step as the vector body, then applies the final reduction.
    /// `f64::mul_add` is correctly rounded, so this matches the scalar tier
    /// whether or not it compiles to a hardware `vfmadd`.
    #[inline(always)]
    fn finish_fused(mut lanes: [f64; 4], a: &[f64], b: &[f64], chunks: usize) -> f64 {
        let n = a.len();
        for (j, lane) in lanes.iter_mut().enumerate().take(n % 4) {
            let i = 4 * chunks + j;
            let d = a[i] - b[i];
            *lane = d.mul_add(d, *lane);
        }
        (lanes[0] + lanes[2]) + (lanes[1] + lanes[3])
    }

    /// Tail fold + reduction for the L1 tree.
    #[inline(always)]
    fn finish_abs(mut lanes: [f64; 4], a: &[f64], b: &[f64], chunks: usize) -> f64 {
        let n = a.len();
        for (j, lane) in lanes.iter_mut().enumerate().take(n % 4) {
            let i = 4 * chunks + j;
            *lane += (a[i] - b[i]).abs();
        }
        (lanes[0] + lanes[2]) + (lanes[1] + lanes[3])
    }

    /// # Safety
    /// Caller guarantees AVX2 + FMA support and `b.len() >= a.len()`.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn sq_euclidean_fma256(a: &[f64], b: &[f64]) -> f64 {
        let chunks = a.len() / 4;
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut acc = _mm256_setzero_pd();
        for c in 0..chunks {
            let d = _mm256_sub_pd(
                _mm256_loadu_pd(ap.add(4 * c)),
                _mm256_loadu_pd(bp.add(4 * c)),
            );
            acc = _mm256_fmadd_pd(d, d, acc);
        }
        let mut lanes = [0.0f64; 4];
        _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
        finish_fused(lanes, a, b, chunks)
    }

    /// # Safety
    /// Caller guarantees FMA support and `b.len() >= a.len()` (SSE2 is part
    /// of the x86_64 baseline).
    #[target_feature(enable = "sse2,fma")]
    pub(super) unsafe fn sq_euclidean_fma128(a: &[f64], b: &[f64]) -> f64 {
        let chunks = a.len() / 4;
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        // Two 128-bit accumulators model the four lanes: acc01 = lanes
        // {0, 1}, acc23 = lanes {2, 3}.
        let mut acc01 = _mm_setzero_pd();
        let mut acc23 = _mm_setzero_pd();
        for c in 0..chunks {
            let d0 = _mm_sub_pd(_mm_loadu_pd(ap.add(4 * c)), _mm_loadu_pd(bp.add(4 * c)));
            acc01 = _mm_fmadd_pd(d0, d0, acc01);
            let d1 = _mm_sub_pd(
                _mm_loadu_pd(ap.add(4 * c + 2)),
                _mm_loadu_pd(bp.add(4 * c + 2)),
            );
            acc23 = _mm_fmadd_pd(d1, d1, acc23);
        }
        let mut lanes = [0.0f64; 4];
        _mm_storeu_pd(lanes.as_mut_ptr(), acc01);
        _mm_storeu_pd(lanes.as_mut_ptr().add(2), acc23);
        finish_fused(lanes, a, b, chunks)
    }

    /// # Safety
    /// Caller guarantees `block.len() == query.len() * out.len()` and
    /// AVX2 + FMA support.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn one_to_many_fma256(query: &[f64], block: &[f64], out: &mut [f64]) {
        let p = query.len();
        for (r, d) in out.iter_mut().enumerate() {
            let row = &block[r * p..(r + 1) * p];
            *d = sq_euclidean_fma256(query, row);
        }
    }

    /// # Safety
    /// Caller guarantees `block.len() == query.len() * out.len()` and FMA
    /// support.
    #[target_feature(enable = "sse2,fma")]
    pub(super) unsafe fn one_to_many_fma128(query: &[f64], block: &[f64], out: &mut [f64]) {
        let p = query.len();
        for (r, d) in out.iter_mut().enumerate() {
            let row = &block[r * p..(r + 1) * p];
            *d = sq_euclidean_fma128(query, row);
        }
    }

    /// Stores one tile accumulator and finishes it exactly like the
    /// pairwise kernel for `(q, row)`.
    ///
    /// # Safety
    /// Caller guarantees AVX2 + FMA support and that `acc` holds the fused
    /// lane sums of the length-4-aligned prefix of `(q, row)`.
    #[target_feature(enable = "avx2,fma")]
    #[inline]
    unsafe fn tile_cell(acc: __m256d, q: &[f64], row: &[f64], chunks: usize) -> f64 {
        let mut lanes = [0.0f64; 4];
        _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
        finish_fused(lanes, q, row, chunks)
    }

    /// Blocked many-to-many kernel: 2-query × 4-row register tile, eight
    /// independent fused accumulator chains. Each chain executes exactly
    /// the per-pair chunk sequence (sub → fmadd in ascending chunk order),
    /// so every cell is bit-identical to `sq_euclidean_fma256(q, row)`; the
    /// speedup is ILP (eight chains hide the 4-cycle FMA latency) plus
    /// loading each row chunk once for both queries.
    ///
    /// # Safety
    /// Caller guarantees AVX2 + FMA support, `queries.len() % p == 0`,
    /// `block.len() == nr * p`, `out.len() == (queries.len() / p) * nr`,
    /// and `p >= 4`.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn dist_block_fma256(
        queries: &[f64],
        block: &[f64],
        p: usize,
        nr: usize,
        out: &mut [f64],
    ) {
        let nq = queries.len() / p;
        let chunks = p / 4;
        let qp = queries.as_ptr();
        let bp = block.as_ptr();
        let mut qi = 0;
        while qi + 2 <= nq {
            let q0 = &queries[qi * p..(qi + 1) * p];
            let q1 = &queries[(qi + 1) * p..(qi + 2) * p];
            let mut ri = 0;
            while ri + 4 <= nr {
                let mut a00 = _mm256_setzero_pd();
                let mut a01 = _mm256_setzero_pd();
                let mut a02 = _mm256_setzero_pd();
                let mut a03 = _mm256_setzero_pd();
                let mut a10 = _mm256_setzero_pd();
                let mut a11 = _mm256_setzero_pd();
                let mut a12 = _mm256_setzero_pd();
                let mut a13 = _mm256_setzero_pd();
                for c in 0..chunks {
                    let off = 4 * c;
                    let qa = _mm256_loadu_pd(qp.add(qi * p + off));
                    let qb = _mm256_loadu_pd(qp.add((qi + 1) * p + off));
                    let r0 = _mm256_loadu_pd(bp.add(ri * p + off));
                    let d = _mm256_sub_pd(qa, r0);
                    a00 = _mm256_fmadd_pd(d, d, a00);
                    let d = _mm256_sub_pd(qb, r0);
                    a10 = _mm256_fmadd_pd(d, d, a10);
                    let r1 = _mm256_loadu_pd(bp.add((ri + 1) * p + off));
                    let d = _mm256_sub_pd(qa, r1);
                    a01 = _mm256_fmadd_pd(d, d, a01);
                    let d = _mm256_sub_pd(qb, r1);
                    a11 = _mm256_fmadd_pd(d, d, a11);
                    let r2 = _mm256_loadu_pd(bp.add((ri + 2) * p + off));
                    let d = _mm256_sub_pd(qa, r2);
                    a02 = _mm256_fmadd_pd(d, d, a02);
                    let d = _mm256_sub_pd(qb, r2);
                    a12 = _mm256_fmadd_pd(d, d, a12);
                    let r3 = _mm256_loadu_pd(bp.add((ri + 3) * p + off));
                    let d = _mm256_sub_pd(qa, r3);
                    a03 = _mm256_fmadd_pd(d, d, a03);
                    let d = _mm256_sub_pd(qb, r3);
                    a13 = _mm256_fmadd_pd(d, d, a13);
                }
                let r0 = &block[ri * p..(ri + 1) * p];
                let r1 = &block[(ri + 1) * p..(ri + 2) * p];
                let r2 = &block[(ri + 2) * p..(ri + 3) * p];
                let r3 = &block[(ri + 3) * p..(ri + 4) * p];
                out[qi * nr + ri] = tile_cell(a00, q0, r0, chunks);
                out[qi * nr + ri + 1] = tile_cell(a01, q0, r1, chunks);
                out[qi * nr + ri + 2] = tile_cell(a02, q0, r2, chunks);
                out[qi * nr + ri + 3] = tile_cell(a03, q0, r3, chunks);
                out[(qi + 1) * nr + ri] = tile_cell(a10, q1, r0, chunks);
                out[(qi + 1) * nr + ri + 1] = tile_cell(a11, q1, r1, chunks);
                out[(qi + 1) * nr + ri + 2] = tile_cell(a12, q1, r2, chunks);
                out[(qi + 1) * nr + ri + 3] = tile_cell(a13, q1, r3, chunks);
                ri += 4;
            }
            while ri < nr {
                let row = &block[ri * p..(ri + 1) * p];
                out[qi * nr + ri] = sq_euclidean_fma256(q0, row);
                out[(qi + 1) * nr + ri] = sq_euclidean_fma256(q1, row);
                ri += 1;
            }
            qi += 2;
        }
        if qi < nq {
            let q = &queries[qi * p..(qi + 1) * p];
            one_to_many_fma256(q, block, &mut out[qi * nr..(qi + 1) * nr]);
        }
    }

    /// # Safety
    /// Caller guarantees AVX2 support and `b.len() >= a.len()`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn manhattan_avx2(a: &[f64], b: &[f64]) -> f64 {
        let chunks = a.len() / 4;
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let sign = _mm256_set1_pd(-0.0);
        let mut acc = _mm256_setzero_pd();
        for c in 0..chunks {
            let d = _mm256_sub_pd(
                _mm256_loadu_pd(ap.add(4 * c)),
                _mm256_loadu_pd(bp.add(4 * c)),
            );
            acc = _mm256_add_pd(acc, _mm256_andnot_pd(sign, d));
        }
        let mut lanes = [0.0f64; 4];
        _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
        finish_abs(lanes, a, b, chunks)
    }

    /// # Safety
    /// `b.len() >= a.len()` (SSE2 is part of the x86_64 baseline).
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn manhattan_sse2(a: &[f64], b: &[f64]) -> f64 {
        let chunks = a.len() / 4;
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let sign = _mm_set1_pd(-0.0);
        let mut acc01 = _mm_setzero_pd();
        let mut acc23 = _mm_setzero_pd();
        for c in 0..chunks {
            let d0 = _mm_sub_pd(_mm_loadu_pd(ap.add(4 * c)), _mm_loadu_pd(bp.add(4 * c)));
            acc01 = _mm_add_pd(acc01, _mm_andnot_pd(sign, d0));
            let d1 = _mm_sub_pd(
                _mm_loadu_pd(ap.add(4 * c + 2)),
                _mm_loadu_pd(bp.add(4 * c + 2)),
            );
            acc23 = _mm_add_pd(acc23, _mm_andnot_pd(sign, d1));
        }
        let mut lanes = [0.0f64; 4];
        _mm_storeu_pd(lanes.as_mut_ptr(), acc01);
        _mm_storeu_pd(lanes.as_mut_ptr().add(2), acc23);
        finish_abs(lanes, a, b, chunks)
    }

    /// # Safety
    /// Caller guarantees `block.len() == query.len() * out.len()` and AVX2
    /// support.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn manhattan_one_to_many_avx2(query: &[f64], block: &[f64], out: &mut [f64]) {
        let p = query.len();
        for (r, d) in out.iter_mut().enumerate() {
            let row = &block[r * p..(r + 1) * p];
            *d = manhattan_avx2(query, row);
        }
    }

    /// # Safety
    /// Caller guarantees `block.len() == query.len() * out.len()`.
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn manhattan_one_to_many_sse2(query: &[f64], block: &[f64], out: &mut [f64]) {
        let p = query.len();
        for (r, d) in out.iter_mut().enumerate() {
            let row = &block[r * p..(r + 1) * p];
            *d = manhattan_sse2(query, row);
        }
    }
}

/// Euclidean distance between two equal-length vectors.
#[inline]
#[must_use]
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    sq_euclidean(a, b).sqrt()
}

/// Heterogeneous value-difference used by SMOTENC-style samplers: Euclidean
/// over numeric columns plus a fixed `categorical_penalty` for every
/// categorical column whose codes differ. Not on the hot path — stays a
/// sequential scalar loop (its only consumers compare values produced by
/// this same function).
#[must_use]
pub fn mixed_distance(a: &[f64], b: &[f64], categorical: &[bool], categorical_penalty: f64) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), categorical.len());
    let mut acc = 0.0;
    for ((x, y), &is_cat) in a.iter().zip(b.iter()).zip(categorical.iter()) {
        if is_cat {
            if (x - y).abs() > f64::EPSILON {
                acc += categorical_penalty * categorical_penalty;
            }
        } else {
            let d = x - y;
            acc += d * d;
        }
    }
    acc.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_matches_hand_computation() {
        let a = [0.0, 3.0];
        let b = [4.0, 0.0];
        assert!((euclidean(&a, &b) - 5.0).abs() < 1e-12);
        assert!((sq_euclidean(&a, &b) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn zero_distance_to_self() {
        let a = [1.5, -2.0, 7.0];
        assert_eq!(euclidean(&a, &a), 0.0);
    }

    #[test]
    fn every_available_tier_matches_scalar_bits() {
        let a: Vec<f64> = (0..23).map(|i| (i as f64).sin() * 3.0).collect();
        let b: Vec<f64> = (0..23).map(|i| (i as f64).cos() * -2.0).collect();
        let want = sq_euclidean_scalar(&a, &b);
        let want_l1 = manhattan_scalar(&a, &b);
        for tier in Kernel::available() {
            assert_eq!(
                sq_euclidean_with(tier, &a, &b).to_bits(),
                want.to_bits(),
                "{} disagrees with scalar",
                tier.name()
            );
            assert_eq!(
                manhattan_with(tier, &a, &b).to_bits(),
                want_l1.to_bits(),
                "{} L1 disagrees with scalar",
                tier.name()
            );
        }
    }

    #[test]
    fn one_to_many_matches_per_pair_bits() {
        let p = 7;
        let query: Vec<f64> = (0..p).map(|i| i as f64 * 0.3 - 1.0).collect();
        let block: Vec<f64> = (0..5 * p).map(|i| (i as f64 * 0.71).fract()).collect();
        let mut out = vec![0.0; 5];
        for tier in Kernel::available() {
            sq_euclidean_one_to_many_with(tier, &query, &block, &mut out);
            for (r, &d) in out.iter().enumerate() {
                let want = sq_euclidean_with(tier, &query, &block[r * p..(r + 1) * p]);
                assert_eq!(d.to_bits(), want.to_bits(), "{} row {r}", tier.name());
            }
            manhattan_one_to_many_with(tier, &query, &block, &mut out);
            for (r, &d) in out.iter().enumerate() {
                let want = manhattan_with(tier, &query, &block[r * p..(r + 1) * p]);
                assert_eq!(d.to_bits(), want.to_bits(), "{} L1 row {r}", tier.name());
            }
        }
    }

    #[test]
    fn blocked_matches_repeated_one_to_many_bits() {
        for p in [2usize, 4, 7, 16, 33] {
            for (nq, nr) in [(1usize, 1usize), (2, 4), (3, 5), (5, 11), (8, 8)] {
                let queries: Vec<f64> = (0..nq * p).map(|i| (i as f64 * 0.37).sin()).collect();
                let block: Vec<f64> = (0..nr * p).map(|i| (i as f64 * 0.61).cos()).collect();
                let mut blocked = vec![0.0; nq * nr];
                let mut repeated = vec![0.0; nr];
                for tier in Kernel::available() {
                    sq_dist_block_with(tier, &queries, &block, p, &mut blocked);
                    for qi in 0..nq {
                        sq_euclidean_one_to_many_with(
                            tier,
                            &queries[qi * p..(qi + 1) * p],
                            &block,
                            &mut repeated,
                        );
                        for ri in 0..nr {
                            assert_eq!(
                                blocked[qi * nr + ri].to_bits(),
                                repeated[ri].to_bits(),
                                "{} p={p} q={qi} r={ri}",
                                tier.name()
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "row-major block")]
    fn one_to_many_rejects_ragged_block() {
        let mut out = vec![0.0; 2];
        sq_euclidean_one_to_many(&[1.0, 2.0], &[0.0; 3], &mut out);
    }

    #[test]
    #[should_panic(expected = "queries must be row-major")]
    fn blocked_rejects_ragged_queries() {
        let mut out = vec![0.0; 2];
        sq_dist_block(&[0.0; 5], &[0.0; 4], 2, &mut out);
    }

    #[test]
    #[should_panic(expected = "out must be")]
    fn blocked_rejects_wrong_out_len() {
        let mut out = vec![0.0; 3];
        sq_dist_block(&[0.0; 4], &[0.0; 4], 2, &mut out);
    }

    #[test]
    fn one_to_many_zero_width_rows() {
        let mut out = vec![9.0; 4];
        sq_euclidean_one_to_many(&[], &[], &mut out);
        assert_eq!(out, vec![0.0; 4]);
    }

    #[test]
    fn lane_tree_matches_naive_within_tolerance() {
        for n in [1usize, 2, 3, 4, 5, 7, 8, 15, 64, 257] {
            let a: Vec<f64> = (0..n)
                .map(|i| ((i * 37) % 19) as f64 * 0.37 - 3.0)
                .collect();
            let b: Vec<f64> = (0..n)
                .map(|i| ((i * 11) % 23) as f64 * -0.21 + 1.0)
                .collect();
            let lanes = sq_euclidean_scalar(&a, &b);
            let naive = sq_euclidean_naive(&a, &b);
            let tol = f64::EPSILON * naive * (n as f64 + 4.0) + f64::MIN_POSITIVE;
            assert!(
                (lanes - naive).abs() <= tol,
                "n={n}: lanes {lanes} vs naive {naive}"
            );
        }
    }

    #[test]
    fn detection_reports_a_host_tier() {
        let k = active_kernel();
        assert!(Kernel::available().contains(&k), "{k:?}");
        assert!(!k.name().is_empty());
    }

    #[test]
    fn env_parse_accepts_known_tiers_and_rejects_unknown() {
        assert_eq!(kernel_from_env(""), Ok(None));
        assert_eq!(kernel_from_env("auto"), Ok(None));
        assert_eq!(kernel_from_env("FMA"), Ok(Some(Kernel::Fma)));
        assert_eq!(kernel_from_env("avx2"), Ok(Some(Kernel::Avx2)));
        assert_eq!(kernel_from_env("sse2"), Ok(Some(Kernel::Sse2)));
        for alias in ["scalar", "off", "0"] {
            assert_eq!(kernel_from_env(alias), Ok(Some(Kernel::Scalar)));
        }
        let err = kernel_from_env("avx512").unwrap_err();
        assert!(err.contains("fma"), "{err}");
        assert!(err.contains("avx512"), "{err}");
    }

    #[test]
    fn resolve_lands_on_an_available_tier() {
        for tier in [Kernel::Fma, Kernel::Avx2, Kernel::Sse2, Kernel::Scalar] {
            assert!(Kernel::available().contains(&tier.resolve()), "{tier:?}");
        }
    }

    #[test]
    fn metric_parse_round_trips_and_rejects_unknown() {
        for m in Metric::ALL {
            assert_eq!(Metric::parse(m.name()), Ok(m));
            assert_eq!(m.name().parse::<Metric>(), Ok(m));
        }
        assert_eq!(Metric::parse("l2"), Ok(Metric::SqEuclidean));
        assert_eq!(Metric::parse("L1"), Ok(Metric::Manhattan));
        assert!(Metric::parse("hamming").is_err());
    }

    #[test]
    fn manhattan_matches_hand_computation() {
        assert_eq!(manhattan(&[0.0, 3.0], &[4.0, 0.0]), 7.0);
        assert_eq!(Metric::Manhattan.rank_of(7.0), 7.0);
        assert_eq!(Metric::Manhattan.pair(&[0.0, 3.0], &[4.0, 0.0]), 7.0);
    }

    #[test]
    fn cosine_prepares_normalized_rows() {
        let mut rows = vec![3.0, 4.0, 0.0, 0.0, 0.0, 2.0];
        Metric::Cosine.prepare_rows(&mut rows, 2);
        assert_eq!(&rows[..2], &[0.6, 0.8]);
        // Zero rows normalize to themselves.
        assert_eq!(&rows[2..4], &[0.0, 0.0]);
        assert_eq!(&rows[4..6], &[0.0, 1.0]);
        // Identical directions are at distance 0; opposite at chord² = 4.
        let q = Metric::Cosine.prepare_query(&[6.0, 8.0]);
        assert_eq!(Metric::Cosine.pair(&q, &rows[..2]), 0.0);
        let opp = Metric::Cosine.prepare_query(&[-3.0, -4.0]);
        let d = Metric::Cosine.pair(&opp, &rows[..2]);
        assert!((d - 4.0).abs() < 1e-12, "{d}");
    }

    #[test]
    fn calibrated_leaf_size_is_cached_and_in_range() {
        let first = calibrated_leaf_size(16);
        assert!(LEAF_CANDIDATES.contains(&first), "{first}");
        assert_eq!(calibrated_leaf_size(16), first);
        assert_eq!(calibrated_leaf_size(2), DEFAULT_LEAF_SIZE);
    }

    #[test]
    fn mixed_distance_counts_category_mismatches() {
        let a = [1.0, 0.0, 2.0];
        let b = [1.0, 1.0, 3.0];
        let cat = [false, true, true];
        // numeric part identical; two categorical mismatches of penalty 1.
        let d = mixed_distance(&a, &b, &cat, 1.0);
        assert!((d - (2.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn mixed_distance_equal_categories_costs_nothing() {
        let a = [1.0, 5.0];
        let b = [2.0, 5.0];
        let cat = [false, true];
        assert!((mixed_distance(&a, &b, &cat, 10.0) - 1.0).abs() < 1e-12);
    }
}
