//! Train/test splitting and stratified k-fold cross-validation.
//!
//! The paper evaluates with "five-fold cross-validation ... repeated five
//! times". We implement stratified folds (per-class round-robin after a
//! seeded shuffle) so imbalanced datasets like `shuttle` (IR ≈ 4558) keep
//! minority samples in every fold where possible.

use crate::dataset::Dataset;
use crate::rng::rng_from_seed;
use rand::seq::SliceRandom;

/// One cross-validation fold: row indices of the train and test partitions.
#[derive(Debug, Clone)]
pub struct Fold {
    /// Training row indices (into the original dataset).
    pub train: Vec<usize>,
    /// Held-out row indices.
    pub test: Vec<usize>,
}

/// Produces `k` stratified folds of `data` using `seed` for the per-class
/// shuffles.
///
/// Every row appears in exactly one test partition; train partitions are the
/// complements. Classes with fewer than `k` members simply appear in fewer
/// test folds.
///
/// # Panics
/// Panics if `k < 2` or the dataset has fewer than `k` samples.
#[must_use]
pub fn stratified_k_fold(data: &Dataset, k: usize, seed: u64) -> Vec<Fold> {
    assert!(k >= 2, "k-fold needs k >= 2");
    assert!(
        data.n_samples() >= k,
        "cannot make {k} folds from {} samples",
        data.n_samples()
    );
    let mut rng = rng_from_seed(seed);
    let mut test_sets: Vec<Vec<usize>> = vec![Vec::new(); k];
    for mut class_rows in data.class_indices() {
        class_rows.shuffle(&mut rng);
        for (pos, row) in class_rows.into_iter().enumerate() {
            test_sets[pos % k].push(row);
        }
    }
    let n = data.n_samples();
    test_sets
        .into_iter()
        .map(|mut test| {
            test.sort_unstable();
            let mut in_test = vec![false; n];
            for &t in &test {
                in_test[t] = true;
            }
            let train = (0..n).filter(|&i| !in_test[i]).collect();
            Fold { train, test }
        })
        .collect()
}

/// Stratified holdout split: returns `(train, test)` index sets where the
/// test set contains roughly `test_fraction` of every class.
///
/// # Panics
/// Panics if `test_fraction` is not in `(0, 1)`.
#[must_use]
pub fn stratified_holdout(
    data: &Dataset,
    test_fraction: f64,
    seed: u64,
) -> (Vec<usize>, Vec<usize>) {
    assert!(
        test_fraction > 0.0 && test_fraction < 1.0,
        "test_fraction must be in (0,1)"
    );
    let mut rng = rng_from_seed(seed);
    let mut train = Vec::new();
    let mut test = Vec::new();
    for mut class_rows in data.class_indices() {
        class_rows.shuffle(&mut rng);
        let n_test = ((class_rows.len() as f64) * test_fraction).round() as usize;
        let n_test = n_test.min(class_rows.len());
        test.extend_from_slice(&class_rows[..n_test]);
        train.extend_from_slice(&class_rows[n_test..]);
    }
    train.sort_unstable();
    test.sort_unstable();
    (train, test)
}

/// Draws a stratified subsample of at most `max_samples` rows, preserving
/// class proportions (each class keeps at least one row when possible).
/// Used by the harness's `--scale` mode and by the t-SNE figure.
#[must_use]
pub fn stratified_subsample(data: &Dataset, max_samples: usize, seed: u64) -> Vec<usize> {
    if data.n_samples() <= max_samples {
        return (0..data.n_samples()).collect();
    }
    let frac = max_samples as f64 / data.n_samples() as f64;
    let mut rng = rng_from_seed(seed);
    let mut keep = Vec::with_capacity(max_samples);
    for mut class_rows in data.class_indices() {
        if class_rows.is_empty() {
            continue;
        }
        class_rows.shuffle(&mut rng);
        let n_keep = ((class_rows.len() as f64 * frac).round() as usize).clamp(1, class_rows.len());
        keep.extend_from_slice(&class_rows[..n_keep]);
    }
    keep.sort_unstable();
    keep
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(n_per_class: &[usize]) -> Dataset {
        let mut feats = Vec::new();
        let mut labels = Vec::new();
        for (c, &n) in n_per_class.iter().enumerate() {
            for i in 0..n {
                feats.push(c as f64 * 10.0 + i as f64 * 0.01);
                labels.push(c as u32);
            }
        }
        Dataset::from_parts(feats, labels, 1, n_per_class.len())
    }

    #[test]
    fn folds_partition_all_rows() {
        let d = blob(&[20, 10]);
        let folds = stratified_k_fold(&d, 5, 7);
        assert_eq!(folds.len(), 5);
        let mut seen = vec![0usize; d.n_samples()];
        for f in &folds {
            assert_eq!(f.train.len() + f.test.len(), d.n_samples());
            for &t in &f.test {
                seen[t] += 1;
            }
            // no overlap train/test
            for &t in &f.test {
                assert!(!f.train.contains(&t));
            }
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "each row in exactly one test fold"
        );
    }

    #[test]
    fn folds_are_stratified() {
        let d = blob(&[50, 10]);
        for f in stratified_k_fold(&d, 5, 1) {
            let test = d.select(&f.test);
            let counts = test.class_counts();
            assert_eq!(counts[0], 10);
            assert_eq!(counts[1], 2);
        }
    }

    #[test]
    fn tiny_class_still_covered() {
        let d = blob(&[12, 2]);
        let folds = stratified_k_fold(&d, 5, 3);
        let covered: usize = folds
            .iter()
            .map(|f| f.test.iter().filter(|&&i| d.label(i) == 1).count())
            .sum();
        assert_eq!(covered, 2);
    }

    #[test]
    fn deterministic_under_seed() {
        let d = blob(&[30, 30]);
        let a = stratified_k_fold(&d, 5, 99);
        let b = stratified_k_fold(&d, 5, 99);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.test, y.test);
        }
        let c = stratified_k_fold(&d, 5, 100);
        assert!(a.iter().zip(c.iter()).any(|(x, y)| x.test != y.test));
    }

    #[test]
    #[should_panic(expected = "k-fold needs k >= 2")]
    fn rejects_k1() {
        let d = blob(&[10]);
        let _ = stratified_k_fold(&d, 1, 0);
    }

    #[test]
    fn holdout_fractions() {
        let d = blob(&[100, 50]);
        let (train, test) = stratified_holdout(&d, 0.2, 5);
        assert_eq!(test.len(), 30);
        assert_eq!(train.len(), 120);
        let t = d.select(&test);
        assert_eq!(t.class_counts(), vec![20, 10]);
    }

    #[test]
    fn subsample_keeps_minorities() {
        let d = blob(&[1000, 10]);
        let keep = stratified_subsample(&d, 100, 11);
        let s = d.select(&keep);
        assert!(s.class_counts()[1] >= 1);
        assert!(keep.len() <= 110);
    }

    #[test]
    fn subsample_noop_when_small() {
        let d = blob(&[5, 5]);
        assert_eq!(stratified_subsample(&d, 100, 0).len(), 10);
    }
}
