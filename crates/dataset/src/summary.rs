//! Per-column dataset summaries (a `describe()` in the pandas sense).
//!
//! Used by the `gbabs inspect` CLI and handy when importing unknown CSVs:
//! column ranges reveal whether scaling is needed (the distance-based
//! algorithms in this workspace are scale-sensitive), and near-constant
//! columns flag features that cannot influence any granulation.

use crate::dataset::{Dataset, FeatureKind};

/// Summary statistics of one feature column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSummary {
    /// Column index.
    pub index: usize,
    /// Declared kind.
    pub kind: FeatureKind,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Mean value.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Number of distinct values (exact).
    pub distinct: usize,
}

impl ColumnSummary {
    /// True when every value in the column is identical.
    #[must_use]
    pub fn is_constant(&self) -> bool {
        self.distinct <= 1
    }
}

/// Whole-dataset summary.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSummary {
    /// Per-column statistics, in column order.
    pub columns: Vec<ColumnSummary>,
    /// Per-class sample counts.
    pub class_counts: Vec<usize>,
    /// Majority / minority ratio.
    pub imbalance_ratio: f64,
}

/// Computes per-column and class statistics for `data`.
///
/// # Panics
/// Panics on an empty dataset.
#[must_use]
pub fn describe(data: &Dataset) -> DatasetSummary {
    assert!(data.n_samples() > 0, "cannot describe an empty dataset");
    let n = data.n_samples() as f64;
    let columns = (0..data.n_features())
        .map(|j| {
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            let mut sum = 0.0;
            let mut distinct: std::collections::HashSet<u64> = std::collections::HashSet::new();
            for i in 0..data.n_samples() {
                let v = data.value(i, j);
                min = min.min(v);
                max = max.max(v);
                sum += v;
                distinct.insert(v.to_bits());
            }
            let mean = sum / n;
            let var = (0..data.n_samples())
                .map(|i| {
                    let d = data.value(i, j) - mean;
                    d * d
                })
                .sum::<f64>()
                / n;
            ColumnSummary {
                index: j,
                kind: data.feature_kinds()[j],
                min,
                max,
                mean,
                std: var.sqrt(),
                distinct: distinct.len(),
            }
        })
        .collect();
    DatasetSummary {
        columns,
        class_counts: data.class_counts(),
        imbalance_ratio: data.imbalance_ratio(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::DatasetId;

    #[test]
    fn hand_computed_column_stats() {
        let d = Dataset::from_parts(vec![1.0, 2.0, 3.0, 4.0], vec![0, 0, 1, 1], 1, 2);
        let s = describe(&d);
        assert_eq!(s.columns.len(), 1);
        let c = &s.columns[0];
        assert_eq!(c.min, 1.0);
        assert_eq!(c.max, 4.0);
        assert_eq!(c.mean, 2.5);
        assert!((c.std - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(c.distinct, 4);
        assert!(!c.is_constant());
        assert_eq!(s.class_counts, vec![2, 2]);
        assert!((s.imbalance_ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_column_flagged() {
        let d = Dataset::from_parts(vec![7.0, 1.0, 7.0, 2.0, 7.0, 3.0], vec![0, 0, 0], 2, 1);
        let s = describe(&d);
        assert!(s.columns[0].is_constant());
        assert_eq!(s.columns[0].std, 0.0);
        assert!(!s.columns[1].is_constant());
    }

    #[test]
    fn catalog_summary_matches_schema() {
        let d = DatasetId::S3.generate(0.2, 1); // mixed-type surrogate
        let s = describe(&d);
        assert_eq!(s.columns.len(), d.n_features());
        assert_eq!(s.class_counts, d.class_counts());
        for c in &s.columns {
            assert!(c.min <= c.mean && c.mean <= c.max);
            assert!(c.std >= 0.0);
            assert!(c.distinct >= 1);
        }
        // the surrogate declares categorical columns; describe preserves kinds
        let cats = d.categorical_columns();
        for &j in &cats {
            assert_eq!(s.columns[j].kind, FeatureKind::Categorical);
        }
    }

    #[test]
    #[should_panic(expected = "cannot describe an empty dataset")]
    fn empty_dataset_rejected() {
        let d = Dataset::from_parts(Vec::new(), Vec::new(), 1, 1);
        let _ = describe(&d);
    }
}
