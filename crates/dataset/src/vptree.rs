//! VP-tree (vantage-point tree) exact nearest-neighbour index.
//!
//! The paper's conclusion flags GBABS's cost "when facing high-dimensional
//! feature spaces" as future work. KD-trees (see [`crate::kdtree`])
//! degenerate to linear scans beyond a few dozen dimensions because their
//! axis-aligned splits stop pruning; metric trees split on *distance to a
//! vantage point* instead, which keeps pruning whenever the data has low
//! intrinsic dimensionality regardless of the ambient dimension — exactly
//! the regime of the catalog's S12 (128-d gas-sensor) and S13 (256-d USPS)
//! surrogates.
//!
//! The index is exact: queries return the same neighbours as the
//! brute-force reference in [`crate::neighbors`] (property-tested), so it
//! can be swapped under any algorithm in the workspace. Like the KD-tree it
//! implements [`NeighborIndex`]: squared-distance acceptance (so results
//! are bit-identical to the other backends), tombstone deletion, and
//! periodic compaction. Triangle-inequality pruning needs real distances,
//! so each *visited node* pays one `sqrt`; accepted candidates carry their
//! squared distance unchanged. Prune bounds are relaxed by a hair
//! (1 − 1e−12) so `sqrt` rounding can only cause an extra visit, never a
//! missed exact neighbour.
//!
//! Partitions of at most the build-time bucket size (default
//! [`VP_LEAF_SIZE`] = 16, calibrated per width by
//! [`crate::distance::calibrated_leaf_size`]) stop splitting and become
//! bucket leaves, shrinking the arena. For rows of a lane width or more the
//! leaves keep their coordinates in a **leaf-contiguous** buffer so a
//! fully-admitted bucket scan is one batched [`Metric::one_to_many`] call
//! and vantage distances use the dispatched lane-tree kernel; sub-lane
//! datasets scan per-pair with the inline sequential kernel (fastest and
//! canonical at those widths). Bit-identity across backends holds in every
//! case — see `gb_dataset::distance`'s width-keyed contract.
//!
//! Metric support: acceptance runs in kernel space (squared Euclidean,
//! L1, or chord² for cosine over normalized rows); pruning runs in **rank
//! space** (`Metric::rank_of` of the kernel value), where every supported
//! metric satisfies the triangle inequality — `sqrt` for squared
//! Euclidean, identity for Manhattan, chord (`sqrt`) for cosine. Rank
//! bounds convert back to kernel space via [`Metric::plane_gap`] before
//! comparing against the best-k heap.

use crate::dataset::Dataset;
use crate::distance::{
    manhattan, manhattan_dispatched, sq_euclidean, sq_euclidean_dispatched, Metric, LANE_WIDTH,
};
use crate::index::{KBest, NeighborIndex, RangeBound, SqNeighbor, Tombstones};
use crate::neighbors::Neighbor;
use std::cmp::Ordering;

/// A node of the tree (arena-allocated; `u32::MAX` marks "no child").
#[derive(Debug, Clone)]
enum Node {
    /// An interior metric ball around a vantage point.
    Ball {
        /// Row index of the vantage point.
        vantage: u32,
        /// Median distance from the vantage point to the rows in its
        /// subtree; rows with distance ≤ `mu` descend inside, the rest
        /// outside.
        mu: f64,
        inside: u32,
        outside: u32,
    },
    /// A bucket of rows scanned in batched-kernel chunks; partitions of
    /// at most `leaf_size` rows stop splitting.
    Leaf {
        /// Row indices stored at this leaf.
        rows: Vec<u32>,
        /// First slot of this leaf's block in `leaf_points`.
        start: usize,
    },
}

const NONE: u32 = u32::MAX;

/// Default partition size below which a bucket leaf is emitted instead of
/// another vantage split. Matches the KD-tree's default bucket size: the
/// metric pruning gained by splitting a handful of rows never beats one
/// contiguous SIMD sweep over them. [`VpTree::build_with`] accepts a
/// calibrated size instead.
pub const VP_LEAF_SIZE: usize = 16;

/// Rows per batched-kernel call when scanning a leaf block (calibrated
/// leaf sizes can exceed the stack scratch, so leaf scans chunk — same
/// shape as the KD-tree's leaf scan).
const LEAF_BLOCK: usize = 16;

/// Conservative slack on prune bounds: compensates `sqrt` rounding so the
/// traversal can only over-visit, never over-prune.
const PRUNE_SLACK: f64 = 1.0 - 1e-12;

/// An immutable VP-tree over the rows of a dataset snapshot.
#[derive(Debug, Clone)]
pub struct VpTree {
    nodes: Vec<Node>,
    root: u32,
    /// Flattened copy of the indexed points (row-major, original row
    /// order; used when (re)building).
    points: Vec<f64>,
    /// Leaf-contiguous copy of the bucketed rows' coordinates, so leaf
    /// scans run through the batched one-to-many kernel. Rebuilt with the
    /// arena.
    leaf_points: Vec<f64>,
    /// Copied labels (for heterogeneous queries).
    labels: Vec<u32>,
    n_features: usize,
    n_rows: usize,
    leaf_size: usize,
    metric: Metric,
    tombstones: Tombstones,
}

impl VpTree {
    /// Builds the index over every row of `data`.
    ///
    /// Vantage points are chosen deterministically (the first row of each
    /// partition), so identical inputs build identical trees.
    ///
    /// # Panics
    /// Panics if the dataset is empty.
    #[must_use]
    pub fn build(data: &Dataset) -> Self {
        Self::build_with(data, VP_LEAF_SIZE, Metric::SqEuclidean)
    }

    /// Builds the index with an explicit bucket size under `metric`. Cosine
    /// stores an L2-normalized copy of the rows (queries are normalized on
    /// entry), so all tree geometry runs over unit vectors.
    ///
    /// # Panics
    /// Panics if the dataset is empty or `leaf_size == 0`.
    #[must_use]
    pub fn build_with(data: &Dataset, leaf_size: usize, metric: Metric) -> Self {
        assert!(leaf_size > 0, "leaf size must be positive");
        assert!(data.n_samples() > 0, "cannot index an empty dataset");
        let n = data.n_samples();
        let mut points = data.features().to_vec();
        metric.prepare_rows(&mut points, data.n_features());
        let mut tree = Self {
            nodes: Vec::with_capacity(n / leaf_size.max(1) * 2 + 1),
            root: NONE,
            points,
            leaf_points: Vec::with_capacity(data.features().len()),
            labels: data.labels().to_vec(),
            n_features: data.n_features(),
            n_rows: n,
            leaf_size,
            metric,
            tombstones: Tombstones::new(n),
        };
        let mut rows: Vec<u32> = (0..n as u32).collect();
        tree.root = tree.build_rec(&mut rows);
        tree
    }

    /// Rebuilds the node arena over the currently alive rows.
    fn rebuild(&mut self) {
        self.nodes.clear();
        self.leaf_points.clear();
        let mut rows = self.tombstones.begin_rebuild();
        self.root = self.build_rec(&mut rows);
    }

    /// Appends a bucket leaf, copying its rows' coordinates into the
    /// leaf-contiguous buffer. Sub-lane datasets skip the copy — their
    /// leaf scans go per-pair over `points` (see the KD-tree's twin).
    fn push_leaf(&mut self, rows: &[u32]) -> u32 {
        let p = self.n_features;
        let start = self.leaf_points.len() / p.max(1);
        if p >= LANE_WIDTH {
            for &r in rows {
                let base = r as usize * p;
                self.leaf_points
                    .extend_from_slice(&self.points[base..base + p]);
            }
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(Node::Leaf {
            rows: rows.to_vec(),
            start,
        });
        id
    }

    /// Scans one leaf, invoking `hit` with `(row, sq_dist)` for every row
    /// admitted by `pass`. Hybrid like the KD-tree's leaf scan: a fully
    /// admitted bucket takes one batched kernel sweep over its contiguous
    /// block; a filtered bucket (tombstones, heterogeneous-label queries)
    /// pays per-pair calls for admitted rows only. Same kernel tier on both
    /// paths → bit-identical distances.
    fn scan_leaf(
        &self,
        rows: &[u32],
        start: usize,
        query: &[f64],
        pass: impl Fn(u32) -> bool,
        mut hit: impl FnMut(u32, f64),
    ) {
        let p = self.n_features;
        if p < LANE_WIDTH {
            // Sub-lane rows have no vector work to batch: one fused loop
            // of the inline per-pair kernel over `points` (no leaf_points
            // copy exists at these widths). The metric branch is hoisted;
            // cosine shares the squared-Euclidean loop over normalized
            // rows.
            if self.metric == Metric::Manhattan {
                for &r in rows {
                    if pass(r) {
                        let base = r as usize * p;
                        hit(r, manhattan(query, &self.points[base..base + p]));
                    }
                }
            } else {
                for &r in rows {
                    if pass(r) {
                        let base = r as usize * p;
                        hit(r, sq_euclidean(query, &self.points[base..base + p]));
                    }
                }
            }
            return;
        }
        let mut dists = [0.0f64; LEAF_BLOCK];
        let mut admitted = [false; LEAF_BLOCK];
        let mut lo = 0;
        while lo < rows.len() {
            let hi = (lo + LEAF_BLOCK).min(rows.len());
            let block = &rows[lo..hi];
            let mut kept = 0usize;
            for (i, &r) in block.iter().enumerate() {
                admitted[i] = pass(r);
                kept += usize::from(admitted[i]);
            }
            if kept == block.len() {
                self.metric.one_to_many(
                    query,
                    &self.leaf_points[(start + lo) * p..(start + hi) * p],
                    &mut dists[..block.len()],
                );
                for (i, &r) in block.iter().enumerate() {
                    hit(r, dists[i]);
                }
            } else if kept > 0 {
                for (i, &r) in block.iter().enumerate() {
                    if admitted[i] {
                        let base = (start + lo + i) * p;
                        hit(
                            r,
                            self.metric.pair(query, &self.leaf_points[base..base + p]),
                        );
                    }
                }
            }
            lo = hi;
        }
    }

    fn row(&self, r: u32) -> &[f64] {
        let r = r as usize;
        &self.points[r * self.n_features..(r + 1) * self.n_features]
    }

    /// Recursively builds a subtree over `rows` (consumed) and returns its
    /// arena index, or `NONE` for an empty slice.
    fn build_rec(&mut self, rows: &mut [u32]) -> u32 {
        if rows.is_empty() {
            return NONE;
        }
        if rows.len() <= self.leaf_size {
            return self.push_leaf(rows);
        }
        let (&vantage, rest) = rows.split_first().expect("non-empty partition");
        // Partition the remaining rows by rank-space distance-to-vantage
        // around the median: the inside half gets at least one row, and mu
        // is the largest inside distance so "≤ mu" matches the partition
        // exactly.
        let mut sorted: Vec<(f64, u32)> = rest
            .iter()
            .map(|&r| {
                (
                    self.metric
                        .rank_of(self.metric.pair(self.row(vantage), self.row(r))),
                    r,
                )
            })
            .collect();
        sorted.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(Ordering::Equal)
                .then_with(|| a.1.cmp(&b.1))
        });
        let split = (sorted.len() / 2).max(1);
        let mu = sorted[split - 1].0;
        let mut inside_rows: Vec<u32> = sorted[..split].iter().map(|&(_, r)| r).collect();
        let mut outside_rows: Vec<u32> = sorted[split..].iter().map(|&(_, r)| r).collect();
        let id = self.nodes.len() as u32;
        self.nodes.push(Node::Ball {
            vantage,
            mu,
            inside: NONE,
            outside: NONE,
        });
        let inside = self.build_rec(&mut inside_rows);
        let outside = self.build_rec(&mut outside_rows);
        if let Node::Ball {
            inside: i,
            outside: o,
            ..
        } = &mut self.nodes[id as usize]
        {
            *i = inside;
            *o = outside;
        }
        id
    }

    /// Number of indexed rows (alive + deleted).
    #[must_use]
    pub fn len(&self) -> usize {
        self.n_rows
    }

    /// True when the index holds no rows (never: construction panics).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Returns the `k` nearest indexed rows to `query`, sorted by ascending
    /// distance (ties by ascending row index), excluding row `skip` when
    /// given. Exact — identical to the brute-force reference. Tombstoned
    /// rows are excluded.
    #[must_use]
    pub fn k_nearest(&self, query: &[f64], k: usize, skip: Option<usize>) -> Vec<Neighbor> {
        self.k_nearest_sq(query, k, skip)
            .into_iter()
            .map(|h| Neighbor {
                index: h.row,
                distance: self.metric.rank_of(h.sq_dist),
            })
            .collect()
    }

    /// Shared best-k traversal with a row filter. Acceptance happens in
    /// squared space (exact ties by row); pruning uses real distances with
    /// [`PRUNE_SLACK`].
    /// `pair`, `rank`, and `gap` are the metric's kernel, rank map, and
    /// plane-gap bound monomorphized by the public entry points — the
    /// traversal touches one vantage per node and an enum dispatch per
    /// visit is measurable at low widths, so the metric branch happens
    /// once per query (same rationale as the KD-tree traversals).
    #[allow(clippy::too_many_arguments)]
    fn search_filtered(
        &self,
        node: u32,
        query: &[f64],
        skip: Option<usize>,
        keep: &impl Fn(u32) -> bool,
        pair: &impl Fn(&[f64], &[f64]) -> f64,
        rank: &impl Fn(f64) -> f64,
        gap: &impl Fn(f64) -> f64,
        best: &mut KBest,
    ) {
        if node == NONE {
            return;
        }
        let (vantage, mu, inside, outside) = match &self.nodes[node as usize] {
            Node::Leaf { rows, start } => {
                self.scan_leaf(
                    rows,
                    *start,
                    query,
                    |r| self.tombstones.is_alive(r as usize) && skip != Some(r as usize) && keep(r),
                    |r, d| best.insert(d, r as usize),
                );
                return;
            }
            Node::Ball {
                vantage,
                mu,
                inside,
                outside,
            } => (*vantage, *mu, *inside, *outside),
        };
        let d_sq = pair(query, self.row(vantage));
        if self.tombstones.is_alive(vantage as usize)
            && skip != Some(vantage as usize)
            && keep(vantage)
        {
            best.insert(d_sq, vantage as usize);
        }
        let d = rank(d_sq);
        // Visit the likelier side first, prune the other with the
        // triangle-inequality bound (valid in rank space for every
        // supported metric).
        let (first, second, second_bound) = if d <= mu {
            (inside, outside, mu - d)
        } else {
            (outside, inside, d - mu)
        };
        self.search_filtered(first, query, skip, keep, pair, rank, gap, best);
        let b = second_bound.max(0.0) * PRUNE_SLACK;
        if gap(b) <= best.worst_sq() {
            self.search_filtered(second, query, skip, keep, pair, rank, gap, best);
        }
    }

    /// `pair` and `rank` are monomorphized by [`NeighborIndex::range_sq`]
    /// — see [`Self::search_filtered`].
    #[allow(clippy::too_many_arguments)]
    fn range_rec(
        &self,
        node: u32,
        query: &[f64],
        sq_bound: f64,
        radius: f64,
        bound: RangeBound,
        skip: Option<usize>,
        pair: &impl Fn(&[f64], &[f64]) -> f64,
        rank: &impl Fn(f64) -> f64,
        out: &mut Vec<SqNeighbor>,
    ) {
        if node == NONE {
            return;
        }
        let (vantage, mu, inside, outside) = match &self.nodes[node as usize] {
            Node::Leaf { rows, start } => {
                self.scan_leaf(
                    rows,
                    *start,
                    query,
                    |r| self.tombstones.is_alive(r as usize) && skip != Some(r as usize),
                    |r, d| {
                        if bound.admits(d, sq_bound) {
                            out.push(SqNeighbor {
                                row: r as usize,
                                sq_dist: d,
                            });
                        }
                    },
                );
                return;
            }
            Node::Ball {
                vantage,
                mu,
                inside,
                outside,
            } => (*vantage, *mu, *inside, *outside),
        };
        let d_sq = pair(query, self.row(vantage));
        if self.tombstones.is_alive(vantage as usize)
            && skip != Some(vantage as usize)
            && bound.admits(d_sq, sq_bound)
        {
            out.push(SqNeighbor {
                row: vantage as usize,
                sq_dist: d_sq,
            });
        }
        let d = rank(d_sq);
        // Inside subtree: distances to vantage ≤ mu, so the minimum
        // possible distance to the query is d − mu; outside: mu − d.
        let inside_min = ((d - mu).max(0.0)) * PRUNE_SLACK;
        if inside_min <= radius {
            self.range_rec(
                inside, query, sq_bound, radius, bound, skip, pair, rank, out,
            );
        }
        let outside_min = ((mu - d).max(0.0)) * PRUNE_SLACK;
        if outside_min <= radius {
            self.range_rec(
                outside, query, sq_bound, radius, bound, skip, pair, rank, out,
            );
        }
    }
}

impl NeighborIndex for VpTree {
    fn n_rows(&self) -> usize {
        self.n_rows
    }

    fn metric(&self) -> Metric {
        self.metric
    }

    fn n_alive(&self) -> usize {
        self.tombstones.n_alive()
    }

    fn is_alive(&self, row: usize) -> bool {
        self.tombstones.is_alive(row)
    }

    fn delete(&mut self, row: usize) -> bool {
        match self.tombstones.delete(row) {
            None => false,
            Some(needs_rebuild) => {
                if needs_rebuild {
                    self.rebuild();
                }
                true
            }
        }
    }

    fn k_nearest_sq(&self, query: &[f64], k: usize, skip: Option<usize>) -> Vec<SqNeighbor> {
        assert_eq!(query.len(), self.n_features, "query width mismatch");
        if k == 0 {
            return Vec::new();
        }
        let query = self.metric.prepare_query(query);
        let mut best = KBest::new(k);
        // Branch on the metric once per query; each arm must match
        // `Metric::{pair, rank_of, plane_gap}` exactly so answers stay
        // bit-identical with the enum-dispatched forms.
        match self.metric {
            Metric::Manhattan => self.search_filtered(
                self.root,
                &query,
                skip,
                &|_| true,
                &manhattan_dispatched,
                &|d: f64| d,
                &|d: f64| d.abs(),
                &mut best,
            ),
            Metric::SqEuclidean | Metric::Cosine => self.search_filtered(
                self.root,
                &query,
                skip,
                &|_| true,
                &sq_euclidean_dispatched,
                &|d: f64| d.sqrt(),
                &|d: f64| d * d,
                &mut best,
            ),
        }
        best.into_sorted()
    }

    fn nearest_heterogeneous_sq(
        &self,
        query: &[f64],
        label: u32,
        skip: Option<usize>,
    ) -> Option<SqNeighbor> {
        let query = self.metric.prepare_query(query);
        let mut best = KBest::new(1);
        let keep = |r: u32| self.labels[r as usize] != label;
        match self.metric {
            Metric::Manhattan => self.search_filtered(
                self.root,
                &query,
                skip,
                &keep,
                &manhattan_dispatched,
                &|d: f64| d,
                &|d: f64| d.abs(),
                &mut best,
            ),
            Metric::SqEuclidean | Metric::Cosine => self.search_filtered(
                self.root,
                &query,
                skip,
                &keep,
                &sq_euclidean_dispatched,
                &|d: f64| d.sqrt(),
                &|d: f64| d * d,
                &mut best,
            ),
        }
        best.into_sorted().first().copied()
    }

    fn range_sq(
        &self,
        query: &[f64],
        sq_bound: f64,
        bound: RangeBound,
        skip: Option<usize>,
    ) -> Vec<SqNeighbor> {
        assert_eq!(query.len(), self.n_features, "query width mismatch");
        let mut out = Vec::new();
        let radius = if sq_bound == f64::INFINITY {
            f64::INFINITY
        } else {
            self.metric.rank_of(sq_bound.max(0.0))
        };
        let query = self.metric.prepare_query(query);
        match self.metric {
            Metric::Manhattan => self.range_rec(
                self.root,
                &query,
                sq_bound,
                radius,
                bound,
                skip,
                &manhattan_dispatched,
                &|d: f64| d,
                &mut out,
            ),
            Metric::SqEuclidean | Metric::Cosine => self.range_rec(
                self.root,
                &query,
                sq_bound,
                radius,
                bound,
                skip,
                &sq_euclidean_dispatched,
                &|d: f64| d.sqrt(),
                &mut out,
            ),
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::DatasetId;
    use crate::neighbors::k_nearest as brute_k_nearest;
    use crate::rng::rng_from_seed;
    use rand::Rng;

    fn random_data(n: usize, p: usize, seed: u64) -> Dataset {
        let mut rng = rng_from_seed(seed);
        let feats: Vec<f64> = (0..n * p).map(|_| rng.gen_range(-10.0..10.0)).collect();
        let labels: Vec<u32> = (0..n).map(|_| rng.gen_range(0..3)).collect();
        Dataset::from_parts(feats, labels, p, 3)
    }

    /// Distances must match brute force exactly; indices may differ only
    /// within equidistant groups.
    fn assert_matches_brute(data: &Dataset, tree: &VpTree, k: usize, queries: usize, seed: u64) {
        let mut rng = rng_from_seed(seed);
        for _ in 0..queries {
            let qi = rng.gen_range(0..data.n_samples());
            let skip = if rng.gen_bool(0.5) { Some(qi) } else { None };
            let query = data.row(qi).to_vec();
            let got = tree.k_nearest(&query, k, skip);
            let want = brute_k_nearest(data, &query, k, skip);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(want.iter()) {
                assert!(
                    (g.distance - w.distance).abs() < 1e-9,
                    "distance mismatch: {} vs {}",
                    g.distance,
                    w.distance
                );
            }
        }
    }

    #[test]
    fn exact_on_low_dimensional_data() {
        let data = random_data(300, 3, 1);
        let tree = VpTree::build(&data);
        assert_eq!(tree.len(), 300);
        assert_matches_brute(&data, &tree, 5, 40, 2);
    }

    #[test]
    fn exact_on_high_dimensional_data() {
        // the regime KD-trees lose and VP-trees are built for
        let data = random_data(200, 64, 3);
        let tree = VpTree::build(&data);
        assert_matches_brute(&data, &tree, 7, 30, 4);
    }

    #[test]
    fn exact_on_catalog_surrogate() {
        let data = DatasetId::S5.generate(0.05, 5);
        let tree = VpTree::build(&data);
        assert_matches_brute(&data, &tree, 5, 40, 6);
    }

    #[test]
    fn exact_with_duplicate_points() {
        // heavy ties stress the tie-breaking rules
        let mut feats = Vec::new();
        for i in 0..60 {
            feats.push(f64::from(i % 5));
        }
        let data = Dataset::from_parts(feats, vec![0; 60], 1, 1);
        let tree = VpTree::build(&data);
        assert_matches_brute(&data, &tree, 8, 30, 7);
    }

    #[test]
    fn k_larger_than_n_returns_all() {
        let data = random_data(10, 2, 8);
        let tree = VpTree::build(&data);
        let hits = tree.k_nearest(data.row(0), 50, None);
        assert_eq!(hits.len(), 10);
        let hits_skip = tree.k_nearest(data.row(0), 50, Some(0));
        assert_eq!(hits_skip.len(), 9);
        assert!(hits_skip.iter().all(|h| h.index != 0));
    }

    #[test]
    fn k_zero_is_empty() {
        let data = random_data(10, 2, 9);
        let tree = VpTree::build(&data);
        assert!(tree.k_nearest(data.row(0), 0, None).is_empty());
    }

    #[test]
    fn single_row_tree() {
        let data = Dataset::from_parts(vec![1.0, 2.0], vec![0], 2, 1);
        let tree = VpTree::build(&data);
        let hits = tree.k_nearest(&[0.0, 0.0], 3, None);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].index, 0);
    }

    #[test]
    fn results_are_sorted() {
        let data = random_data(120, 4, 10);
        let tree = VpTree::build(&data);
        let hits = tree.k_nearest(&[0.0; 4], 15, None);
        assert!(hits.windows(2).all(|w| w[0].distance <= w[1].distance));
    }

    #[test]
    #[should_panic(expected = "cannot index an empty dataset")]
    fn empty_dataset_rejected() {
        let data = Dataset::from_parts(Vec::new(), Vec::new(), 2, 1);
        let _ = VpTree::build(&data);
    }

    #[test]
    fn tombstones_excluded_and_compaction_preserves_results() {
        let data = random_data(400, 5, 11);
        let mut tree = VpTree::build(&data);
        for r in 0..300 {
            assert!(NeighborIndex::delete(&mut tree, r));
        }
        assert_eq!(tree.n_alive(), 100);
        let survivors: Vec<usize> = (300..400).collect();
        let sub = data.select(&survivors);
        for qi in [0usize, 37, 399] {
            let got = tree.k_nearest(data.row(qi), 8, None);
            let want = brute_k_nearest(&sub, data.row(qi), 8, None);
            assert_eq!(
                got.iter().map(|h| h.index - 300).collect::<Vec<_>>(),
                want.iter().map(|h| h.index).collect::<Vec<_>>()
            );
        }
    }
}
