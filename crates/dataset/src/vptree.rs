//! VP-tree (vantage-point tree) exact nearest-neighbour index.
//!
//! The paper's conclusion flags GBABS's cost "when facing high-dimensional
//! feature spaces" as future work. KD-trees (see [`crate::kdtree`])
//! degenerate to linear scans beyond a few dozen dimensions because their
//! axis-aligned splits stop pruning; metric trees split on *distance to a
//! vantage point* instead, which keeps pruning whenever the data has low
//! intrinsic dimensionality regardless of the ambient dimension — exactly
//! the regime of the catalog's S12 (128-d gas-sensor) and S13 (256-d USPS)
//! surrogates.
//!
//! The index is exact: queries return the same neighbours as the
//! brute-force reference in [`crate::neighbors`] (property-tested), so it
//! can be swapped under any algorithm in the workspace.

use crate::dataset::Dataset;
use crate::distance::euclidean;
use crate::neighbors::Neighbor;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A node of the tree (arena-allocated; `u32::MAX` marks "no child").
#[derive(Debug, Clone)]
struct Node {
    /// Row index of the vantage point.
    vantage: u32,
    /// Median distance from the vantage point to the rows in its subtree;
    /// rows with distance ≤ `mu` descend inside, the rest outside.
    mu: f64,
    inside: u32,
    outside: u32,
}

const NONE: u32 = u32::MAX;

/// An immutable VP-tree over the rows of a dataset snapshot.
#[derive(Debug, Clone)]
pub struct VpTree {
    nodes: Vec<Node>,
    root: u32,
    /// Flattened copy of the indexed points (row-major).
    points: Vec<f64>,
    n_features: usize,
    n_rows: usize,
}

/// Max-heap entry for the k-best candidate set.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    dist: f64,
    row: u32,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.row == other.row
    }
}
impl Eq for Candidate {}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist
            .partial_cmp(&other.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.row.cmp(&other.row))
    }
}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl VpTree {
    /// Builds the index over every row of `data`.
    ///
    /// Vantage points are chosen deterministically (the first row of each
    /// partition), so identical inputs build identical trees.
    ///
    /// # Panics
    /// Panics if the dataset is empty.
    #[must_use]
    pub fn build(data: &Dataset) -> Self {
        assert!(data.n_samples() > 0, "cannot index an empty dataset");
        let mut tree = Self {
            nodes: Vec::with_capacity(data.n_samples()),
            root: NONE,
            points: data.features().to_vec(),
            n_features: data.n_features(),
            n_rows: data.n_samples(),
        };
        let mut rows: Vec<u32> = (0..data.n_samples() as u32).collect();
        tree.root = tree.build_rec(&mut rows);
        tree
    }

    fn row(&self, r: u32) -> &[f64] {
        let r = r as usize;
        &self.points[r * self.n_features..(r + 1) * self.n_features]
    }

    /// Recursively builds a subtree over `rows` (consumed) and returns its
    /// arena index, or `NONE` for an empty slice.
    fn build_rec(&mut self, rows: &mut [u32]) -> u32 {
        let Some((&vantage, rest)) = rows.split_first() else {
            return NONE;
        };
        if rest.is_empty() {
            let id = self.nodes.len() as u32;
            self.nodes.push(Node {
                vantage,
                mu: 0.0,
                inside: NONE,
                outside: NONE,
            });
            return id;
        }
        // Partition the remaining rows by distance-to-vantage around the
        // median: the inside half gets at least one row, and mu is the
        // largest inside distance so "≤ mu" matches the partition exactly.
        let mut sorted: Vec<(f64, u32)> = rest
            .iter()
            .map(|&r| (euclidean(self.row(vantage), self.row(r)), r))
            .collect();
        sorted.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(Ordering::Equal)
                .then_with(|| a.1.cmp(&b.1))
        });
        let split = (sorted.len() / 2).max(1);
        let mu = sorted[split - 1].0;
        let mut inside_rows: Vec<u32> = sorted[..split].iter().map(|&(_, r)| r).collect();
        let mut outside_rows: Vec<u32> = sorted[split..].iter().map(|&(_, r)| r).collect();
        let id = self.nodes.len() as u32;
        self.nodes.push(Node {
            vantage,
            mu,
            inside: NONE,
            outside: NONE,
        });
        let inside = self.build_rec(&mut inside_rows);
        let outside = self.build_rec(&mut outside_rows);
        self.nodes[id as usize].inside = inside;
        self.nodes[id as usize].outside = outside;
        id
    }

    /// Number of indexed rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n_rows
    }

    /// True when the index holds no rows (never: construction panics).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Returns the `k` nearest indexed rows to `query`, sorted by ascending
    /// distance (ties by ascending row index), excluding row `skip` when
    /// given. Exact — identical to the brute-force reference.
    #[must_use]
    pub fn k_nearest(&self, query: &[f64], k: usize, skip: Option<usize>) -> Vec<Neighbor> {
        assert_eq!(query.len(), self.n_features, "query width mismatch");
        if k == 0 {
            return Vec::new();
        }
        let mut best: BinaryHeap<Candidate> = BinaryHeap::with_capacity(k + 1);
        let mut tau = f64::INFINITY;
        self.search(self.root, query, k, skip, &mut best, &mut tau);
        let mut hits: Vec<Neighbor> = best
            .into_iter()
            .map(|c| Neighbor {
                index: c.row as usize,
                distance: c.dist,
            })
            .collect();
        hits.sort_by(|a, b| {
            a.distance
                .partial_cmp(&b.distance)
                .unwrap_or(Ordering::Equal)
                .then_with(|| a.index.cmp(&b.index))
        });
        hits
    }

    fn search(
        &self,
        node: u32,
        query: &[f64],
        k: usize,
        skip: Option<usize>,
        best: &mut BinaryHeap<Candidate>,
        tau: &mut f64,
    ) {
        if node == NONE {
            return;
        }
        let n = &self.nodes[node as usize];
        let d = euclidean(query, self.row(n.vantage));
        if skip != Some(n.vantage as usize) {
            // Accept when the heap has room, the hit strictly improves, or it
            // ties the current worst with a smaller row index (matching the
            // brute-force tie rule).
            let accept = best.len() < k
                || d < *tau
                || (d == *tau && best.peek().is_some_and(|t| n.vantage < t.row));
            if accept {
                best.push(Candidate {
                    dist: d,
                    row: n.vantage,
                });
                if best.len() > k {
                    best.pop();
                }
                if best.len() == k {
                    *tau = best.peek().expect("non-empty").dist;
                }
            }
        }
        // Visit the likelier side first, prune the other with the
        // triangle-inequality bound.
        let (first, second) = if d <= n.mu {
            (n.inside, n.outside)
        } else {
            (n.outside, n.inside)
        };
        self.search(first, query, k, skip, best, tau);
        let bound = (d - n.mu).abs();
        if best.len() < k || bound <= *tau {
            self.search(second, query, k, skip, best, tau);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::DatasetId;
    use crate::neighbors::k_nearest as brute_k_nearest;
    use crate::rng::rng_from_seed;
    use rand::Rng;

    fn random_data(n: usize, p: usize, seed: u64) -> Dataset {
        let mut rng = rng_from_seed(seed);
        let feats: Vec<f64> = (0..n * p).map(|_| rng.gen_range(-10.0..10.0)).collect();
        let labels: Vec<u32> = (0..n).map(|_| rng.gen_range(0..3)).collect();
        Dataset::from_parts(feats, labels, p, 3)
    }

    /// Distances must match brute force exactly; indices may differ only
    /// within equidistant groups.
    fn assert_matches_brute(data: &Dataset, tree: &VpTree, k: usize, queries: usize, seed: u64) {
        let mut rng = rng_from_seed(seed);
        for _ in 0..queries {
            let qi = rng.gen_range(0..data.n_samples());
            let skip = if rng.gen_bool(0.5) { Some(qi) } else { None };
            let query = data.row(qi).to_vec();
            let got = tree.k_nearest(&query, k, skip);
            let want = brute_k_nearest(data, &query, k, skip);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(want.iter()) {
                assert!(
                    (g.distance - w.distance).abs() < 1e-9,
                    "distance mismatch: {} vs {}",
                    g.distance,
                    w.distance
                );
            }
        }
    }

    #[test]
    fn exact_on_low_dimensional_data() {
        let data = random_data(300, 3, 1);
        let tree = VpTree::build(&data);
        assert_eq!(tree.len(), 300);
        assert_matches_brute(&data, &tree, 5, 40, 2);
    }

    #[test]
    fn exact_on_high_dimensional_data() {
        // the regime KD-trees lose and VP-trees are built for
        let data = random_data(200, 64, 3);
        let tree = VpTree::build(&data);
        assert_matches_brute(&data, &tree, 7, 30, 4);
    }

    #[test]
    fn exact_on_catalog_surrogate() {
        let data = DatasetId::S5.generate(0.05, 5);
        let tree = VpTree::build(&data);
        assert_matches_brute(&data, &tree, 5, 40, 6);
    }

    #[test]
    fn exact_with_duplicate_points() {
        // heavy ties stress the tie-breaking rules
        let mut feats = Vec::new();
        for i in 0..60 {
            feats.push(f64::from(i % 5));
        }
        let data = Dataset::from_parts(feats, vec![0; 60], 1, 1);
        let tree = VpTree::build(&data);
        assert_matches_brute(&data, &tree, 8, 30, 7);
    }

    #[test]
    fn k_larger_than_n_returns_all() {
        let data = random_data(10, 2, 8);
        let tree = VpTree::build(&data);
        let hits = tree.k_nearest(data.row(0), 50, None);
        assert_eq!(hits.len(), 10);
        let hits_skip = tree.k_nearest(data.row(0), 50, Some(0));
        assert_eq!(hits_skip.len(), 9);
        assert!(hits_skip.iter().all(|h| h.index != 0));
    }

    #[test]
    fn k_zero_is_empty() {
        let data = random_data(10, 2, 9);
        let tree = VpTree::build(&data);
        assert!(tree.k_nearest(data.row(0), 0, None).is_empty());
    }

    #[test]
    fn single_row_tree() {
        let data = Dataset::from_parts(vec![1.0, 2.0], vec![0], 2, 1);
        let tree = VpTree::build(&data);
        let hits = tree.k_nearest(&[0.0, 0.0], 3, None);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].index, 0);
    }

    #[test]
    fn results_are_sorted() {
        let data = random_data(120, 4, 10);
        let tree = VpTree::build(&data);
        let hits = tree.k_nearest(&[0.0; 4], 15, None);
        assert!(hits
            .windows(2)
            .all(|w| w[0].distance <= w[1].distance));
    }

    #[test]
    #[should_panic(expected = "cannot index an empty dataset")]
    fn empty_dataset_rejected() {
        let data = Dataset::from_parts(Vec::new(), Vec::new(), 2, 1);
        let _ = VpTree::build(&data);
    }
}
