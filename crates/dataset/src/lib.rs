//! # gb-dataset
//!
//! Dataset substrate for the GBABS reproduction (ICDE 2025, arXiv:2506.02366):
//! a dense labelled [`Dataset`] type, distance kernels, brute-force
//! neighbour search, stratified splitting, feature scaling, class-noise
//! injection, and a synthetic catalog standing in for the paper's 13 public
//! datasets.
//!
//! Everything downstream — the granular-ball algorithms, the baseline
//! samplers, the classifiers — is written against this crate.
//!
//! ```
//! use gb_dataset::catalog::DatasetId;
//! use gb_dataset::noise::inject_class_noise;
//!
//! let banana = DatasetId::S5.generate(0.05, 42);
//! assert_eq!(banana.n_features(), 2);
//! let (noisy, flipped) = inject_class_noise(&banana, 0.10, 7);
//! assert_eq!(flipped.len(), (noisy.n_samples() as f64 * 0.10).round() as usize);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod catalog;
pub mod dataset;
pub mod distance;
pub mod encode;
pub mod index;
pub mod io;
pub mod kdtree;
pub mod neighbors;
pub mod noise;
pub mod rng;
pub mod scale;
pub mod split;
pub mod summary;
pub mod synth;
pub mod vptree;

pub use dataset::{Dataset, DatasetError, FeatureKind};
pub use distance::{active_kernel, validate_simd_env, Kernel, Metric, CONTRACT_VERSION};
pub use index::{GranulationBackend, NeighborIndex, SqNeighbor};
pub use neighbors::Neighbor;
