//! KD-tree exact nearest-neighbour index.
//!
//! The brute-force search in [`crate::neighbors`] is the reference
//! implementation; this median-split KD-tree gives the same exact results
//! with `O(log n)`-ish queries on low/medium-dimensional data (the regime of
//! most catalog datasets). High-dimensional data (S12, S13) degrades toward
//! a linear scan, as KD-trees do — callers choose per use case (or let
//! [`crate::index::GranulationBackend::Auto`] choose).
//!
//! The tree also implements [`NeighborIndex`]: squared-distance queries,
//! label-aware nearest-heterogeneous search, range queries, and **tombstone
//! deletion** with periodic compaction — once the number of deletions since
//! the last (re)build exceeds the number of still-alive rows, the tree is
//! rebuilt over the survivors so query cost tracks `|alive|`, not the
//! original `n`. Results are unaffected (rebuilds only change traversal
//! order, and queries are exact).
//!
//! For rows of a lane width or more, leaf buckets keep a
//! **leaf-contiguous** copy of their rows' coordinates so a fully-admitted
//! leaf scan is one batched [`Metric::one_to_many`] call — the SIMD
//! kernel streams a gap-free block instead of chasing row indices — while
//! filtered leaves pay per-pair [`Metric::pair`] calls for admitted rows
//! only (same lane tree → same bits). Sub-lane datasets skip the copy and
//! scan per-pair with the inline sequential kernel, which is both the
//! fastest and the canonical order at those widths. Cross-backend
//! bit-identity is preserved in every case.
//!
//! Splitting-plane pruning is metric-aware: the gap to a splitting plane is
//! `diff²` in squared-Euclidean kernel space, `|diff|` in Manhattan, and
//! `diff²` again for cosine (chord² on the unit sphere still obeys the
//! Euclidean plane bound since normalized rows live in the same ambient
//! space). Cosine builds index a **normalized copy** of the rows and
//! normalize each query on entry, so the tree's geometry is plain
//! Euclidean over unit vectors.

use crate::dataset::Dataset;
use crate::distance::{manhattan, sq_euclidean, Metric, LANE_WIDTH};
use crate::index::{KBest, NeighborIndex, RangeBound, SqNeighbor, Tombstones};
use crate::neighbors::Neighbor;

/// A node of the tree (arena-allocated).
#[derive(Debug, Clone)]
enum Node {
    Leaf {
        /// Row indices stored at this leaf.
        rows: Vec<u32>,
        /// First slot of this leaf's contiguous block in `leaf_points`
        /// (slot `start + i` holds the coordinates of `rows[i]`).
        start: usize,
    },
    Split {
        /// Splitting dimension.
        dim: usize,
        /// Splitting value (rows with `value <= split` go left).
        value: f64,
        left: usize,
        right: usize,
    },
}

/// Rows per batched-kernel call when scanning a leaf block (degenerate
/// leaves can exceed `leaf_size`, so leaf scans chunk). Matches the default
/// `leaf_size`: the scratch buffers live on the stack and are re-zeroed per
/// leaf visit, so oversizing them costs more than the chunking saves.
const LEAF_BLOCK: usize = 16;

/// An immutable KD-tree over the rows of a dataset snapshot.
#[derive(Debug, Clone)]
pub struct KdTree {
    nodes: Vec<Node>,
    /// Flattened copy of the indexed points (row-major, original row order;
    /// used when (re)building).
    points: Vec<f64>,
    /// Leaf-contiguous copy of the points: every leaf's rows occupy one
    /// gap-free row-major block, so leaf scans run through the batched
    /// one-to-many kernel instead of per-pair calls. Rebuilt with the arena.
    leaf_points: Vec<f64>,
    /// Copied labels (for heterogeneous queries).
    labels: Vec<u32>,
    n_features: usize,
    n_rows: usize,
    leaf_size: usize,
    metric: Metric,
    tombstones: Tombstones,
}

impl KdTree {
    /// Builds the index over every row of `data`. `leaf_size` controls the
    /// bucket size (16 is a good default; see
    /// [`crate::distance::calibrated_leaf_size`] for the measured choice).
    ///
    /// # Panics
    /// Panics if the dataset is empty or `leaf_size == 0`.
    #[must_use]
    pub fn build(data: &Dataset, leaf_size: usize) -> Self {
        Self::build_with(data, leaf_size, Metric::SqEuclidean)
    }

    /// Builds the index under `metric`. Cosine stores an L2-normalized copy
    /// of the rows (queries are normalized on entry), so tree construction
    /// and pruning always run in plain Euclidean / L1 geometry.
    ///
    /// # Panics
    /// Panics if the dataset is empty or `leaf_size == 0`.
    #[must_use]
    pub fn build_with(data: &Dataset, leaf_size: usize, metric: Metric) -> Self {
        assert!(leaf_size > 0, "leaf size must be positive");
        assert!(data.n_samples() > 0, "cannot index an empty dataset");
        let n = data.n_samples();
        let mut points = data.features().to_vec();
        metric.prepare_rows(&mut points, data.n_features());
        let mut tree = Self {
            nodes: Vec::new(),
            points,
            leaf_points: Vec::with_capacity(data.features().len()),
            labels: data.labels().to_vec(),
            n_features: data.n_features(),
            n_rows: n,
            leaf_size,
            metric,
            tombstones: Tombstones::new(n),
        };
        let mut rows: Vec<u32> = (0..n as u32).collect();
        tree.build_node(&mut rows);
        tree
    }

    /// Rebuilds the node arena over the currently alive rows.
    fn rebuild(&mut self) {
        self.nodes.clear();
        self.leaf_points.clear();
        let mut rows = self.tombstones.begin_rebuild();
        if rows.is_empty() {
            self.push_leaf(&[]);
        } else {
            self.build_node(&mut rows);
        }
    }

    fn coord(&self, row: u32, dim: usize) -> f64 {
        self.points[row as usize * self.n_features + dim]
    }

    /// Appends a leaf node, copying its rows' coordinates into the
    /// leaf-contiguous buffer. Sub-lane datasets skip the copy entirely:
    /// their leaf scans go per-pair over `points` (the batched kernel has
    /// no vector work below one lane width), so the second buffer would be
    /// pure cache pressure.
    fn push_leaf(&mut self, rows: &[u32]) -> usize {
        let p = self.n_features;
        let start = self.leaf_points.len() / p.max(1);
        if p >= LANE_WIDTH {
            for &r in rows {
                let base = r as usize * p;
                self.leaf_points
                    .extend_from_slice(&self.points[base..base + p]);
            }
        }
        let idx = self.nodes.len();
        self.nodes.push(Node::Leaf {
            rows: rows.to_vec(),
            start,
        });
        idx
    }

    fn build_node(&mut self, rows: &mut [u32]) -> usize {
        if rows.len() <= self.leaf_size {
            return self.push_leaf(rows);
        }
        // pick the dimension with the largest spread
        let mut best_dim = 0;
        let mut best_spread = -1.0;
        for d in 0..self.n_features {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &r in rows.iter() {
                let v = self.coord(r, d);
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if hi - lo > best_spread {
                best_spread = hi - lo;
                best_dim = d;
            }
        }
        if best_spread <= 0.0 {
            // all points identical: cannot split
            return self.push_leaf(rows);
        }
        let mid = rows.len() / 2;
        rows.select_nth_unstable_by(mid, |&a, &b| {
            self.coord(a, best_dim)
                .partial_cmp(&self.coord(b, best_dim))
                .expect("finite coords")
                .then_with(|| a.cmp(&b))
        });
        let split_value = self.coord(rows[mid], best_dim);
        // guard: ensure both sides non-empty under `<=` routing
        let n_left = rows
            .iter()
            .filter(|&&r| self.coord(r, best_dim) <= split_value)
            .count();
        if n_left == rows.len() {
            // split value is the max; nudge: put strictly-less on the left
            let prev = rows
                .iter()
                .map(|&r| self.coord(r, best_dim))
                .filter(|&v| v < split_value)
                .fold(f64::NEG_INFINITY, f64::max);
            if prev == f64::NEG_INFINITY {
                return self.push_leaf(rows);
            }
            return self.build_node_with(rows, best_dim, prev);
        }
        self.build_node_with(rows, best_dim, split_value)
    }

    fn build_node_with(&mut self, rows: &mut [u32], dim: usize, value: f64) -> usize {
        let mut left_rows: Vec<u32> = Vec::new();
        let mut right_rows: Vec<u32> = Vec::new();
        for &r in rows.iter() {
            if self.coord(r, dim) <= value {
                left_rows.push(r);
            } else {
                right_rows.push(r);
            }
        }
        debug_assert!(!left_rows.is_empty() && !right_rows.is_empty());
        let idx = self.nodes.len();
        // placeholder, replaced with the Split below (no leaf_points copy)
        self.nodes.push(Node::Leaf {
            rows: Vec::new(),
            start: 0,
        });
        let left = self.build_node(&mut left_rows);
        let right = self.build_node(&mut right_rows);
        self.nodes[idx] = Node::Split {
            dim,
            value,
            left,
            right,
        };
        idx
    }

    /// Number of indexed rows (alive + deleted).
    #[must_use]
    pub fn len(&self) -> usize {
        self.n_rows
    }

    /// True when the index is empty (never, by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Exact `k` nearest neighbours of `query`, sorted ascending by
    /// `(distance, row)`; `skip` excludes one row (the query's own).
    /// Tombstoned rows are excluded.
    #[must_use]
    pub fn k_nearest(&self, query: &[f64], k: usize, skip: Option<usize>) -> Vec<Neighbor> {
        self.k_nearest_sq(query, k, skip)
            .into_iter()
            .map(|h| Neighbor {
                index: h.row,
                distance: self.metric.rank_of(h.sq_dist),
            })
            .collect()
    }

    /// Scans one leaf, invoking `hit` with `(row, sq_dist)` for every row
    /// admitted by `pass`. Hybrid: when a whole chunk passes the filter
    /// (the common case — fully-alive leaf, unfiltered query) the distances
    /// come from one batched kernel sweep over the contiguous block; when
    /// the filter rejects rows (tombstones, heterogeneous-label queries)
    /// only admitted rows pay a per-pair kernel call, so filtered scans
    /// never compute distances they will throw away. Both paths use the
    /// same kernel tier, so distances are bit-identical either way.
    fn scan_leaf(
        &self,
        rows: &[u32],
        start: usize,
        query: &[f64],
        pass: impl Fn(u32) -> bool,
        mut hit: impl FnMut(u32, f64),
    ) {
        let p = self.n_features;
        if p < LANE_WIDTH {
            // Sub-lane rows have no vector work to batch: one fused loop
            // of the inline per-pair kernel over `points`, exactly the
            // pre-SIMD shape (no leaf_points copy exists at these widths).
            // The metric branch is hoisted so the hot loop stays tight
            // (cosine shares the squared-Euclidean loop: rows and query
            // are already normalized).
            if self.metric == Metric::Manhattan {
                for &r in rows {
                    if pass(r) {
                        let base = r as usize * p;
                        hit(r, manhattan(query, &self.points[base..base + p]));
                    }
                }
            } else {
                for &r in rows {
                    if pass(r) {
                        let base = r as usize * p;
                        hit(r, sq_euclidean(query, &self.points[base..base + p]));
                    }
                }
            }
            return;
        }
        let mut dists = [0.0f64; LEAF_BLOCK];
        let mut admitted = [false; LEAF_BLOCK];
        let mut lo = 0;
        while lo < rows.len() {
            let hi = (lo + LEAF_BLOCK).min(rows.len());
            let block = &rows[lo..hi];
            let mut kept = 0usize;
            for (i, &r) in block.iter().enumerate() {
                admitted[i] = pass(r);
                kept += usize::from(admitted[i]);
            }
            if kept == block.len() {
                self.metric.one_to_many(
                    query,
                    &self.leaf_points[(start + lo) * p..(start + hi) * p],
                    &mut dists[..block.len()],
                );
                for (i, &r) in block.iter().enumerate() {
                    hit(r, dists[i]);
                }
            } else if kept > 0 {
                for (i, &r) in block.iter().enumerate() {
                    if admitted[i] {
                        let base = (start + lo + i) * p;
                        hit(
                            r,
                            self.metric.pair(query, &self.leaf_points[base..base + p]),
                        );
                    }
                }
            }
            lo = hi;
        }
    }

    /// Shared leaf/split traversal for best-k queries with a row filter.
    ///
    /// `gap` is the metric's splitting-plane bound (`Metric::plane_gap`)
    /// monomorphized by the caller: the traversal visits thousands of
    /// split nodes per query and an enum dispatch per visit costs ~25%
    /// at low widths, so the branch happens once at the public entry
    /// points and the recursion compiles to the bare `diff * diff`
    /// (or `diff.abs()`) it had before metrics were pluggable.
    fn search_filtered(
        &self,
        node: usize,
        query: &[f64],
        skip: Option<usize>,
        keep: &impl Fn(u32) -> bool,
        gap: &impl Fn(f64) -> f64,
        best: &mut KBest,
    ) {
        match &self.nodes[node] {
            Node::Leaf { rows, start } => {
                self.scan_leaf(
                    rows,
                    *start,
                    query,
                    |r| self.tombstones.is_alive(r as usize) && Some(r as usize) != skip && keep(r),
                    |r, d| best.insert(d, r as usize),
                );
            }
            Node::Split {
                dim,
                value,
                left,
                right,
            } => {
                let diff = query[*dim] - value;
                let (near, far) = if diff <= 0.0 {
                    (*left, *right)
                } else {
                    (*right, *left)
                };
                self.search_filtered(near, query, skip, keep, gap, best);
                if gap(diff) <= best.worst_sq() {
                    self.search_filtered(far, query, skip, keep, gap, best);
                }
            }
        }
    }

    /// `gap` is the monomorphized `Metric::plane_gap` — see
    /// [`Self::search_filtered`] for why it is a parameter.
    #[allow(clippy::too_many_arguments)]
    fn range_rec(
        &self,
        node: usize,
        query: &[f64],
        sq_bound: f64,
        bound: RangeBound,
        skip: Option<usize>,
        gap: &impl Fn(f64) -> f64,
        out: &mut Vec<SqNeighbor>,
    ) {
        match &self.nodes[node] {
            Node::Leaf { rows, start } => {
                self.scan_leaf(
                    rows,
                    *start,
                    query,
                    |r| self.tombstones.is_alive(r as usize) && Some(r as usize) != skip,
                    |r, d| {
                        if bound.admits(d, sq_bound) {
                            out.push(SqNeighbor {
                                row: r as usize,
                                sq_dist: d,
                            });
                        }
                    },
                );
            }
            Node::Split {
                dim,
                value,
                left,
                right,
            } => {
                let diff = query[*dim] - value;
                // Minimum achievable squared distance to each half-space.
                let (near, far) = if diff <= 0.0 {
                    (*left, *right)
                } else {
                    (*right, *left)
                };
                self.range_rec(near, query, sq_bound, bound, skip, gap, out);
                if bound.admits(gap(diff), sq_bound) {
                    self.range_rec(far, query, sq_bound, bound, skip, gap, out);
                }
            }
        }
    }
}

impl NeighborIndex for KdTree {
    fn n_rows(&self) -> usize {
        self.n_rows
    }

    fn metric(&self) -> Metric {
        self.metric
    }

    fn n_alive(&self) -> usize {
        self.tombstones.n_alive()
    }

    fn is_alive(&self, row: usize) -> bool {
        self.tombstones.is_alive(row)
    }

    fn delete(&mut self, row: usize) -> bool {
        match self.tombstones.delete(row) {
            None => false,
            Some(needs_rebuild) => {
                if needs_rebuild {
                    self.rebuild();
                }
                true
            }
        }
    }

    fn k_nearest_sq(&self, query: &[f64], k: usize, skip: Option<usize>) -> Vec<SqNeighbor> {
        assert_eq!(query.len(), self.n_features, "query width mismatch");
        if k == 0 || self.nodes.is_empty() {
            return Vec::new();
        }
        let query = self.metric.prepare_query(query);
        let mut best = KBest::new(k);
        // Branch on the metric once, not per node visit; each arm must
        // match `Metric::plane_gap` exactly to keep answers bit-identical.
        match self.metric {
            Metric::Manhattan => {
                self.search_filtered(0, &query, skip, &|_| true, &|d: f64| d.abs(), &mut best);
            }
            Metric::SqEuclidean | Metric::Cosine => {
                self.search_filtered(0, &query, skip, &|_| true, &|d: f64| d * d, &mut best);
            }
        }
        best.into_sorted()
    }

    fn nearest_heterogeneous_sq(
        &self,
        query: &[f64],
        label: u32,
        skip: Option<usize>,
    ) -> Option<SqNeighbor> {
        if self.nodes.is_empty() {
            return None;
        }
        let query = self.metric.prepare_query(query);
        let mut best = KBest::new(1);
        let keep = |r: u32| self.labels[r as usize] != label;
        match self.metric {
            Metric::Manhattan => {
                self.search_filtered(0, &query, skip, &keep, &|d: f64| d.abs(), &mut best);
            }
            Metric::SqEuclidean | Metric::Cosine => {
                self.search_filtered(0, &query, skip, &keep, &|d: f64| d * d, &mut best);
            }
        }
        best.into_sorted().first().copied()
    }

    fn range_sq(
        &self,
        query: &[f64],
        sq_bound: f64,
        bound: RangeBound,
        skip: Option<usize>,
    ) -> Vec<SqNeighbor> {
        assert_eq!(query.len(), self.n_features, "query width mismatch");
        let mut out = Vec::new();
        if !self.nodes.is_empty() {
            let query = self.metric.prepare_query(query);
            match self.metric {
                Metric::Manhattan => {
                    self.range_rec(
                        0,
                        &query,
                        sq_bound,
                        bound,
                        skip,
                        &|d: f64| d.abs(),
                        &mut out,
                    );
                }
                Metric::SqEuclidean | Metric::Cosine => {
                    self.range_rec(0, &query, sq_bound, bound, skip, &|d: f64| d * d, &mut out);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neighbors::k_nearest as brute_k_nearest;
    use crate::rng::rng_from_seed;
    use rand::Rng;

    fn random_dataset(n: usize, p: usize, seed: u64) -> Dataset {
        let mut rng = rng_from_seed(seed);
        let feats: Vec<f64> = (0..n * p).map(|_| rng.gen_range(-5.0..5.0)).collect();
        Dataset::from_parts(feats, vec![0; n], p, 1)
    }

    #[test]
    fn matches_brute_force_exactly() {
        for (n, p) in [(50usize, 2usize), (200, 3), (300, 8)] {
            let d = random_dataset(n, p, n as u64);
            let tree = KdTree::build(&d, 8);
            let mut rng = rng_from_seed(99);
            for _ in 0..20 {
                let q: Vec<f64> = (0..p).map(|_| rng.gen_range(-5.0..5.0)).collect();
                let brute = brute_k_nearest(&d, &q, 7, None);
                let fast = tree.k_nearest(&q, 7, None);
                assert_eq!(
                    brute.iter().map(|h| h.index).collect::<Vec<_>>(),
                    fast.iter().map(|h| h.index).collect::<Vec<_>>(),
                    "n={n} p={p}"
                );
                for (a, b) in brute.iter().zip(fast.iter()) {
                    assert!((a.distance - b.distance).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn skip_excludes_row() {
        let d = random_dataset(60, 2, 1);
        let tree = KdTree::build(&d, 4);
        let hits = tree.k_nearest(d.row(10), 3, Some(10));
        assert!(hits.iter().all(|h| h.index != 10));
        let brute = brute_k_nearest(&d, d.row(10), 3, Some(10));
        assert_eq!(
            hits.iter().map(|h| h.index).collect::<Vec<_>>(),
            brute.iter().map(|h| h.index).collect::<Vec<_>>()
        );
    }

    #[test]
    fn duplicate_points_handled() {
        let d = Dataset::from_parts(vec![1.0; 40], vec![0; 40], 1, 1);
        let tree = KdTree::build(&d, 4);
        let hits = tree.k_nearest(&[1.0], 5, None);
        assert_eq!(hits.len(), 5);
        assert!(hits.iter().all(|h| h.distance == 0.0));
        // ties resolved by ascending row
        assert_eq!(
            hits.iter().map(|h| h.index).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn k_larger_than_data() {
        let d = random_dataset(5, 2, 3);
        let tree = KdTree::build(&d, 2);
        let hits = tree.k_nearest(&[0.0, 0.0], 50, None);
        assert_eq!(hits.len(), 5);
    }

    #[test]
    fn k_zero_empty() {
        let d = random_dataset(5, 2, 3);
        let tree = KdTree::build(&d, 2);
        assert!(tree.k_nearest(&[0.0, 0.0], 0, None).is_empty());
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_rejected() {
        let d = Dataset::from_parts(Vec::new(), Vec::new(), 2, 1);
        let _ = KdTree::build(&d, 4);
    }

    #[test]
    fn tombstones_excluded_and_compaction_preserves_results() {
        let d = random_dataset(400, 3, 7);
        let mut tree = KdTree::build(&d, 8);
        // Delete 350 rows — enough to trigger at least one rebuild.
        for r in 0..350 {
            assert!(NeighborIndex::delete(&mut tree, r));
        }
        assert_eq!(tree.n_alive(), 50);
        let hits = tree.k_nearest(d.row(0), 10, None);
        assert_eq!(hits.len(), 10);
        assert!(hits.iter().all(|h| h.index >= 350));
        // Against a fresh brute scan over the survivors.
        let survivors: Vec<usize> = (350..400).collect();
        let sub = d.select(&survivors);
        let brute = brute_k_nearest(&sub, d.row(0), 10, None);
        assert_eq!(
            hits.iter().map(|h| h.index - 350).collect::<Vec<_>>(),
            brute.iter().map(|h| h.index).collect::<Vec<_>>()
        );
    }
}
