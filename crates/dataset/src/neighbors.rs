//! Brute-force nearest-neighbour search.
//!
//! The algorithms in this workspace (RD-GBG center detection, SMOTE variants,
//! Tomek links, the kNN classifier) all need "k nearest rows of a dataset to
//! a query point". A flat brute-force scan with a bounded max-heap is exact,
//! cache-friendly on the row-major buffer, and fast enough for the paper's
//! dataset sizes (≤ 58 000 × 256).
//!
//! Rows of a lane width or more scan in blocks of `SCAN_BLOCK` (128) through
//! the batched [`sq_euclidean_one_to_many`] kernel: one tier dispatch per
//! block and the row-major slab streams linearly through cache; filtered
//! blocks fall back to per-pair [`sq_euclidean_dispatched`] calls for kept
//! rows only (same lane tree → same bits). Sub-lane rows keep the fused
//! per-pair loop — there is no vector work to batch at p < 4, and the
//! inline sequential kernel is the fastest thing there is.
//!
//! The all-rows self-join ([`k_nearest_all_rows`], the Tomek/ENN shape)
//! additionally tiles *queries* in groups of [`QUERY_TILE`] through the
//! register-blocked many-to-many kernel [`sq_dist_block`], which reuses
//! each candidate-row load across the whole query tile. The blocked kernel
//! is bit-identical to repeated one-to-many calls (kernel contract v2), so
//! results match the per-row path exactly.

use crate::dataset::Dataset;
use crate::distance::{
    sq_dist_block, sq_euclidean, sq_euclidean_dispatched, sq_euclidean_one_to_many, LANE_WIDTH,
};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Rows per batched-kernel call in the scan loops (the distance buffer lives
/// on the stack).
const SCAN_BLOCK: usize = 128;

/// Queries per blocked many-to-many call in the all-rows self-join. Each
/// candidate-row block is loaded once and streamed against the whole tile.
const QUERY_TILE: usize = 16;

/// A neighbour hit: dataset row index plus (non-squared) distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Row index into the searched dataset.
    pub index: usize,
    /// Euclidean distance to the query.
    pub distance: f64,
}

/// Max-heap entry ordered by squared distance (ties broken by index for
/// determinism).
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    sq_dist: f64,
    index: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.sq_dist
            .partial_cmp(&other.sq_dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.index.cmp(&other.index))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Returns the `k` nearest rows of `data` to `query`, sorted by ascending
/// distance (ties by ascending row index). `skip` lets callers exclude the
/// query's own row (`Some(row)`); pass `None` to search all rows.
///
/// Returns fewer than `k` hits when the dataset is smaller than `k`.
#[must_use]
pub fn k_nearest(data: &Dataset, query: &[f64], k: usize, skip: Option<usize>) -> Vec<Neighbor> {
    k_nearest_filtered(data, query, k, |i| Some(i) != skip)
}

/// Like [`k_nearest`], restricted to rows for which `keep` returns true.
#[must_use]
pub fn k_nearest_filtered(
    data: &Dataset,
    query: &[f64],
    k: usize,
    mut keep: impl FnMut(usize) -> bool,
) -> Vec<Neighbor> {
    if k == 0 {
        return Vec::new();
    }
    assert_eq!(
        query.len(),
        data.n_features(),
        "query width must match the dataset"
    );
    let p = data.n_features();
    let feats = data.features();
    let mut dists = [0.0f64; SCAN_BLOCK];
    let mut admitted = [false; SCAN_BLOCK];
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);
    let insert = |heap: &mut BinaryHeap<HeapEntry>, i: usize, d: f64| heap_insert(heap, k, i, d);
    if p < LANE_WIDTH {
        // Sub-lane rows have no vector work to batch: one fused loop of
        // the inline per-pair kernel, exactly the pre-SIMD shape.
        for i in 0..data.n_samples() {
            if keep(i) {
                insert(
                    &mut heap,
                    i,
                    sq_euclidean(query, &feats[i * p..(i + 1) * p]),
                );
            }
        }
        return finish_heap(heap);
    }
    let mut lo = 0;
    // Hybrid blocked sweep: a block whose rows all pass `keep` takes one
    // batched kernel call over the contiguous row-major slab; a filtered
    // block (self-exclusion, same-class donor searches) pays per-pair
    // kernel calls for kept rows only. Same tier both ways → same bits.
    while lo < data.n_samples() {
        let hi = (lo + SCAN_BLOCK).min(data.n_samples());
        let mut kept = 0usize;
        for i in lo..hi {
            admitted[i - lo] = keep(i);
            kept += usize::from(admitted[i - lo]);
        }
        if kept == hi - lo {
            sq_euclidean_one_to_many(query, &feats[lo * p..hi * p], &mut dists[..hi - lo]);
            for i in lo..hi {
                insert(&mut heap, i, dists[i - lo]);
            }
        } else if kept > 0 {
            for i in lo..hi {
                if admitted[i - lo] {
                    let d = sq_euclidean_dispatched(query, &feats[i * p..(i + 1) * p]);
                    insert(&mut heap, i, d);
                }
            }
        }
        lo = hi;
    }
    finish_heap(heap)
}

/// Pushes `(d, i)` into a bounded best-`k` max-heap (ties break toward the
/// lower row index, matching the sorted output order).
fn heap_insert(heap: &mut BinaryHeap<HeapEntry>, k: usize, i: usize, d: f64) {
    if heap.len() < k {
        heap.push(HeapEntry {
            sq_dist: d,
            index: i,
        });
    } else if let Some(top) = heap.peek() {
        if d < top.sq_dist || (d == top.sq_dist && i < top.index) {
            heap.pop();
            heap.push(HeapEntry {
                sq_dist: d,
                index: i,
            });
        }
    }
}

/// Drains a best-`k` heap into ascending `(distance, row)` order.
fn finish_heap(heap: BinaryHeap<HeapEntry>) -> Vec<Neighbor> {
    let mut hits: Vec<HeapEntry> = heap.into_vec();
    hits.sort_unstable();
    hits.into_iter()
        .map(|e| Neighbor {
            index: e.index,
            distance: e.sq_dist.sqrt(),
        })
        .collect()
}

/// All distances from `query` to every row, as `(row, distance)` sorted
/// ascending. Used by RD-GBG, which consumes the full ordered sequence when
/// growing a ball ("the distance calculated by the local-density center
/// detection ... is also used for subsequent construction of the GB").
#[must_use]
pub fn sorted_distances(data: &Dataset, query: &[f64], skip: Option<usize>) -> Vec<Neighbor> {
    assert_eq!(
        query.len(),
        data.n_features(),
        "query width must match the dataset"
    );
    let n = data.n_samples();
    let mut sq = vec![0.0f64; n];
    sq_euclidean_one_to_many(query, data.features(), &mut sq);
    let mut all: Vec<Neighbor> = (0..n)
        .filter(|&i| Some(i) != skip)
        .map(|i| Neighbor {
            index: i,
            distance: sq[i],
        })
        .collect();
    all.sort_unstable_by(|a, b| {
        a.distance
            .partial_cmp(&b.distance)
            .unwrap_or(Ordering::Equal)
            .then_with(|| a.index.cmp(&b.index))
    });
    for n in &mut all {
        n.distance = n.distance.sqrt();
    }
    all
}

/// The single nearest row (excluding `skip`), or `None` on an empty search.
#[must_use]
pub fn nearest(data: &Dataset, query: &[f64], skip: Option<usize>) -> Option<Neighbor> {
    k_nearest(data, query, 1, skip).into_iter().next()
}

/// Batch form of [`k_nearest`] for external queries, one result per query,
/// computed in parallel across worker threads. Results are identical to
/// (and ordered like) the sequential per-query calls — batch queries are
/// embarrassingly parallel.
#[must_use]
pub fn k_nearest_batch(data: &Dataset, queries: &[&[f64]], k: usize) -> Vec<Vec<Neighbor>> {
    use rayon::prelude::*;
    queries
        .par_iter()
        .map(|q| k_nearest(data, q, k, None))
        .collect()
}

/// Batch self-join: the `k` nearest neighbours of every *row* of `data`
/// (each row excluded from its own neighbourhood), in parallel. Backs
/// all-rows neighbour passes such as Tomek-link detection; samplers whose
/// per-row search carries an extra filter (ENN's class edit rule, the
/// SMOTE family's same-class donor search) parallelize their own filtered
/// loops instead.
/// Rows of a lane width or more tile their queries through the blocked
/// many-to-many kernel so every candidate-row block is loaded once per
/// [`QUERY_TILE`] queries; sub-lane widths keep the per-row scan (the
/// blocked kernel has no vector work there). Either way the results are
/// bit-identical to the sequential per-row calls.
#[must_use]
pub fn k_nearest_all_rows(data: &Dataset, k: usize) -> Vec<Vec<Neighbor>> {
    use rayon::prelude::*;
    let n = data.n_samples();
    let p = data.n_features();
    if k == 0 {
        return vec![Vec::new(); n];
    }
    if p < LANE_WIDTH {
        return (0..n)
            .into_par_iter()
            .map(|i| k_nearest(data, data.row(i), k, Some(i)))
            .collect();
    }
    let feats = data.features();
    let tiles: Vec<Vec<Vec<Neighbor>>> = (0..n.div_ceil(QUERY_TILE))
        .into_par_iter()
        .map(|t| {
            let q_lo = t * QUERY_TILE;
            let q_hi = (q_lo + QUERY_TILE).min(n);
            let nq = q_hi - q_lo;
            let queries = &feats[q_lo * p..q_hi * p];
            let mut dists = vec![0.0f64; nq * SCAN_BLOCK];
            let mut heaps: Vec<BinaryHeap<HeapEntry>> =
                (0..nq).map(|_| BinaryHeap::with_capacity(k + 1)).collect();
            let mut lo = 0;
            while lo < n {
                let hi = (lo + SCAN_BLOCK).min(n);
                let rows = hi - lo;
                sq_dist_block(queries, &feats[lo * p..hi * p], p, &mut dists[..nq * rows]);
                for (qi, heap) in heaps.iter_mut().enumerate() {
                    let self_row = q_lo + qi;
                    let row_d = &dists[qi * rows..(qi + 1) * rows];
                    for (r, &d) in row_d.iter().enumerate() {
                        let i = lo + r;
                        if i != self_row {
                            heap_insert(heap, k, i, d);
                        }
                    }
                }
                lo = hi;
            }
            heaps.into_iter().map(finish_heap).collect()
        })
        .collect();
    tiles.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line() -> Dataset {
        // points at x = 0, 1, 2, 3, 4 on a line
        Dataset::from_parts(vec![0.0, 1.0, 2.0, 3.0, 4.0], vec![0, 0, 1, 1, 1], 1, 2)
    }

    #[test]
    fn k_nearest_orders_by_distance() {
        let d = line();
        let hits = k_nearest(&d, &[2.2], 3, None);
        assert_eq!(
            hits.iter().map(|h| h.index).collect::<Vec<_>>(),
            vec![2, 3, 1]
        );
        assert!((hits[0].distance - 0.2).abs() < 1e-12);
    }

    #[test]
    fn skip_excludes_self() {
        let d = line();
        let hits = k_nearest(&d, d.row(2), 2, Some(2));
        assert_eq!(hits.iter().map(|h| h.index).collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn ties_break_by_index() {
        let d = line();
        // query at 1.5 is equidistant from rows 1 and 2
        let hits = k_nearest(&d, &[1.5], 2, None);
        assert_eq!(hits[0].index, 1);
        assert_eq!(hits[1].index, 2);
    }

    #[test]
    fn fewer_rows_than_k() {
        let d = line();
        let hits = k_nearest(&d, &[0.0], 100, None);
        assert_eq!(hits.len(), 5);
    }

    #[test]
    fn k_zero_is_empty() {
        let d = line();
        assert!(k_nearest(&d, &[0.0], 0, None).is_empty());
    }

    #[test]
    fn sorted_distances_full_order() {
        let d = line();
        let all = sorted_distances(&d, &[0.0], None);
        assert_eq!(
            all.iter().map(|n| n.index).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        assert!((all[4].distance - 4.0).abs() < 1e-12);
    }

    #[test]
    fn nearest_matches_k1() {
        let d = line();
        let n = nearest(&d, &[3.9], None).unwrap();
        assert_eq!(n.index, 4);
    }

    #[test]
    fn filtered_search_respects_predicate() {
        let d = line();
        let hits = k_nearest_filtered(&d, &[0.0], 2, |i| d.label(i) == 1);
        assert_eq!(hits.iter().map(|h| h.index).collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn batch_queries_match_sequential() {
        let d = line();
        let queries: Vec<Vec<f64>> = vec![vec![0.1], vec![2.2], vec![3.9]];
        let refs: Vec<&[f64]> = queries.iter().map(Vec::as_slice).collect();
        let batch = k_nearest_batch(&d, &refs, 2);
        for (q, got) in refs.iter().zip(batch.iter()) {
            assert_eq!(got, &k_nearest(&d, q, 2, None));
        }
    }

    #[test]
    fn all_rows_batch_excludes_self() {
        let d = line();
        let all = k_nearest_all_rows(&d, 3);
        assert_eq!(all.len(), d.n_samples());
        for (i, hits) in all.iter().enumerate() {
            assert!(hits.iter().all(|h| h.index != i));
            assert_eq!(hits, &k_nearest(&d, d.row(i), 3, Some(i)));
        }
    }

    #[test]
    fn heap_matches_full_sort_on_random_data() {
        use rand::Rng;
        let mut rng = crate::rng::rng_from_seed(9);
        let n = 200;
        let feats: Vec<f64> = (0..n * 3).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let d = Dataset::from_parts(feats, vec![0; n], 3, 1);
        let q = [0.1, -0.2, 0.3];
        let full = sorted_distances(&d, &q, None);
        let topk = k_nearest(&d, &q, 7, None);
        for (a, b) in full.iter().zip(topk.iter()) {
            assert_eq!(a.index, b.index);
            assert!((a.distance - b.distance).abs() < 1e-9);
        }
    }
}
