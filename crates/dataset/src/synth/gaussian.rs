//! Gaussian mixture ("blob") generator.
//!
//! The workhorse surrogate: each class is a mixture of isotropic Gaussian
//! blobs whose centers are placed at a controlled separation. Lowering the
//! separation (or raising the per-blob spread) blurs class boundaries, which
//! is how the catalog imitates datasets the paper describes as having
//! "unclear class boundaries" (e.g. S3, S7).

use super::{apportion, randn};
use crate::dataset::Dataset;
use crate::rng::rng_from_seed;
use rand::Rng;

/// One Gaussian component of a class mixture.
#[derive(Debug, Clone)]
pub struct Blob {
    /// Mean vector (length = dataset dimensionality).
    pub center: Vec<f64>,
    /// Isotropic standard deviation.
    pub scale: f64,
    /// Relative sampling weight within the class.
    pub weight: f64,
}

/// A class as a weighted mixture of blobs.
#[derive(Debug, Clone)]
pub struct ClassMixture {
    /// Share of the dataset drawn from this class.
    pub weight: f64,
    /// Mixture components.
    pub blobs: Vec<Blob>,
}

/// Declarative blob-placement recipe used by the catalog.
#[derive(Debug, Clone)]
pub struct BlobSpec {
    /// Total samples.
    pub n_samples: usize,
    /// Dimensionality.
    pub n_features: usize,
    /// Number of classes.
    pub n_classes: usize,
    /// Per-class sampling weights (normalized internally).
    pub class_weights: Vec<f64>,
    /// Blobs per class.
    pub blobs_per_class: usize,
    /// Distance between blob centers in units of blob standard deviation.
    /// ~4+ gives clean boundaries; ~1–2 gives heavy overlap.
    pub separation: f64,
    /// Per-blob isotropic standard deviation.
    pub scale: f64,
    /// Number of leading dimensions that carry class signal; remaining
    /// dimensions are pure noise (models high-dim low-signal sets like S7).
    pub informative_dims: usize,
    /// Fraction of each class's samples drawn from a *random other blob of
    /// any class* while keeping their own label. Models the fine-grained
    /// class interleaving of real tabular data: it fragments pure ball
    /// covers the way the paper's datasets do (GGBS ratios near 1.0) without
    /// changing the nominal class geometry.
    pub scatter: f64,
}

impl BlobSpec {
    /// Materializes concrete class mixtures with seeded random blob centers.
    #[must_use]
    pub fn build_mixtures(&self, seed: u64) -> Vec<ClassMixture> {
        let mut rng = rng_from_seed(seed);
        let d_info = self.informative_dims.min(self.n_features).max(1);
        let radius = self.separation * self.scale;
        (0..self.n_classes)
            .map(|c| {
                let blobs = (0..self.blobs_per_class)
                    .map(|_| {
                        // Random direction on the informative subspace,
                        // pushed out to `radius`, so distinct classes land in
                        // distinct shells/sectors with controlled overlap.
                        let mut center = vec![0.0; self.n_features];
                        let mut norm = 0.0;
                        for v in center.iter_mut().take(d_info) {
                            *v = randn(&mut rng);
                            norm += *v * *v;
                        }
                        let norm = norm.sqrt().max(1e-9);
                        for v in center.iter_mut().take(d_info) {
                            *v = *v / norm * radius * (1.0 + 0.25 * rng.gen::<f64>());
                        }
                        // Class-dependent offset separates classes even when
                        // their random directions collide.
                        if d_info > 0 {
                            center[c % d_info] += radius * (1.0 + c as f64 * 0.5);
                        }
                        Blob {
                            center,
                            scale: self.scale,
                            weight: 1.0,
                        }
                    })
                    .collect();
                ClassMixture {
                    weight: self.class_weights.get(c).copied().unwrap_or(1.0),
                    blobs,
                }
            })
            .collect()
    }

    /// Generates the dataset.
    #[must_use]
    pub fn generate(&self, seed: u64) -> Dataset {
        let mixtures = self.build_mixtures(seed.wrapping_add(0xB10B));
        sample_mixtures(
            self.n_samples,
            self.n_features,
            &mixtures,
            self.informative_dims.min(self.n_features).max(1),
            self.scale,
            self.scatter,
            seed,
        )
    }
}

/// Samples `n` points from explicit class mixtures. Noise dimensions (index
/// ≥ `informative_dims`) receive isotropic Gaussian noise of `noise_scale`.
/// With probability `scatter` a sample is drawn from a random blob of *any*
/// class (its label unchanged), interleaving the classes at fine scale.
#[must_use]
pub fn sample_mixtures(
    n: usize,
    p: usize,
    mixtures: &[ClassMixture],
    informative_dims: usize,
    noise_scale: f64,
    scatter: f64,
    seed: u64,
) -> Dataset {
    assert!(!mixtures.is_empty());
    assert!((0.0..=1.0).contains(&scatter), "scatter must be in [0,1]");
    let mut rng = rng_from_seed(seed);
    let weights: Vec<f64> = mixtures.iter().map(|m| m.weight).collect();
    let counts = apportion(n, &weights);
    let all_blobs: Vec<&Blob> = mixtures.iter().flat_map(|m| m.blobs.iter()).collect();
    let mut features = Vec::with_capacity(n * p);
    let mut labels = Vec::with_capacity(n);
    for (c, (mixture, &count)) in mixtures.iter().zip(counts.iter()).enumerate() {
        let blob_total: f64 = mixture.blobs.iter().map(|b| b.weight).sum();
        for _ in 0..count {
            let blob = if scatter > 0.0 && rng.gen::<f64>() < scatter {
                // interleaved sample: any blob of any class
                all_blobs[rng.gen_range(0..all_blobs.len())]
            } else {
                // pick a blob of the own class by weight
                let mut pick = rng.gen::<f64>() * blob_total;
                let mut blob = &mixture.blobs[0];
                for b in &mixture.blobs {
                    if pick <= b.weight {
                        blob = b;
                        break;
                    }
                    pick -= b.weight;
                }
                blob
            };
            for j in 0..p {
                let base = blob.center.get(j).copied().unwrap_or(0.0);
                let scale = if j < informative_dims {
                    blob.scale
                } else {
                    noise_scale
                };
                features.push(base + scale * randn(&mut rng));
            }
            labels.push(c as u32);
        }
    }
    Dataset::from_parts(features, labels, p, mixtures.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::class_weights_for_ir;

    fn spec() -> BlobSpec {
        BlobSpec {
            n_samples: 600,
            n_features: 4,
            n_classes: 3,
            class_weights: class_weights_for_ir(3, 2.0),
            blobs_per_class: 2,
            separation: 6.0,
            scale: 1.0,
            informative_dims: 4,
            scatter: 0.0,
        }
    }

    #[test]
    fn shape_matches_spec() {
        let d = spec().generate(1);
        assert_eq!(d.n_samples(), 600);
        assert_eq!(d.n_features(), 4);
        assert_eq!(d.n_classes(), 3);
        let counts = d.class_counts();
        assert!(counts.iter().all(|&c| c > 0));
        let ir = d.imbalance_ratio();
        assert!((ir - 2.0).abs() < 0.2, "IR {ir}");
    }

    #[test]
    fn deterministic_under_seed() {
        let a = spec().generate(5);
        let b = spec().generate(5);
        assert_eq!(a.features(), b.features());
        assert_eq!(a.labels(), b.labels());
        let c = spec().generate(6);
        assert_ne!(a.features(), c.features());
    }

    #[test]
    fn high_separation_is_nearest_centroid_separable() {
        let mut s = spec();
        s.separation = 12.0;
        let d = s.generate(3);
        // compute class centroids, check most samples are closest to their own
        let p = d.n_features();
        let mut centroids = vec![vec![0.0; p]; d.n_classes()];
        let counts = d.class_counts();
        for (row, label) in d.iter_rows() {
            for (j, &v) in row.iter().enumerate() {
                centroids[label as usize][j] += v;
            }
        }
        for (c, centroid) in centroids.iter_mut().enumerate() {
            for v in centroid.iter_mut() {
                *v /= counts[c].max(1) as f64;
            }
        }
        let mut correct = 0;
        for (row, label) in d.iter_rows() {
            let best = (0..d.n_classes())
                .min_by(|&a, &b| {
                    let da = crate::distance::sq_euclidean(row, &centroids[a]);
                    let db = crate::distance::sq_euclidean(row, &centroids[b]);
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap();
            if best == label as usize {
                correct += 1;
            }
        }
        assert!(
            correct as f64 / d.n_samples() as f64 > 0.9,
            "only {correct}/600 nearest-centroid-correct"
        );
    }

    #[test]
    fn noise_dims_carry_no_offset() {
        let mut s = spec();
        s.informative_dims = 2;
        let d = s.generate(9);
        // columns 2,3 should be ~N(0, scale) regardless of class
        for j in 2..4 {
            let mean: f64 =
                (0..d.n_samples()).map(|i| d.value(i, j)).sum::<f64>() / d.n_samples() as f64;
            assert!(mean.abs() < 0.2, "dim {j} mean {mean}");
        }
    }
}
