//! Sensor-array-like generator with drift (surrogate for Gas Sensor, S12).
//!
//! The UCI Gas Sensor Array Drift dataset is 128-dimensional with 6 gas
//! classes whose clusters elongate along a drift direction over time. We
//! model each class as a sequence of blobs sliding along a random per-class
//! drift vector, producing the elongated, partially overlapping clusters
//! that make the real dataset non-trivial for ball covering.

use super::{apportion, randn};
use crate::dataset::Dataset;
use crate::rng::rng_from_seed;
use rand::Rng;

/// Parameters of the drifting-sensor generator.
#[derive(Debug, Clone)]
pub struct SensorSpec {
    /// Total samples.
    pub n_samples: usize,
    /// Dimensionality (128 for the S12 surrogate).
    pub n_features: usize,
    /// Number of classes (gases).
    pub n_classes: usize,
    /// Per-class weights.
    pub class_weights: Vec<f64>,
    /// Distance between class base centers, in blob stds.
    pub separation: f64,
    /// Number of drift stages ("batches") per class.
    pub drift_stages: usize,
    /// Drift step length per stage, in blob stds.
    pub drift_step: f64,
    /// Fraction of samples drawn from a random other class's cluster while
    /// keeping their label (fine-grained interleaving).
    pub scatter: f64,
}

impl SensorSpec {
    /// Gas-Sensor-like defaults (6 classes, 128 dims, IR ≈ 1.83).
    #[must_use]
    pub fn gas_like(n_samples: usize) -> Self {
        Self {
            n_samples,
            n_features: 128,
            n_classes: 6,
            class_weights: super::class_weights_for_ir(6, 1.83),
            separation: 7.0,
            drift_stages: 4,
            drift_step: 1.5,
            scatter: 0.15,
        }
    }

    /// Generates the dataset.
    #[must_use]
    pub fn generate(&self, seed: u64) -> Dataset {
        let mut rng = rng_from_seed(seed);
        let p = self.n_features;
        // Base center and unit drift direction per class.
        let mut bases = Vec::with_capacity(self.n_classes);
        let mut drifts = Vec::with_capacity(self.n_classes);
        for c in 0..self.n_classes {
            let mut base = vec![0.0; p];
            // deterministic class placement on sparse axes + random jitter
            base[c % p] = self.separation;
            base[(c * 7 + 3) % p] = -0.5 * self.separation;
            for v in base.iter_mut() {
                *v += 0.3 * randn(&mut rng);
            }
            let mut drift = vec![0.0; p];
            let mut norm = 0.0;
            for v in drift.iter_mut() {
                *v = randn(&mut rng);
                norm += *v * *v;
            }
            let norm = norm.sqrt().max(1e-9);
            for v in drift.iter_mut() {
                *v /= norm;
            }
            bases.push(base);
            drifts.push(drift);
        }
        let counts = apportion(self.n_samples, &self.class_weights);
        let mut features = Vec::with_capacity(self.n_samples * p);
        let mut labels = Vec::with_capacity(self.n_samples);
        for (c, &count) in counts.iter().enumerate() {
            for i in 0..count {
                let stage = (i * self.drift_stages / count.max(1)) as f64;
                let src = if self.scatter > 0.0 && rng.gen::<f64>() < self.scatter {
                    rng.gen_range(0..self.n_classes)
                } else {
                    c
                };
                for j in 0..p {
                    let center = bases[src][j] + stage * self.drift_step * drifts[src][j];
                    features.push(center + randn(&mut rng));
                }
                labels.push(c as u32);
            }
        }
        Dataset::from_parts(features, labels, p, self.n_classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gas_like_shape() {
        let d = SensorSpec::gas_like(1391).generate(1);
        assert_eq!(d.n_samples(), 1391);
        assert_eq!(d.n_features(), 128);
        assert_eq!(d.n_classes(), 6);
        let ir = d.imbalance_ratio();
        assert!((ir - 1.83).abs() < 0.3, "IR {ir}");
    }

    #[test]
    fn drift_elongates_clusters() {
        let d = SensorSpec::gas_like(1200).generate(2);
        // within one class, variance along the drift should exceed the
        // average per-dim variance (elongation)
        let rows: Vec<usize> = (0..d.n_samples()).filter(|&i| d.label(i) == 0).collect();
        let p = d.n_features();
        let mut mean = vec![0.0; p];
        for &i in &rows {
            for (j, &v) in d.row(i).iter().enumerate() {
                mean[j] += v;
            }
        }
        for m in &mut mean {
            *m /= rows.len() as f64;
        }
        let mut per_dim_var = vec![0.0; p];
        for &i in &rows {
            for (j, &v) in d.row(i).iter().enumerate() {
                per_dim_var[j] += (v - mean[j]).powi(2);
            }
        }
        let total_var: f64 = per_dim_var.iter().sum::<f64>() / rows.len() as f64;
        // isotropic N(0,1) in 128 dims would have total variance ~128;
        // drift adds extra spread.
        assert!(total_var > 129.0, "total variance {total_var}");
    }

    #[test]
    fn deterministic() {
        let a = SensorSpec::gas_like(200).generate(5);
        let b = SensorSpec::gas_like(200).generate(5);
        assert_eq!(a.features(), b.features());
    }
}
