//! Synthetic dataset generators.
//!
//! The paper evaluates on 13 public datasets (UCI / KEEL / Kaggle). Those
//! files are not available offline, so — per the substitution policy in
//! `DESIGN.md` — each catalog entry is backed by a seeded generator matching
//! the original's *shape*: sample count, dimensionality, class count,
//! imbalance ratio, and boundary character. The samplers and classifiers
//! under test only ever see geometry + labels, so these surrogates exercise
//! the identical code paths.

pub mod banana;
pub mod categorical;
pub mod digits;
pub mod gaussian;
pub mod sensor;

use rand::Rng;

/// Draws a standard normal variate via Box–Muller (rand_distr is not in the
/// approved dependency set, and this is all we need from it).
#[must_use]
pub fn randn(rng: &mut impl Rng) -> f64 {
    // Avoid ln(0) by sampling u1 from the half-open (0,1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Class weights whose max/min ratio equals `ir`, decaying geometrically
/// from the majority class 0 to the minority class `q-1`, normalized to 1.
///
/// # Panics
/// Panics if `q == 0` or `ir < 1`.
#[must_use]
pub fn class_weights_for_ir(q: usize, ir: f64) -> Vec<f64> {
    assert!(q > 0, "need at least one class");
    assert!(ir >= 1.0, "imbalance ratio must be >= 1");
    if q == 1 {
        return vec![1.0];
    }
    let r = ir.powf(-1.0 / (q as f64 - 1.0));
    let raw: Vec<f64> = (0..q).map(|i| r.powi(i as i32)).collect();
    let sum: f64 = raw.iter().sum();
    raw.into_iter().map(|w| w / sum).collect()
}

/// Splits `n` samples across classes proportionally to `weights`, rounding
/// while guaranteeing at least one sample per class and an exact total.
#[must_use]
pub fn apportion(n: usize, weights: &[f64]) -> Vec<usize> {
    assert!(!weights.is_empty());
    assert!(n >= weights.len(), "need at least one sample per class");
    let mut counts: Vec<usize> = weights
        .iter()
        .map(|w| ((n as f64) * w).floor().max(1.0) as usize)
        .collect();
    // Fix rounding drift by adjusting the majority (largest) class.
    let total: usize = counts.iter().sum();
    let argmax = (0..counts.len())
        .max_by(|&a, &b| {
            weights[a]
                .partial_cmp(&weights[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("non-empty");
    if total < n {
        counts[argmax] += n - total;
    } else if total > n {
        let excess = total - n;
        assert!(
            counts[argmax] > excess,
            "cannot apportion {n} samples over {} classes with these weights",
            weights.len()
        );
        counts[argmax] -= excess;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    #[test]
    fn randn_moments() {
        let mut rng = rng_from_seed(1);
        let n = 40_000;
        let xs: Vec<f64> = (0..n).map(|_| randn(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn weights_hit_requested_ir() {
        for &(q, ir) in &[(2usize, 1.25f64), (4, 18.62), (7, 4558.6), (10, 2.19)] {
            let w = class_weights_for_ir(q, ir);
            assert_eq!(w.len(), q);
            assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            let ratio = w[0] / w[q - 1];
            assert!((ratio - ir).abs() / ir < 1e-9, "q={q} ir={ir} got {ratio}");
        }
    }

    #[test]
    fn apportion_exact_and_positive() {
        let w = class_weights_for_ir(7, 4558.6);
        let counts = apportion(58_000, &w);
        assert_eq!(counts.iter().sum::<usize>(), 58_000);
        assert!(counts.iter().all(|&c| c >= 1));
        // realized IR should be near target given integer rounding
        let ir = *counts.iter().max().unwrap() as f64 / *counts.iter().min().unwrap() as f64;
        assert!(ir > 1000.0, "realized IR {ir}");
    }

    #[test]
    fn apportion_balanced() {
        let counts = apportion(10, &[0.5, 0.5]);
        assert_eq!(counts, vec![5, 5]);
    }
}
