//! Rule-labelled categorical / mixed-type generator.
//!
//! Surrogate for Car Evaluation (S3, fully categorical, 4 skewed classes)
//! and for the categorical part of Credit Approval (S1, mixed types). Labels
//! come from a noisy ordinal scoring rule — samples are ranked by the sum of
//! their ordinal codes and the rank range is cut into skewed class bands —
//! which produces the grid-like, overlapping class structure visible in the
//! paper's Fig. 5(c) while guaranteeing every class is populated at any
//! scale.

use super::apportion;
use crate::dataset::{Dataset, FeatureKind};
use crate::rng::rng_from_seed;
use rand::Rng;

/// Parameters of the categorical rule generator.
#[derive(Debug, Clone)]
pub struct CategoricalSpec {
    /// Total samples.
    pub n_samples: usize,
    /// Cardinality of each categorical feature (length = feature count).
    pub cardinalities: Vec<usize>,
    /// Number of classes.
    pub n_classes: usize,
    /// Per-class share of the score-ranked samples (class 0 = lowest
    /// scores). Normalized internally.
    pub class_weights: Vec<f64>,
    /// Probability that a label is re-drawn uniformly (boundary blur).
    pub label_noise: f64,
}

impl CategoricalSpec {
    /// A Car-Evaluation-like default: 6 features of cardinality 3–4, 4
    /// classes with IR ≈ 18.6.
    #[must_use]
    pub fn car_like(n_samples: usize) -> Self {
        Self {
            n_samples,
            cardinalities: vec![4, 4, 4, 3, 3, 3],
            n_classes: 4,
            class_weights: super::class_weights_for_ir(4, 18.62),
            label_noise: 0.08,
        }
    }

    /// Generates the dataset; all columns are [`FeatureKind::Categorical`].
    ///
    /// # Panics
    /// Panics if `class_weights.len() != n_classes`.
    #[must_use]
    pub fn generate(&self, seed: u64) -> Dataset {
        assert_eq!(
            self.class_weights.len(),
            self.n_classes,
            "need one weight per class"
        );
        let mut rng = rng_from_seed(seed);
        let p = self.cardinalities.len();
        let mut features = Vec::with_capacity(self.n_samples * p);
        let mut scores = Vec::with_capacity(self.n_samples);
        for _ in 0..self.n_samples {
            let mut score = 0.0;
            for &card in &self.cardinalities {
                let v = rng.gen_range(0..card);
                features.push(v as f64);
                score += v as f64;
            }
            // tiny jitter so equal integer scores get a random ordering
            scores.push(score + rng.gen::<f64>() * 0.5);
        }
        // Rank-based banding: lowest scores -> class 0 (majority by weight).
        let mut order: Vec<usize> = (0..self.n_samples).collect();
        order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("finite scores"));
        let counts = apportion(self.n_samples, &self.class_weights);
        let mut labels = vec![0u32; self.n_samples];
        let mut cursor = 0usize;
        for (class, &count) in counts.iter().enumerate() {
            for &row in &order[cursor..cursor + count] {
                labels[row] = class as u32;
            }
            cursor += count;
        }
        for label in &mut labels {
            if rng.gen::<f64>() < self.label_noise {
                *label = rng.gen_range(0..self.n_classes as u32);
            }
        }
        Dataset::from_parts(features, labels, p, self.n_classes)
            .with_kinds(vec![FeatureKind::Categorical; p])
    }
}

/// Mixed numeric + categorical generator (Credit-Approval-like, S1): the
/// numeric block is two overlapping Gaussians, the categorical block is
/// weakly class-correlated codes.
#[derive(Debug, Clone)]
pub struct MixedSpec {
    /// Total samples.
    pub n_samples: usize,
    /// Number of numeric columns.
    pub numeric: usize,
    /// Cardinalities of the categorical columns.
    pub categorical: Vec<usize>,
    /// Majority/minority ratio.
    pub imbalance_ratio: f64,
    /// Separation between the two numeric class means (in stds).
    pub separation: f64,
    /// Fraction of samples whose numeric block is drawn from the other
    /// class's distribution while keeping their label (interleaving).
    pub scatter: f64,
}

impl MixedSpec {
    /// Generates the two-class mixed dataset.
    #[must_use]
    pub fn generate(&self, seed: u64) -> Dataset {
        use super::{apportion, randn};
        let mut rng = rng_from_seed(seed);
        let p = self.numeric + self.categorical.len();
        let weights = [
            self.imbalance_ratio / (1.0 + self.imbalance_ratio),
            1.0 / (1.0 + self.imbalance_ratio),
        ];
        let counts = apportion(self.n_samples, &weights);
        let mut features = Vec::with_capacity(self.n_samples * p);
        let mut labels = Vec::with_capacity(self.n_samples);
        for (class, &count) in counts.iter().enumerate() {
            for _ in 0..count {
                let shape = if self.scatter > 0.0 && rng.gen::<f64>() < self.scatter {
                    1 - class
                } else {
                    class
                };
                let offset = if shape == 0 { 0.0 } else { self.separation };
                for j in 0..self.numeric {
                    // alternate sign so classes separate along a diagonal
                    let dir = if j % 2 == 0 { 1.0 } else { -0.5 };
                    features.push(offset * dir + randn(&mut rng));
                }
                for &card in &self.categorical {
                    // categorical code biased by class with 60/40 tilt
                    let biased = rng.gen::<f64>() < 0.6;
                    let v = if biased {
                        (class * (card / 2).max(1) + rng.gen_range(0..(card / 2).max(1)))
                            .min(card - 1)
                    } else {
                        rng.gen_range(0..card)
                    };
                    features.push(v as f64);
                }
                labels.push(class as u32);
            }
        }
        let mut kinds = vec![FeatureKind::Numeric; self.numeric];
        kinds.extend(vec![FeatureKind::Categorical; self.categorical.len()]);
        Dataset::from_parts(features, labels, p, 2).with_kinds(kinds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn car_like_shape() {
        let d = CategoricalSpec::car_like(1728).generate(1);
        assert_eq!(d.n_samples(), 1728);
        assert_eq!(d.n_features(), 6);
        assert_eq!(d.n_classes(), 4);
        assert_eq!(d.categorical_columns().len(), 6);
        let counts = d.class_counts();
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
        // class 0 should dominate heavily
        assert!(counts[0] > counts[3] * 5, "{counts:?}");
    }

    #[test]
    fn every_class_present_even_tiny() {
        let d = CategoricalSpec::car_like(60).generate(5);
        assert!(d.class_counts().iter().all(|&c| c > 0));
    }

    #[test]
    fn categorical_codes_within_cardinality() {
        let spec = CategoricalSpec::car_like(500);
        let d = spec.generate(2);
        for i in 0..d.n_samples() {
            for (j, &card) in spec.cardinalities.iter().enumerate() {
                let v = d.value(i, j);
                assert!(v >= 0.0 && v < card as f64 && v.fract() == 0.0);
            }
        }
    }

    #[test]
    fn labels_correlate_with_score() {
        let d = CategoricalSpec::car_like(2000).generate(3);
        // mean feature-sum should increase with class index
        let mut sums = [0.0; 4];
        let mut counts = [0usize; 4];
        for (row, label) in d.iter_rows() {
            sums[label as usize] += row.iter().sum::<f64>();
            counts[label as usize] += 1;
        }
        let means: Vec<f64> = sums
            .iter()
            .zip(counts.iter())
            .map(|(s, &c)| s / c.max(1) as f64)
            .collect();
        assert!(means[0] < means[3], "{means:?}");
    }

    #[test]
    fn mixed_spec_kinds_and_ir() {
        let d = MixedSpec {
            n_samples: 690,
            numeric: 9,
            categorical: vec![3, 4, 2, 5, 2, 3],
            imbalance_ratio: 1.25,
            separation: 1.6,
            scatter: 0.0,
        }
        .generate(3);
        assert_eq!(d.n_features(), 15);
        assert_eq!(d.categorical_columns().len(), 6);
        let ir = d.imbalance_ratio();
        assert!((ir - 1.25).abs() < 0.1, "IR {ir}");
    }

    #[test]
    fn deterministic() {
        let a = CategoricalSpec::car_like(300).generate(9);
        let b = CategoricalSpec::car_like(300).generate(9);
        assert_eq!(a.features(), b.features());
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    #[should_panic(expected = "need one weight per class")]
    fn weight_arity_checked() {
        let mut s = CategoricalSpec::car_like(10);
        s.class_weights.pop();
        let _ = s.generate(0);
    }
}
