//! Banana-shaped two-class 2-D generator (surrogate for KEEL `banana`, S5).
//!
//! Two interleaved crescents — the classic "two moons" geometry — giving the
//! curved, locally simple class boundary the paper visualizes in Fig. 5(a)
//! and on which GBABS achieves its lowest sampling ratio (~29 %).

use super::{apportion, randn};
use crate::dataset::Dataset;
use crate::rng::rng_from_seed;
use rand::Rng;
use std::f64::consts::PI;

/// Parameters of the two-crescent generator.
#[derive(Debug, Clone)]
pub struct BananaSpec {
    /// Total number of samples.
    pub n_samples: usize,
    /// Gaussian jitter added to each point (relative to unit crescent radius).
    pub noise: f64,
    /// Majority/minority ratio (class 0 is the majority).
    pub imbalance_ratio: f64,
    /// Fraction of samples generated on the *other* class's crescent while
    /// keeping their own label (fine-grained class interleaving; see
    /// `gaussian::BlobSpec::scatter`).
    pub scatter: f64,
}

impl Default for BananaSpec {
    fn default() -> Self {
        Self {
            n_samples: 5300,
            noise: 0.12,
            imbalance_ratio: 1.23,
            scatter: 0.0,
        }
    }
}

impl BananaSpec {
    /// Generates the dataset (2 features, 2 classes).
    #[must_use]
    pub fn generate(&self, seed: u64) -> Dataset {
        let mut rng = rng_from_seed(seed);
        let weights = [
            self.imbalance_ratio / (1.0 + self.imbalance_ratio),
            1.0 / (1.0 + self.imbalance_ratio),
        ];
        let counts = apportion(self.n_samples, &weights);
        let mut features = Vec::with_capacity(self.n_samples * 2);
        let mut labels = Vec::with_capacity(self.n_samples);
        for (class, &count) in counts.iter().enumerate() {
            for _ in 0..count {
                let t = rng.gen::<f64>() * PI;
                let shape = if self.scatter > 0.0 && rng.gen::<f64>() < self.scatter {
                    1 - class
                } else {
                    class
                };
                let (mut x, mut y) = if shape == 0 {
                    (t.cos(), t.sin())
                } else {
                    // second crescent: shifted and flipped
                    (1.0 - t.cos(), 0.5 - t.sin())
                };
                x += self.noise * randn(&mut rng);
                y += self.noise * randn(&mut rng);
                features.push(x);
                features.push(y);
                labels.push(class as u32);
            }
        }
        Dataset::from_parts(features, labels, 2, 2).with_name("banana")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neighbors::k_nearest;

    #[test]
    fn shape_and_imbalance() {
        let d = BananaSpec::default().generate(42);
        assert_eq!(d.n_samples(), 5300);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.n_classes(), 2);
        let ir = d.imbalance_ratio();
        assert!((ir - 1.23).abs() < 0.05, "IR {ir}");
    }

    #[test]
    fn crescents_are_knn_separable_at_low_noise() {
        let d = BananaSpec {
            n_samples: 600,
            noise: 0.05,
            imbalance_ratio: 1.0,
            scatter: 0.0,
        }
        .generate(7);
        // 1-NN leave-one-out accuracy should be high on clean moons
        let mut correct = 0;
        for i in 0..d.n_samples() {
            let nn = k_nearest(&d, d.row(i), 1, Some(i))[0];
            if d.label(nn.index) == d.label(i) {
                correct += 1;
            }
        }
        assert!(
            correct as f64 / d.n_samples() as f64 > 0.95,
            "1-NN LOO accuracy too low: {correct}/600"
        );
    }

    #[test]
    fn bounded_support() {
        let d = BananaSpec::default().generate(3);
        let (lo, hi) = d.column_bounds();
        assert!(lo.iter().all(|&v| v > -3.0));
        assert!(hi.iter().all(|&v| v < 4.0));
    }
}
