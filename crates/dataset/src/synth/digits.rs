//! Digit-image-like high-dimensional generator (surrogate for USPS, S13).
//!
//! Each class gets a smooth random "glyph" prototype on a `side × side`
//! pixel grid (random low-frequency bumps), and samples are prototype +
//! pixel noise + a small random translation. This reproduces USPS's
//! character: 256 correlated dimensions, 10 classes, high intra-class
//! variance, moderately separable.

use super::{apportion, randn};
use crate::dataset::Dataset;
use crate::rng::rng_from_seed;
use rand::Rng;

/// Parameters of the glyph generator.
#[derive(Debug, Clone)]
pub struct DigitsSpec {
    /// Total samples.
    pub n_samples: usize,
    /// Image side length (features = side²).
    pub side: usize,
    /// Number of classes ("digits").
    pub n_classes: usize,
    /// Per-class weights (normalized internally).
    pub class_weights: Vec<f64>,
    /// Pixel noise standard deviation (prototypes have unit-ish contrast).
    pub pixel_noise: f64,
    /// Maximum translation in pixels applied per sample.
    pub max_shift: usize,
}

impl DigitsSpec {
    /// USPS-like defaults: 16×16 = 256 features, 10 classes, IR ≈ 2.19.
    #[must_use]
    pub fn usps_like(n_samples: usize) -> Self {
        Self {
            n_samples,
            side: 16,
            n_classes: 10,
            class_weights: super::class_weights_for_ir(10, 2.19),
            pixel_noise: 0.25,
            max_shift: 1,
        }
    }

    fn prototype(&self, rng: &mut impl Rng) -> Vec<f64> {
        let s = self.side;
        let mut img = vec![0.0; s * s];
        // 4–7 Gaussian bumps of random position/width/sign form a "glyph"
        let bumps = rng.gen_range(4..8);
        for _ in 0..bumps {
            let cx = rng.gen_range(0.2..0.8) * s as f64;
            let cy = rng.gen_range(0.2..0.8) * s as f64;
            let sigma = rng.gen_range(1.2..2.8);
            let amp = if rng.gen::<f64>() < 0.8 { 1.0 } else { -0.6 };
            for y in 0..s {
                for x in 0..s {
                    let dx = x as f64 - cx;
                    let dy = y as f64 - cy;
                    img[y * s + x] += amp * (-(dx * dx + dy * dy) / (2.0 * sigma * sigma)).exp();
                }
            }
        }
        img
    }

    /// Generates the dataset.
    #[must_use]
    pub fn generate(&self, seed: u64) -> Dataset {
        let mut rng = rng_from_seed(seed);
        let s = self.side;
        let p = s * s;
        let prototypes: Vec<Vec<f64>> = (0..self.n_classes)
            .map(|_| self.prototype(&mut rng))
            .collect();
        let counts = apportion(self.n_samples, &self.class_weights);
        let mut features = Vec::with_capacity(self.n_samples * p);
        let mut labels = Vec::with_capacity(self.n_samples);
        let shift_range = self.max_shift as i64;
        for (class, &count) in counts.iter().enumerate() {
            let proto = &prototypes[class];
            for _ in 0..count {
                let dx = rng.gen_range(-shift_range..=shift_range);
                let dy = rng.gen_range(-shift_range..=shift_range);
                for y in 0..s as i64 {
                    for x in 0..s as i64 {
                        let sx = (x - dx).clamp(0, s as i64 - 1) as usize;
                        let sy = (y - dy).clamp(0, s as i64 - 1) as usize;
                        features.push(proto[sy * s + sx] + self.pixel_noise * randn(&mut rng));
                    }
                }
                labels.push(class as u32);
            }
        }
        Dataset::from_parts(features, labels, p, self.n_classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neighbors::k_nearest;
    use crate::split::stratified_subsample;

    #[test]
    fn usps_like_shape() {
        let d = DigitsSpec::usps_like(930).generate(1);
        assert_eq!(d.n_samples(), 930);
        assert_eq!(d.n_features(), 256);
        assert_eq!(d.n_classes(), 10);
        let ir = d.imbalance_ratio();
        assert!(ir > 1.5 && ir < 3.0, "IR {ir}");
    }

    #[test]
    fn classes_are_mostly_knn_separable() {
        let d = DigitsSpec::usps_like(600).generate(4);
        let keep = stratified_subsample(&d, 300, 0);
        let s = d.select(&keep);
        let mut correct = 0;
        for i in 0..s.n_samples() {
            let nn = k_nearest(&s, s.row(i), 1, Some(i))[0];
            if s.label(nn.index) == s.label(i) {
                correct += 1;
            }
        }
        let acc = correct as f64 / s.n_samples() as f64;
        assert!(acc > 0.8, "1-NN LOO accuracy {acc}");
    }

    #[test]
    fn deterministic() {
        let a = DigitsSpec::usps_like(100).generate(9);
        let b = DigitsSpec::usps_like(100).generate(9);
        assert_eq!(a.features(), b.features());
    }
}
