//! The paper's dataset catalog (Table I) backed by synthetic surrogates.
//!
//! Each entry records the original's metadata — sample count, feature count,
//! class count, imbalance ratio, source — and a generator matched to the
//! original's boundary character (see `DESIGN.md` for the substitution
//! rationale). `generate(scale, seed)` materializes the surrogate at a
//! fraction of the original size so the experiment harness can trade
//! fidelity for wall-clock.

use crate::dataset::Dataset;
use crate::synth::banana::BananaSpec;
use crate::synth::categorical::{CategoricalSpec, MixedSpec};
use crate::synth::class_weights_for_ir;
use crate::synth::digits::DigitsSpec;
use crate::synth::gaussian::BlobSpec;
use crate::synth::sensor::SensorSpec;
use serde::{Deserialize, Serialize};

/// Identifier of a catalog dataset (the paper's renames S1–S13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetId {
    /// Credit Approval — 690×15, 2 classes, IR 1.25, mixed types.
    S1,
    /// Diabetes — 768×8, 2 classes, IR 1.87, overlapping numerics.
    S2,
    /// Car Evaluation — 1728×6, 4 classes, IR 18.62, categorical.
    S3,
    /// Pumpkin Seeds — 2500×12, 2 classes, IR 1.08.
    S4,
    /// banana — 5300×2, 2 classes, IR 1.23, curved boundary.
    S5,
    /// page-blocks — 5473×11, 5 classes, IR 175.46.
    S6,
    /// coil2000 — 9822×85, 2 classes, IR 15.76, weak high-dim signal.
    S7,
    /// Dry Bean — 13611×16, 7 classes, IR 6.79.
    S8,
    /// HTRU2 — 17898×8, 2 classes, IR 9.92.
    S9,
    /// magic — 19020×10, 2 classes, IR 1.84.
    S10,
    /// shuttle — 58000×9, 7 classes, IR 4558.6.
    S11,
    /// Gas Sensor — 13910×128, 6 classes, IR 1.83.
    S12,
    /// USPS — 9298×256, 10 classes, IR 2.19.
    S13,
}

impl DatasetId {
    /// All catalog ids in the paper's Table I order.
    pub const ALL: [DatasetId; 13] = [
        DatasetId::S1,
        DatasetId::S2,
        DatasetId::S3,
        DatasetId::S4,
        DatasetId::S5,
        DatasetId::S6,
        DatasetId::S7,
        DatasetId::S8,
        DatasetId::S9,
        DatasetId::S10,
        DatasetId::S11,
        DatasetId::S12,
        DatasetId::S13,
    ];

    /// The paper's short rename ("S1" … "S13").
    #[must_use]
    pub fn rename(self) -> &'static str {
        match self {
            DatasetId::S1 => "S1",
            DatasetId::S2 => "S2",
            DatasetId::S3 => "S3",
            DatasetId::S4 => "S4",
            DatasetId::S5 => "S5",
            DatasetId::S6 => "S6",
            DatasetId::S7 => "S7",
            DatasetId::S8 => "S8",
            DatasetId::S9 => "S9",
            DatasetId::S10 => "S10",
            DatasetId::S11 => "S11",
            DatasetId::S12 => "S12",
            DatasetId::S13 => "S13",
        }
    }

    /// Table-I metadata of the original dataset.
    #[must_use]
    pub fn info(self) -> DatasetInfo {
        match self {
            DatasetId::S1 => DatasetInfo::new("Credit Approval", 690, 15, 2, 1.25, "UCI"),
            DatasetId::S2 => DatasetInfo::new("Diabetes", 768, 8, 2, 1.87, "UCI"),
            DatasetId::S3 => DatasetInfo::new("Car Evaluation", 1728, 6, 4, 18.62, "UCI"),
            DatasetId::S4 => DatasetInfo::new("Pumpkin Seeds", 2500, 12, 2, 1.08, "Kaggle"),
            DatasetId::S5 => DatasetInfo::new("banana", 5300, 2, 2, 1.23, "KEEL"),
            DatasetId::S6 => DatasetInfo::new("page-blocks", 5473, 11, 5, 175.46, "UCI"),
            DatasetId::S7 => DatasetInfo::new("coil2000", 9822, 85, 2, 15.76, "KEEL"),
            DatasetId::S8 => DatasetInfo::new("Dry Bean", 13611, 16, 7, 6.79, "UCI"),
            DatasetId::S9 => DatasetInfo::new("HTRU2", 17898, 8, 2, 9.92, "UCI"),
            DatasetId::S10 => DatasetInfo::new("magic", 19020, 10, 2, 1.84, "KEEL"),
            DatasetId::S11 => DatasetInfo::new("shuttle", 58000, 9, 7, 4558.6, "KEEL"),
            DatasetId::S12 => DatasetInfo::new("Gas Sensor", 13910, 128, 6, 1.83, "UCI"),
            DatasetId::S13 => DatasetInfo::new("USPS", 9298, 256, 10, 2.19, "VLDB'11"),
        }
    }

    /// Generates the surrogate at `scale` × the original sample count
    /// (clamped to at least 10 samples per class), deterministically in
    /// `seed`.
    ///
    /// # Panics
    /// Panics if `scale` is not positive.
    #[must_use]
    pub fn generate(self, scale: f64, seed: u64) -> Dataset {
        assert!(scale > 0.0, "scale must be positive");
        let info = self.info();
        let n = ((info.samples as f64 * scale).round() as usize)
            .max(info.classes * 10)
            .min(info.samples);
        let d = match self {
            DatasetId::S1 => MixedSpec {
                n_samples: n,
                numeric: 9,
                categorical: vec![3, 4, 2, 5, 2, 3],
                imbalance_ratio: 1.25,
                separation: 1.7,
                scatter: 0.15,
            }
            .generate(seed),
            DatasetId::S2 => BlobSpec {
                n_samples: n,
                n_features: 8,
                n_classes: 2,
                class_weights: class_weights_for_ir(2, 1.87),
                blobs_per_class: 2,
                separation: 2.4,
                scale: 1.0,
                informative_dims: 6,
                scatter: 0.08,
            }
            .generate(seed),
            DatasetId::S3 => CategoricalSpec::car_like(n).generate(seed),
            DatasetId::S4 => BlobSpec {
                n_samples: n,
                n_features: 12,
                n_classes: 2,
                class_weights: class_weights_for_ir(2, 1.08),
                blobs_per_class: 1,
                separation: 2.6,
                scale: 1.0,
                informative_dims: 10,
                scatter: 0.02,
            }
            .generate(seed),
            DatasetId::S5 => BananaSpec {
                n_samples: n,
                noise: 0.12,
                imbalance_ratio: 1.23,
                scatter: 0.05,
            }
            .generate(seed),
            DatasetId::S6 => BlobSpec {
                n_samples: n,
                n_features: 11,
                n_classes: 5,
                class_weights: class_weights_for_ir(5, 175.46),
                blobs_per_class: 1,
                separation: 3.0,
                scale: 1.0,
                informative_dims: 8,
                scatter: 0.005,
            }
            .generate(seed),
            DatasetId::S7 => BlobSpec {
                n_samples: n,
                n_features: 85,
                n_classes: 2,
                class_weights: class_weights_for_ir(2, 15.76),
                blobs_per_class: 3,
                separation: 1.1, // weak signal: heavily overlapping
                scale: 1.0,
                informative_dims: 8,
                scatter: 0.15,
            }
            .generate(seed),
            DatasetId::S8 => BlobSpec {
                n_samples: n,
                n_features: 16,
                n_classes: 7,
                class_weights: class_weights_for_ir(7, 6.79),
                blobs_per_class: 1,
                separation: 3.5,
                scale: 1.0,
                informative_dims: 12,
                scatter: 0.01,
            }
            .generate(seed),
            DatasetId::S9 => BlobSpec {
                n_samples: n,
                n_features: 8,
                n_classes: 2,
                class_weights: class_weights_for_ir(2, 9.92),
                blobs_per_class: 2,
                separation: 4.5,
                scale: 1.0,
                informative_dims: 8,
                scatter: 0.04,
            }
            .generate(seed),
            DatasetId::S10 => BlobSpec {
                n_samples: n,
                n_features: 10,
                n_classes: 2,
                class_weights: class_weights_for_ir(2, 1.84),
                blobs_per_class: 3,
                separation: 2.2,
                scale: 1.0,
                informative_dims: 10,
                scatter: 0.07,
            }
            .generate(seed),
            DatasetId::S11 => BlobSpec {
                n_samples: n,
                n_features: 9,
                n_classes: 7,
                class_weights: class_weights_for_ir(7, 4558.6),
                blobs_per_class: 1,
                separation: 6.0, // shuttle is famously near-separable
                scale: 1.0,
                informative_dims: 9,
                scatter: 0.01,
            }
            .generate(seed),
            DatasetId::S12 => SensorSpec::gas_like(n).generate(seed),
            DatasetId::S13 => DigitsSpec::usps_like(n).generate(seed),
        };
        d.with_name(self.rename())
    }
}

/// Metadata of an original dataset as listed in the paper's Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetInfo {
    /// Original dataset name.
    pub name: &'static str,
    /// Original sample count.
    pub samples: usize,
    /// Feature count.
    pub features: usize,
    /// Class count.
    pub classes: usize,
    /// Majority/minority imbalance ratio.
    pub imbalance_ratio: f64,
    /// Original source repository.
    pub source: &'static str,
}

impl DatasetInfo {
    fn new(
        name: &'static str,
        samples: usize,
        features: usize,
        classes: usize,
        imbalance_ratio: f64,
        source: &'static str,
    ) -> Self {
        Self {
            name,
            samples,
            features,
            classes,
            imbalance_ratio,
            source,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ids_have_unique_renames() {
        let mut seen = std::collections::HashSet::new();
        for id in DatasetId::ALL {
            assert!(seen.insert(id.rename()));
        }
        assert_eq!(seen.len(), 13);
    }

    #[test]
    fn full_scale_matches_table_one_shape() {
        // Small-to-medium sets at full scale; big ones at reduced scale but
        // checking features/classes which are scale-independent.
        for id in [DatasetId::S1, DatasetId::S2, DatasetId::S3, DatasetId::S5] {
            let info = id.info();
            let d = id.generate(1.0, 7);
            assert_eq!(d.n_samples(), info.samples, "{}", id.rename());
            assert_eq!(d.n_features(), info.features, "{}", id.rename());
            assert_eq!(d.n_classes(), info.classes, "{}", id.rename());
        }
    }

    #[test]
    fn scaled_generation_shrinks_but_keeps_schema() {
        for id in DatasetId::ALL {
            let info = id.info();
            let d = id.generate(0.05, 3);
            assert_eq!(d.n_features(), info.features, "{}", id.rename());
            assert_eq!(d.n_classes(), info.classes, "{}", id.rename());
            assert!(d.n_samples() <= info.samples);
            assert!(
                d.class_counts().iter().all(|&c| c > 0),
                "{} lost a class at 5% scale",
                id.rename()
            );
        }
    }

    #[test]
    fn imbalance_ratios_are_in_the_right_regime() {
        // IR fidelity within 25% except extreme-IR sets where integer
        // rounding at reduced n dominates — check ordering instead.
        let d4 = DatasetId::S4.generate(1.0, 1);
        assert!((d4.imbalance_ratio() - 1.08).abs() < 0.15);
        let d6 = DatasetId::S6.generate(0.5, 1);
        assert!(d6.imbalance_ratio() > 40.0);
        let d11 = DatasetId::S11.generate(0.2, 1);
        assert!(d11.imbalance_ratio() > 100.0);
    }

    #[test]
    fn names_are_attached() {
        let d = DatasetId::S9.generate(0.05, 0);
        assert_eq!(d.name(), "S9");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = DatasetId::S5.generate(0.1, 11);
        let b = DatasetId::S5.generate(0.1, 11);
        assert_eq!(a.features(), b.features());
        let c = DatasetId::S5.generate(0.1, 12);
        assert_ne!(a.features(), c.features());
    }
}
