//! `gbabs` — granular-ball borderline sampling from the command line.

use gbabs_cli::args::USAGE;
use gbabs_cli::{commands, parse};

fn main() {
    // Fail fast on a misspelled GB_SIMD before any work starts: a typo'd
    // tier must be a startup error naming the valid tiers, never a silent
    // fall-through to auto-detection.
    if let Err(e) = gb_dataset::validate_simd_env() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "-h" || a == "--help") {
        print!("{USAGE}");
        return;
    }
    let cli = match parse(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    match commands::run(&cli) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
