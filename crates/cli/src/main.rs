//! `gbabs` — granular-ball borderline sampling from the command line.

use gbabs_cli::args::USAGE;
use gbabs_cli::{commands, parse};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "-h" || a == "--help") {
        print!("{USAGE}");
        return;
    }
    let cli = match parse(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    match commands::run(&cli) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
