//! Subcommand implementations.

use crate::args::{Cli, Command, Method};
use gb_dataset::io::{read_csv, write_csv, CsvOptions};
use gb_dataset::Dataset;
use gb_sampling::{
    Adasyn, BorderlineSmote, CondensedNn, EditedNn, Ggbs, Igbs, Smote, SmoteEnn, SmoteTomek, Srs,
    Stratified, Systematic, TomekLinks,
};
use gbabs::{gbabs, GbabsSampler, RdGbgConfig, Sampler};
use std::fmt::Write as _;

/// Builds the requested sampler. `ratio` must be validated by the parser
/// for the ratio-based methods; `backend` selects the neighbour index of
/// every granulation-based method (GBABS, GGBS, IGBS) — output-invariant,
/// speed only — and is ignored by the index-free samplers. `metric`
/// selects the distance metric of the GBABS granulation (the baselines
/// stay squared-Euclidean, matching their papers).
#[must_use]
pub fn build_sampler(
    method: Method,
    rho: usize,
    ratio: Option<f64>,
    backend: gb_dataset::index::GranulationBackend,
    metric: gb_dataset::Metric,
) -> Box<dyn Sampler> {
    match method {
        Method::Gbabs => Box::new(GbabsSampler {
            density_tolerance: rho,
            backend,
            metric,
        }),
        Method::Ggbs => Box::new(Ggbs {
            config: gb_sampling::ggbs::GgbsConfig {
                backend,
                ..Default::default()
            },
        }),
        Method::Igbs => Box::new(Igbs {
            config: gb_sampling::igbs::IgbsConfig {
                backend,
                ..Default::default()
            },
        }),
        Method::Srs => Box::new(Srs::new(ratio.expect("parser enforces ratio"))),
        Method::Stratified => Box::new(Stratified::new(ratio.expect("parser enforces ratio"))),
        Method::Systematic => Box::new(Systematic::new(ratio.expect("parser enforces ratio"))),
        Method::Smote => Box::new(Smote::default()),
        Method::BorderlineSmote => Box::new(BorderlineSmote::default()),
        Method::Adasyn => Box::new(Adasyn::default()),
        Method::Tomek => Box::new(TomekLinks::default()),
        Method::Cnn => Box::new(CondensedNn::new(16)),
        Method::Enn => Box::new(EditedNn::default()),
        Method::SmoteTomek => Box::new(SmoteTomek::default()),
        Method::SmoteEnn => Box::new(SmoteEnn::default()),
    }
}

/// Runs a parsed command line. Returns the human-readable report that
/// `main` prints (side effects: reads the input CSV, and for `sample`
/// writes the output CSV; `serve` never returns on success).
///
/// # Errors
/// Any I/O or CSV-format failure, and degenerate inputs (zero data rows,
/// a single class where sampling needs two) — stringified for the user
/// instead of panicking.
pub fn run(cli: &Cli) -> Result<String, String> {
    // The router fronts gb-serve backends and never reads a CSV.
    if cli.command == Command::Router {
        return router(cli);
    }
    let data = read_csv(&cli.input, &CsvOptions::default())
        .map_err(|e| format!("{}: {e}", cli.input.display()))?;
    match cli.command {
        Command::Sample => sample(cli, &data),
        Command::Inspect => Ok(inspect(cli, &data)),
        Command::Serve => serve(cli, &data),
        Command::Router => unreachable!("handled above"),
    }
}

fn sample(cli: &Cli, data: &Dataset) -> Result<String, String> {
    if data.n_classes() < 2 && cli.method == Method::Gbabs {
        return Err(format!(
            "{}: all {} rows share one class label; borderline sampling \
             needs at least 2 classes",
            cli.input.display(),
            data.n_samples()
        ));
    }
    let sampler = build_sampler(cli.method, cli.rho, cli.ratio, cli.backend, cli.metric);
    let out = if cli.progress && cli.method == Method::Gbabs {
        // Instrumented path: same algorithm, with per-iteration progress
        // events printed to stderr. The sink only observes — the sampled
        // output is bit-identical to the uninstrumented run.
        let cfg = RdGbgConfig {
            density_tolerance: cli.rho,
            seed: cli.seed,
            backend: cli.backend,
            metric: cli.metric,
            ..RdGbgConfig::default()
        };
        let mut sink = |e: &gbabs::ProgressEvent| eprintln!("{e}");
        let res = gbabs::gbabs_with_progress(data, &cfg, Some(&mut sink));
        gbabs::SampleResult {
            dataset: res.sampled_dataset(data),
            kept_rows: Some(res.sampled_rows),
        }
    } else {
        if cli.progress {
            eprintln!(
                "note: --progress is instrumented for the gbabs method only; \
                 running {} without progress events",
                sampler.name()
            );
        }
        sampler.sample(data, cli.seed)
    };
    if out.dataset.n_samples() == 0 {
        return Err(format!(
            "{} produced an empty sample; nothing written",
            sampler.name()
        ));
    }
    let path = cli.output.as_ref().expect("parser enforces output");
    write_csv(&out.dataset, path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut report = String::new();
    let _ = writeln!(
        report,
        "{}: {} rows -> {} rows (ratio {:.3})",
        sampler.name(),
        data.n_samples(),
        out.dataset.n_samples(),
        out.dataset.n_samples() as f64 / data.n_samples().max(1) as f64,
    );
    let _ = writeln!(report, "wrote {}", path.display());
    Ok(report)
}

fn inspect(cli: &Cli, data: &Dataset) -> String {
    let cfg = RdGbgConfig {
        density_tolerance: cli.rho,
        seed: cli.seed,
        backend: cli.backend,
        metric: cli.metric,
        ..RdGbgConfig::default()
    };
    let summary = gb_dataset::summary::describe(data);
    let result = gbabs(data, &cfg);
    let balls = &result.model.balls;
    let singleton = balls.iter().filter(|b| b.radius == 0.0).count();
    let largest = balls
        .iter()
        .map(gbabs::GranularBall::len)
        .max()
        .unwrap_or(0);
    let mut report = String::new();
    let _ = writeln!(
        report,
        "{}: {} samples x {} features, {} classes (IR {:.2})",
        data.name(),
        data.n_samples(),
        data.n_features(),
        data.n_classes(),
        data.imbalance_ratio(),
    );
    let _ = writeln!(report, "class counts: {:?}", summary.class_counts);
    let _ = writeln!(
        report,
        "{:<6} {:<11} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "col", "kind", "min", "max", "mean", "std", "distinct"
    );
    for c in &summary.columns {
        let _ = writeln!(
            report,
            "f{:<5} {:<11} {:>12.4} {:>12.4} {:>12.4} {:>12.4} {:>9}{}",
            c.index,
            format!("{:?}", c.kind),
            c.min,
            c.max,
            c.mean,
            c.std,
            c.distinct,
            if c.is_constant() { "  (constant)" } else { "" },
        );
    }
    let _ = writeln!(
        report,
        "RD-GBG (rho = {}): {} balls ({} singleton, largest {}), {} iterations",
        cli.rho,
        balls.len(),
        singleton,
        largest,
        result.model.iterations,
    );
    let _ = writeln!(
        report,
        "noise detected: {} rows ({:.1}%)",
        result.model.noise.len(),
        100.0 * result.model.noise.len() as f64 / data.n_samples().max(1) as f64,
    );
    let _ = writeln!(
        report,
        "borderline sample: {} rows (ratio {:.3})",
        result.sampled_rows.len(),
        result.sampling_ratio(data),
    );
    report
}

/// `gbabs serve`: granulate the input once, register it as model
/// `default`, and serve predictions until the process is killed. With
/// `--model-dir` the registry is disk-backed: models persisted by earlier
/// runs come back (cold) after a restart, `POST /models/{name}` uploads
/// survive, and `--model-mem-budget` bounds resident memory via LRU
/// eviction.
///
/// # Errors
/// Bind failures, store failures, and degenerate inputs, stringified.
fn serve(cli: &Cli, data: &Dataset) -> Result<String, String> {
    use gb_serve::registry::LoadOptions;
    use gb_serve::{ModelRegistry, ModelStore, ServeConfig, Server};
    use std::sync::Arc;

    let cfg = RdGbgConfig {
        density_tolerance: cli.rho,
        seed: cli.seed,
        backend: cli.backend,
        metric: cli.metric,
        ..RdGbgConfig::default()
    };
    let model = gbabs::rd_gbg(data, &cfg);
    let registry = match &cli.model_dir {
        Some(dir) => {
            let store =
                ModelStore::open(dir).map_err(|e| format!("--model-dir {}: {e}", dir.display()))?;
            let (registry, scan) = ModelRegistry::with_store(store, cli.model_mem_budget)
                .map_err(|e| format!("--model-dir {}: scan failed: {e}", dir.display()))?;
            println!(
                "model store {}: {} persisted model(s) ready for lazy reload{}",
                dir.display(),
                scan.found.len(),
                match cli.model_mem_budget {
                    Some(b) => format!(", resident budget {b} bytes"),
                    None => String::new(),
                },
            );
            for q in &scan.quarantined {
                eprintln!("warning: quarantined corrupt store file {}", q.display());
            }
            Arc::new(registry)
        }
        None => Arc::new(ModelRegistry::new()),
    };
    registry.set_max_versions(cli.max_versions);
    if let Some(n) = cli.max_versions {
        println!("version retention: newest {n} store version(s) per tenant");
    }
    let options = LoadOptions {
        k: cli.k,
        n_classes: Some(data.n_classes()),
        backend: cli.backend,
        ..LoadOptions::default()
    };
    // `publish` persists "default" when a store is attached (so a restart
    // with the same --model-dir can serve it before re-granulating
    // finishes); without a store it is a plain in-memory load.
    let served = registry
        .publish("default", &model, &options)
        .map_err(|e| format!("{}: {e}", cli.input.display()))?;
    // Armed only after the boot publish above, so the "default" model is
    // always persisted cleanly before chaos begins.
    if let Some(rate) = cli.store_fault_rate {
        let store = registry
            .store()
            .ok_or_else(|| "--store-fault-rate requires --model-dir".to_string())?;
        store.set_fault_policy(Some(gb_serve::FaultPolicy::new(rate, cli.store_fault_seed)));
        println!(
            "store fault injection ARMED: rate {rate}, seed {} (chaos testing only)",
            cli.store_fault_seed
        );
    }
    let server = Server::bind(
        ServeConfig {
            addr: cli.addr.clone(),
            workers: cli.workers,
            micro_batch: cli.micro_batch,
            batch_wait: std::time::Duration::from_micros(cli.batch_wait_us),
            request_timeout: std::time::Duration::from_millis(cli.request_timeout_ms),
            access_log: cli.access_log.clone(),
            preload: cli.preload,
            ..ServeConfig::default()
        },
        registry,
    )
    .map_err(|e| format!("bind {}: {e}", cli.addr))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    println!(
        "serving '{}' ({} balls over {} rows, k = {}, metric {}, backend {}) on http://{addr}",
        data.name(),
        served.stats.n_balls,
        data.n_samples(),
        cli.k,
        cli.metric.name(),
        cli.backend,
    );
    if cli.preload > 0 {
        println!(
            "preload: warming up to {} most-recently-used tenant(s) in the background",
            cli.preload
        );
    }
    println!(
        "endpoints: POST /predict | POST /sample | POST/DELETE/GET /models/{{name}} | \
         POST /models/{{name}}/rows /models/{{name}}/rollback | \
         GET /model /models /healthz /readyz /metrics /debug/requests"
    );
    if let Some(target) = &cli.access_log {
        println!("access log: one JSON line per request -> {target}");
    }
    let handle = server.start().map_err(|e| e.to_string())?;
    handle.wait();
    Ok(String::new())
}

/// `gbabs router`: front N gb-serve backends with a consistent-hash
/// sharding router. Tenants are partitioned over the backends, publishes
/// replicate to every healthy shard, and unhealthy backends are routed
/// around (see `docs/CLUSTER.md`). Runs until the process is killed.
///
/// # Errors
/// Bind failures and an empty backend list, stringified.
fn router(cli: &Cli) -> Result<String, String> {
    use gb_serve::{Router, RouterConfig};

    let config = RouterConfig {
        addr: cli.addr.clone(),
        backends: cli.backends.clone(),
        workers: cli.workers,
        vnodes: cli.vnodes,
        health_interval: std::time::Duration::from_millis(cli.health_interval_ms),
        request_timeout: std::time::Duration::from_millis(cli.request_timeout_ms),
        access_log: cli.access_log.clone(),
        ..RouterConfig::default()
    };
    let router = Router::bind(config).map_err(|e| format!("bind {}: {e}", cli.addr))?;
    let addr = router.local_addr().map_err(|e| e.to_string())?;
    // One synchronous health pass so the first requests don't race the
    // background prober.
    router.warm_up();
    println!(
        "routing {} backend(s) ({} vnodes each, /readyz every {} ms) on http://{addr}",
        cli.backends.len(),
        cli.vnodes,
        cli.health_interval_ms,
    );
    for backend in &cli.backends {
        println!("  backend http://{backend}");
    }
    println!(
        "endpoints: POST /predict | POST /sample | POST/DELETE /models/{{name}} | \
         GET /model /models /cluster /healthz /readyz /metrics /debug/requests"
    );
    if let Some(target) = &cli.access_log {
        println!("access log: one JSON line per request -> {target}");
    }
    let handle = router.start().map_err(|e| e.to_string())?;
    handle.wait();
    Ok(String::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;
    use gb_dataset::catalog::DatasetId;
    use std::path::PathBuf;

    fn write_fixture(name: &str) -> PathBuf {
        let data = DatasetId::S5.generate(0.05, 3);
        let path = std::env::temp_dir().join(name);
        write_csv(&data, &path).expect("fixture");
        path
    }

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn sample_roundtrip_writes_smaller_csv() {
        let input = write_fixture("gbabs_cli_test_in.csv");
        let output = std::env::temp_dir().join("gbabs_cli_test_out.csv");
        let cli = parse(&argv(&format!(
            "sample {} -o {} --rho 5 --seed 1",
            input.display(),
            output.display()
        )))
        .unwrap();
        let report = run(&cli).expect("sample runs");
        assert!(report.contains("GBABS"), "{report}");
        let sampled = read_csv(&output, &CsvOptions::default()).unwrap();
        let original = read_csv(&input, &CsvOptions::default()).unwrap();
        assert!(sampled.n_samples() < original.n_samples());
        assert_eq!(sampled.n_features(), original.n_features());
    }

    #[test]
    fn every_method_builds_and_runs() {
        let input = write_fixture("gbabs_cli_methods_in.csv");
        for (name, m) in Method::ALL {
            let output = std::env::temp_dir().join(format!("gbabs_cli_m_{name}.csv"));
            let ratio = if m.needs_ratio() { "--ratio 0.5" } else { "" };
            let cli = parse(&argv(&format!(
                "sample {} -o {} --method {name} {ratio}",
                input.display(),
                output.display()
            )))
            .unwrap();
            let report = run(&cli).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(report.contains("rows"), "{name}: {report}");
        }
    }

    #[test]
    fn all_backends_write_identical_samples() {
        let input = write_fixture("gbabs_cli_backend_in.csv");
        let mut outputs = Vec::new();
        for backend in ["brute", "kdtree", "vptree"] {
            let output = std::env::temp_dir().join(format!("gbabs_cli_backend_{backend}.csv"));
            let cli = parse(&argv(&format!(
                "sample {} -o {} --backend {backend} --seed 7",
                input.display(),
                output.display()
            )))
            .unwrap();
            run(&cli).expect("backend sample runs");
            outputs.push(std::fs::read_to_string(&output).unwrap());
        }
        assert_eq!(outputs[0], outputs[1], "brute vs kdtree CSV");
        assert_eq!(outputs[0], outputs[2], "brute vs vptree CSV");
    }

    #[test]
    fn inspect_reports_granulation() {
        let input = write_fixture("gbabs_cli_inspect_in.csv");
        let cli = parse(&argv(&format!("inspect {}", input.display()))).unwrap();
        let report = run(&cli).expect("inspect runs");
        assert!(report.contains("RD-GBG"), "{report}");
        assert!(report.contains("borderline sample"), "{report}");
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let cli = parse(&argv("inspect /nonexistent/nope.csv")).unwrap();
        let err = run(&cli).unwrap_err();
        assert!(err.contains("nope.csv"), "{err}");
    }

    #[test]
    fn empty_csv_is_a_clean_error() {
        let path = std::env::temp_dir().join("gbabs_cli_empty.csv");
        std::fs::write(&path, "f0,f1,label\n").unwrap();
        let cli = parse(&argv(&format!("inspect {}", path.display()))).unwrap();
        let err = run(&cli).unwrap_err();
        assert!(err.contains("no data rows"), "{err}");
    }

    #[test]
    fn single_class_sample_is_a_clean_error() {
        let path = std::env::temp_dir().join("gbabs_cli_oneclass.csv");
        std::fs::write(&path, "f0,label\n1.0,a\n2.0,a\n3.0,a\n").unwrap();
        let out = std::env::temp_dir().join("gbabs_cli_oneclass_out.csv");
        let cli = parse(&argv(&format!(
            "sample {} -o {}",
            path.display(),
            out.display()
        )))
        .unwrap();
        let err = run(&cli).unwrap_err();
        assert!(err.contains("one class"), "{err}");
        assert!(!out.exists() || std::fs::read_to_string(&out).unwrap().is_empty());
        // inspect still works on single-class data (report, no sampling)
        let cli = parse(&argv(&format!("inspect {}", path.display()))).unwrap();
        let report = run(&cli).expect("inspect runs on single-class input");
        assert!(report.contains("RD-GBG"), "{report}");
    }
}
