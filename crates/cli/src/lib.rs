//! # gbabs-cli
//!
//! Library backing the `gbabs` command-line tool: argument parsing and the
//! two subcommands, kept out of `main.rs` so they are unit-testable.
//!
//! ```text
//! gbabs sample  INPUT.csv -o OUTPUT.csv [--method M] [--rho N] [--ratio R] [--seed S]
//! gbabs inspect INPUT.csv [--rho N] [--seed S]
//! ```
//!
//! `sample` runs a sampling method over a CSV (last column = label) and
//! writes the sampled CSV; `inspect` prints the RD-GBG granulation report
//! (ball census, noise rows, borderline share) without writing anything.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod args;
pub mod commands;

pub use args::{parse, Cli, Command, Method, ParseError};
