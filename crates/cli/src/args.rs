//! Hand-rolled argument parsing (no external CLI dependency).

use gb_dataset::index::GranulationBackend;
use gb_dataset::Metric;
use std::fmt;
use std::path::PathBuf;

/// Sampling methods selectable from the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// The paper's GBABS (default).
    Gbabs,
    /// GGBS baseline.
    Ggbs,
    /// IGBS baseline (imbalanced datasets).
    Igbs,
    /// Simple random sampling (needs `--ratio`).
    Srs,
    /// Stratified sampling (needs `--ratio`).
    Stratified,
    /// Systematic sampling (needs `--ratio`).
    Systematic,
    /// SMOTE oversampling.
    Smote,
    /// Borderline-SMOTE oversampling.
    BorderlineSmote,
    /// ADASYN oversampling.
    Adasyn,
    /// Tomek-link undersampling.
    Tomek,
    /// Condensed nearest neighbour undersampling.
    Cnn,
    /// Edited nearest neighbours (Wilson editing).
    Enn,
    /// SMOTE followed by Tomek-link cleaning.
    SmoteTomek,
    /// SMOTE followed by ENN cleaning.
    SmoteEnn,
}

impl Method {
    /// All methods with their CLI spellings.
    pub const ALL: [(&'static str, Method); 14] = [
        ("gbabs", Method::Gbabs),
        ("ggbs", Method::Ggbs),
        ("igbs", Method::Igbs),
        ("srs", Method::Srs),
        ("stratified", Method::Stratified),
        ("systematic", Method::Systematic),
        ("smote", Method::Smote),
        ("borderline-smote", Method::BorderlineSmote),
        ("adasyn", Method::Adasyn),
        ("tomek", Method::Tomek),
        ("cnn", Method::Cnn),
        ("enn", Method::Enn),
        ("smote-tomek", Method::SmoteTomek),
        ("smote-enn", Method::SmoteEnn),
    ];

    /// Parses a CLI spelling.
    #[must_use]
    pub fn from_str_opt(s: &str) -> Option<Method> {
        Method::ALL
            .iter()
            .find(|(name, _)| name.eq_ignore_ascii_case(s))
            .map(|&(_, m)| m)
    }

    /// True when the method needs an explicit `--ratio`.
    #[must_use]
    pub fn needs_ratio(self) -> bool {
        matches!(self, Method::Srs | Method::Stratified | Method::Systematic)
    }
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// The subcommand to run.
    pub command: Command,
    /// Input CSV path.
    pub input: PathBuf,
    /// Output CSV path (`sample` only).
    pub output: Option<PathBuf>,
    /// Sampling method (`sample` only).
    pub method: Method,
    /// RD-GBG density tolerance ρ.
    pub rho: usize,
    /// Keep ratio for the ratio-based general samplers.
    pub ratio: Option<f64>,
    /// Seed for all randomness.
    pub seed: u64,
    /// Neighbour-index backend for every granulation the command runs
    /// (RD-GBG for gbabs/inspect/serve, the k-division GBG stage of
    /// ggbs/igbs). All backends produce identical output; this only
    /// selects the query asymptotics.
    pub backend: GranulationBackend,
    /// Distance metric for granulation and prediction (GBABS method and
    /// `inspect`/`serve`): squared-Euclidean (default, the paper's
    /// metric), Manhattan, or cosine.
    pub metric: Metric,
    /// Listen address (`serve` only).
    pub addr: String,
    /// GB-kNN vote size k (`serve` only).
    pub k: usize,
    /// Server worker threads (`serve` only).
    pub workers: usize,
    /// Micro-batch concurrent predictions (`serve` only; `--no-batch`
    /// disables).
    pub micro_batch: bool,
    /// Micro-batcher linger window in microseconds (`serve` only): how
    /// long the batcher waits after the first pending request for more
    /// arrivals to coalesce. 0 flushes immediately.
    pub batch_wait_us: u64,
    /// Model-store directory: persist accepted models and repopulate the
    /// registry after a restart (`serve` only).
    pub model_dir: Option<PathBuf>,
    /// Resident-model memory budget in bytes; least-recently-used tenants
    /// are evicted to disk when exceeded (`serve` only; requires
    /// `--model-dir`).
    pub model_mem_budget: Option<u64>,
    /// Store versions retained per tenant before the oldest links of the
    /// chain are garbage-collected after each mutation (`serve` only;
    /// requires `--model-dir`). `None` retains every version.
    pub max_versions: Option<usize>,
    /// Warm-ahead at boot: rebuild this many of the most-recently-used
    /// tenants in the background once the server starts (`serve` only;
    /// requires `--model-dir`). 0 disables.
    pub preload: usize,
    /// Per-request deadline in milliseconds (`serve` only); 0 disables
    /// deadline enforcement and restores the legacy single-read-timeout
    /// behaviour.
    pub request_timeout_ms: u64,
    /// Store fault-injection probability in (0, 1] (`serve` only; requires
    /// `--model-dir`). Chaos-testing knob — never set in production.
    pub store_fault_rate: Option<f64>,
    /// Seed for the injected-fault schedule (`serve` only).
    pub store_fault_seed: u64,
    /// Structured JSONL access-log target (`serve` only): a file path, or
    /// `stderr`/`-` for standard error. `None` disables access logging.
    pub access_log: Option<String>,
    /// Emit per-iteration granulation progress events to stderr
    /// (`sample` only; GBABS method).
    pub progress: bool,
    /// Backend gb-serve addresses the router shards tenants over
    /// (`router` only; `--backend`, repeatable, or `--backends` comma
    /// list).
    pub backends: Vec<String>,
    /// Virtual nodes per backend on the consistent-hash ring (`router`
    /// only).
    pub vnodes: usize,
    /// Backend `/readyz` poll interval in milliseconds (`router` only).
    pub health_interval_ms: u64,
}

/// Parses a byte count with an optional `K`/`M`/`G` (or `KB`/`MB`/`GB`,
/// case-insensitive) suffix: `1048576`, `64M`, `2G`, …
#[must_use]
pub fn parse_bytes(s: &str) -> Option<u64> {
    let s = s.trim();
    let upper = s.to_ascii_uppercase();
    let (digits, multiplier) = if let Some(d) = upper.strip_suffix("KB").or(upper.strip_suffix('K'))
    {
        (d, 1u64 << 10)
    } else if let Some(d) = upper.strip_suffix("MB").or(upper.strip_suffix('M')) {
        (d, 1u64 << 20)
    } else if let Some(d) = upper.strip_suffix("GB").or(upper.strip_suffix('G')) {
        (d, 1u64 << 30)
    } else {
        (upper.as_str(), 1)
    };
    let n: u64 = digits.trim().parse().ok()?;
    n.checked_mul(multiplier).filter(|&b| b > 0)
}

/// Subcommands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Sample a CSV to a new CSV.
    Sample,
    /// Print a granulation report.
    Inspect,
    /// Granulate a CSV and serve predictions over HTTP.
    Serve,
    /// Front a cluster of gb-serve backends with a consistent-hash
    /// sharding router (no input CSV — the backends own the models).
    Router,
}

/// Parse failures, rendered to the user with usage text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// No subcommand given.
    MissingCommand,
    /// Unknown subcommand.
    UnknownCommand(String),
    /// No input path given.
    MissingInput,
    /// `sample` without `-o`.
    MissingOutput,
    /// Unknown flag.
    UnknownFlag(String),
    /// A flag without its value, or a value that does not parse.
    BadValue(String),
    /// `--method` value not recognized.
    UnknownMethod(String),
    /// `--backend` value not recognized.
    UnknownBackend(String),
    /// `--metric` value not recognized.
    UnknownMetric(String),
    /// Ratio-based method without `--ratio`, or ratio out of (0, 1].
    BadRatio,
    /// `--rho` below 2 (the density rules need ρ ≥ 2).
    BadRho,
    /// `--model-mem-budget` without `--model-dir` (evicted tenants need a
    /// store to reload from).
    BudgetWithoutDir,
    /// `--store-fault-rate` without `--model-dir` (there is no store to
    /// inject faults into), or a rate outside (0, 1].
    BadFaultRate,
    /// `--max-versions` without `--model-dir` (there is no version chain
    /// without a store).
    VersionsWithoutDir,
    /// `--preload` without `--model-dir` (there are no cold tenants to
    /// warm without a store).
    PreloadWithoutDir,
    /// `router` without any `--backend`/`--backends`.
    MissingBackends,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::MissingCommand => {
                write!(f, "missing subcommand (sample | inspect | serve | router)")
            }
            ParseError::UnknownCommand(c) => write!(f, "unknown subcommand '{c}'"),
            ParseError::MissingInput => write!(f, "missing input CSV path"),
            ParseError::MissingOutput => write!(f, "sample requires -o/--output"),
            ParseError::UnknownFlag(s) => write!(f, "unknown flag '{s}'"),
            ParseError::BadValue(s) => write!(f, "bad or missing value for '{s}'"),
            ParseError::UnknownMethod(m) => {
                let names: Vec<&str> = Method::ALL.iter().map(|(n, _)| *n).collect();
                write!(
                    f,
                    "unknown method '{m}' (expected one of {})",
                    names.join(", ")
                )
            }
            ParseError::UnknownBackend(b) => {
                write!(
                    f,
                    "unknown backend '{b}' (expected auto, brute, kdtree or vptree)"
                )
            }
            ParseError::UnknownMetric(m) => {
                write!(
                    f,
                    "unknown metric '{m}' (expected sqeuclidean, manhattan or cosine)"
                )
            }
            ParseError::BadRatio => {
                write!(f, "this method requires --ratio in (0, 1]")
            }
            ParseError::BadRho => {
                write!(f, "--rho must be at least 2 (the density rules h == 1, 1 < h < rho, h == rho need it)")
            }
            ParseError::BudgetWithoutDir => {
                write!(
                    f,
                    "--model-mem-budget requires --model-dir (evicted models \
                     must have a store file to reload from)"
                )
            }
            ParseError::BadFaultRate => {
                write!(
                    f,
                    "--store-fault-rate requires --model-dir and a rate in (0, 1]"
                )
            }
            ParseError::VersionsWithoutDir => {
                write!(
                    f,
                    "--max-versions requires --model-dir (version chains live \
                     in the model store)"
                )
            }
            ParseError::PreloadWithoutDir => {
                write!(
                    f,
                    "--preload requires --model-dir (only persisted tenants \
                     can be warmed at boot)"
                )
            }
            ParseError::MissingBackends => {
                write!(
                    f,
                    "router requires at least one --backend HOST:PORT (or --backends a,b,c)"
                )
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Usage text printed on parse errors and `--help`.
pub const USAGE: &str = "\
usage:
  gbabs sample  INPUT.csv -o OUTPUT.csv [--method M] [--rho N] [--ratio R] [--seed S] [--backend B]
                [--metric D] [--progress]
  gbabs inspect INPUT.csv [--rho N] [--seed S] [--backend B] [--metric D]
  gbabs serve   INPUT.csv [--addr HOST:PORT] [--rho N] [--seed S] [--backend B] [--metric D]
                [--k K] [--workers W] [--no-batch] [--batch-wait MICROS]
                [--model-dir DIR] [--model-mem-budget BYTES] [--max-versions N] [--preload N]
                [--request-timeout-ms MS] [--store-fault-rate P] [--store-fault-seed S]
                [--access-log PATH|stderr]
  gbabs router  --backend HOST:PORT [--backend HOST:PORT ...] [--addr HOST:PORT]
                [--vnodes N] [--health-interval-ms MS] [--workers W]
                [--request-timeout-ms MS] [--access-log PATH|stderr]

methods: gbabs (default), ggbs, igbs, srs, stratified, systematic,
         smote, borderline-smote, adasyn, tomek, cnn, enn,
         smote-tomek, smote-enn
         (srs/stratified/systematic require --ratio)

options:
  -o, --output PATH   output CSV (sample)
  --method M          sampling method (default gbabs)
  --rho N             RD-GBG density tolerance (default 5, minimum 2)
  --ratio R           keep ratio in (0,1] for the general samplers
  --seed S            RNG seed (default 42)
  --backend B         granulation index: auto (default), brute, kdtree,
                      vptree — output-identical, speed differs
  --metric D          distance metric: sqeuclidean (default, the paper's
                      metric), manhattan, cosine (gbabs/inspect/serve)
  --addr HOST:PORT    serve listen address (default 127.0.0.1:8080)
  --k K               serve: GB-kNN vote size (default 1)
  --workers W         serve: worker threads (default 8)
  --no-batch          serve: disable predict micro-batching
  --batch-wait MICROS serve: micro-batcher linger window in microseconds
                      (default 300; 0 flushes immediately)
  --model-dir DIR     serve: persist models here and reload them at boot
                      (enables POST-reload survival across restarts)
  --model-mem-budget BYTES
                      serve: resident-model memory budget (suffixes K/M/G);
                      LRU tenants are evicted to the model dir when exceeded
  --max-versions N    serve: retain at most N store versions per tenant,
                      garbage-collecting the oldest after each mutation
                      (requires --model-dir; default retains all)
  --preload N         serve: rebuild the N most-recently-used tenants in
                      the background at boot (requires --model-dir)
  --request-timeout-ms MS
                      serve: per-request deadline (default 10000); slow or
                      stalled requests are rejected 408/504 when it expires;
                      0 disables deadline enforcement
  --store-fault-rate P
                      serve: inject store faults with probability P in (0,1]
                      (chaos testing; requires --model-dir)
  --store-fault-seed S
                      serve: seed for the injected-fault schedule (default 42)
  --access-log TARGET serve: write one JSON line per request (with id,
                      tenant, status, per-stage timings) to TARGET — a
                      file path, or stderr/- for standard error
  --progress          sample: print per-iteration granulation progress to
                      stderr (gbabs method only)
  --backend HOST:PORT router: add one gb-serve backend to the consistent-hash
                      ring (repeatable); --backends A,B,C adds several
  --vnodes N          router: virtual nodes per backend on the ring
                      (default 64; more = better balance)
  --health-interval-ms MS
                      router: how often each backend's /readyz is polled
                      (default 500)
";

/// Parses `args` (without the program name).
///
/// # Errors
/// Returns a [`ParseError`] describing the first problem found.
pub fn parse(args: &[String]) -> Result<Cli, ParseError> {
    let mut it = args.iter();
    let command = match it.next().map(String::as_str) {
        None => return Err(ParseError::MissingCommand),
        Some("sample") => Command::Sample,
        Some("inspect") => Command::Inspect,
        Some("serve") => Command::Serve,
        Some("router") => Command::Router,
        Some(other) => return Err(ParseError::UnknownCommand(other.to_string())),
    };
    let mut cli = Cli {
        command,
        input: PathBuf::new(),
        output: None,
        method: Method::Gbabs,
        rho: 5,
        ratio: None,
        seed: 42,
        backend: GranulationBackend::Auto,
        metric: Metric::SqEuclidean,
        addr: "127.0.0.1:8080".to_string(),
        k: 1,
        workers: 8,
        micro_batch: true,
        batch_wait_us: 300,
        model_dir: None,
        model_mem_budget: None,
        max_versions: None,
        preload: 0,
        request_timeout_ms: 10_000,
        store_fault_rate: None,
        store_fault_seed: 42,
        access_log: None,
        progress: false,
        backends: Vec::new(),
        vnodes: 64,
        health_interval_ms: 500,
    };
    let mut have_input = false;
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| ParseError::BadValue(flag.to_string()))
        };
        match arg.as_str() {
            "-o" | "--output" => cli.output = Some(PathBuf::from(value(arg)?)),
            "--method" => {
                let v = value(arg)?;
                cli.method = Method::from_str_opt(&v).ok_or(ParseError::UnknownMethod(v))?;
            }
            "--rho" => {
                cli.rho = value(arg)?
                    .parse()
                    .map_err(|_| ParseError::BadValue(arg.clone()))?;
            }
            "--ratio" => {
                cli.ratio = Some(
                    value(arg)?
                        .parse()
                        .map_err(|_| ParseError::BadValue(arg.clone()))?,
                );
            }
            "--seed" => {
                cli.seed = value(arg)?
                    .parse()
                    .map_err(|_| ParseError::BadValue(arg.clone()))?;
            }
            // For `router` the flag names a gb-serve shard address; for
            // every other command it selects the granulation index.
            "--backend" if command == Command::Router => {
                let v = value(arg)?;
                if v.is_empty() {
                    return Err(ParseError::BadValue(arg.clone()));
                }
                cli.backends.push(v);
            }
            "--backend" => {
                let v = value(arg)?;
                cli.backend =
                    GranulationBackend::from_str_opt(&v).ok_or(ParseError::UnknownBackend(v))?;
            }
            "--metric" => {
                let v = value(arg)?;
                cli.metric = Metric::parse(&v).map_err(|_| ParseError::UnknownMetric(v))?;
            }
            "--backends" => {
                let v = value(arg)?;
                let addrs: Vec<String> = v
                    .split(',')
                    .map(str::trim)
                    .filter(|a| !a.is_empty())
                    .map(str::to_string)
                    .collect();
                if addrs.is_empty() {
                    return Err(ParseError::BadValue(arg.clone()));
                }
                cli.backends.extend(addrs);
            }
            "--vnodes" => {
                cli.vnodes = value(arg)?
                    .parse()
                    .map_err(|_| ParseError::BadValue(arg.clone()))?;
                if cli.vnodes == 0 {
                    return Err(ParseError::BadValue(arg.clone()));
                }
            }
            "--health-interval-ms" => {
                cli.health_interval_ms = value(arg)?
                    .parse()
                    .map_err(|_| ParseError::BadValue(arg.clone()))?;
                if cli.health_interval_ms == 0 {
                    return Err(ParseError::BadValue(arg.clone()));
                }
            }
            "--addr" => cli.addr = value(arg)?,
            "--k" => {
                cli.k = value(arg)?
                    .parse()
                    .map_err(|_| ParseError::BadValue(arg.clone()))?;
                if cli.k == 0 {
                    return Err(ParseError::BadValue(arg.clone()));
                }
            }
            "--workers" => {
                cli.workers = value(arg)?
                    .parse()
                    .map_err(|_| ParseError::BadValue(arg.clone()))?;
                if cli.workers == 0 {
                    return Err(ParseError::BadValue(arg.clone()));
                }
            }
            "--no-batch" => cli.micro_batch = false,
            "--batch-wait" => {
                cli.batch_wait_us = value(arg)?
                    .parse()
                    .map_err(|_| ParseError::BadValue(arg.clone()))?;
            }
            "--model-dir" => cli.model_dir = Some(PathBuf::from(value(arg)?)),
            "--model-mem-budget" => {
                cli.model_mem_budget = Some(
                    parse_bytes(&value(arg)?).ok_or_else(|| ParseError::BadValue(arg.clone()))?,
                );
            }
            "--max-versions" => {
                let n: usize = value(arg)?
                    .parse()
                    .map_err(|_| ParseError::BadValue(arg.clone()))?;
                if n == 0 {
                    return Err(ParseError::BadValue(arg.clone()));
                }
                cli.max_versions = Some(n);
            }
            "--preload" => {
                cli.preload = value(arg)?
                    .parse()
                    .map_err(|_| ParseError::BadValue(arg.clone()))?;
            }
            "--request-timeout-ms" => {
                cli.request_timeout_ms = value(arg)?
                    .parse()
                    .map_err(|_| ParseError::BadValue(arg.clone()))?;
            }
            "--store-fault-rate" => {
                cli.store_fault_rate = Some(
                    value(arg)?
                        .parse()
                        .map_err(|_| ParseError::BadValue(arg.clone()))?,
                );
            }
            "--store-fault-seed" => {
                cli.store_fault_seed = value(arg)?
                    .parse()
                    .map_err(|_| ParseError::BadValue(arg.clone()))?;
            }
            "--access-log" => cli.access_log = Some(value(arg)?),
            "--progress" => cli.progress = true,
            flag if flag.starts_with('-') => return Err(ParseError::UnknownFlag(flag.to_string())),
            path => {
                if have_input {
                    return Err(ParseError::UnknownFlag(path.to_string()));
                }
                cli.input = PathBuf::from(path);
                have_input = true;
            }
        }
    }
    if command == Command::Router {
        // The router never reads a CSV: its backends own the models. A
        // stray positional is a mistake, and so is an empty ring.
        if have_input {
            return Err(ParseError::UnknownFlag(
                cli.input.to_string_lossy().into_owned(),
            ));
        }
        if cli.backends.is_empty() {
            return Err(ParseError::MissingBackends);
        }
    } else if !have_input {
        return Err(ParseError::MissingInput);
    }
    if cli.command == Command::Sample && cli.output.is_none() {
        return Err(ParseError::MissingOutput);
    }
    if cli.method.needs_ratio() && !cli.ratio.is_some_and(|r| r > 0.0 && r <= 1.0) {
        return Err(ParseError::BadRatio);
    }
    if cli.rho < 2 {
        return Err(ParseError::BadRho);
    }
    if cli.model_mem_budget.is_some() && cli.model_dir.is_none() {
        return Err(ParseError::BudgetWithoutDir);
    }
    if let Some(rate) = cli.store_fault_rate {
        if cli.model_dir.is_none() || !(rate > 0.0 && rate <= 1.0) {
            return Err(ParseError::BadFaultRate);
        }
    }
    if cli.max_versions.is_some() && cli.model_dir.is_none() {
        return Err(ParseError::VersionsWithoutDir);
    }
    if cli.preload > 0 && cli.model_dir.is_none() {
        return Err(ParseError::PreloadWithoutDir);
    }
    Ok(cli)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_minimal_sample() {
        let cli = parse(&argv("sample in.csv -o out.csv")).unwrap();
        assert_eq!(cli.command, Command::Sample);
        assert_eq!(cli.input, PathBuf::from("in.csv"));
        assert_eq!(cli.output, Some(PathBuf::from("out.csv")));
        assert_eq!(cli.method, Method::Gbabs);
        assert_eq!(cli.rho, 5);
        assert_eq!(cli.seed, 42);
    }

    #[test]
    fn parses_inspect_with_rho() {
        let cli = parse(&argv("inspect data.csv --rho 9 --seed 7")).unwrap();
        assert_eq!(cli.command, Command::Inspect);
        assert_eq!(cli.rho, 9);
        assert_eq!(cli.seed, 7);
        assert!(cli.output.is_none());
    }

    #[test]
    fn parses_backend_flag() {
        let cli = parse(&argv("inspect data.csv --backend vptree")).unwrap();
        assert_eq!(cli.backend, GranulationBackend::VpTree);
        let default = parse(&argv("inspect data.csv")).unwrap();
        assert_eq!(default.backend, GranulationBackend::Auto);
        assert_eq!(
            parse(&argv("inspect data.csv --backend warp")),
            Err(ParseError::UnknownBackend("warp".into()))
        );
    }

    #[test]
    fn parses_every_method_name() {
        for (name, m) in Method::ALL {
            let line = if m.needs_ratio() {
                format!("sample in.csv -o out.csv --method {name} --ratio 0.5")
            } else {
                format!("sample in.csv -o out.csv --method {name}")
            };
            let cli = parse(&argv(&line)).unwrap();
            assert_eq!(cli.method, m, "{name}");
        }
    }

    #[test]
    fn sample_without_output_rejected() {
        assert_eq!(
            parse(&argv("sample in.csv")),
            Err(ParseError::MissingOutput)
        );
    }

    #[test]
    fn ratio_methods_require_valid_ratio() {
        assert_eq!(
            parse(&argv("sample in.csv -o o.csv --method srs")),
            Err(ParseError::BadRatio)
        );
        assert_eq!(
            parse(&argv("sample in.csv -o o.csv --method srs --ratio 1.5")),
            Err(ParseError::BadRatio)
        );
        assert!(parse(&argv("sample in.csv -o o.csv --method srs --ratio 0.3")).is_ok());
    }

    #[test]
    fn rejects_unknown_bits() {
        assert_eq!(
            parse(&argv("frobnicate in.csv")),
            Err(ParseError::UnknownCommand("frobnicate".into()))
        );
        assert_eq!(
            parse(&argv("sample in.csv -o o.csv --wat")),
            Err(ParseError::UnknownFlag("--wat".into()))
        );
        assert_eq!(
            parse(&argv("sample in.csv -o o.csv --method astrology")),
            Err(ParseError::UnknownMethod("astrology".into()))
        );
        assert_eq!(
            parse(&argv("sample in.csv extra.csv -o o.csv")),
            Err(ParseError::UnknownFlag("extra.csv".into()))
        );
        assert_eq!(parse(&argv("")), Err(ParseError::MissingCommand));
        assert_eq!(
            parse(&argv("sample -o o.csv")),
            Err(ParseError::MissingInput)
        );
    }

    #[test]
    fn parses_serve_with_options() {
        let cli = parse(&argv(
            "serve data.csv --addr 0.0.0.0:9000 --k 3 --workers 2 --no-batch --rho 7",
        ))
        .unwrap();
        assert_eq!(cli.command, Command::Serve);
        assert_eq!(cli.addr, "0.0.0.0:9000");
        assert_eq!(cli.k, 3);
        assert_eq!(cli.workers, 2);
        assert!(!cli.micro_batch);
        assert_eq!(cli.rho, 7);
        let defaults = parse(&argv("serve data.csv")).unwrap();
        assert_eq!(defaults.addr, "127.0.0.1:8080");
        assert_eq!(defaults.k, 1);
        assert_eq!(defaults.workers, 8);
        assert!(defaults.micro_batch);
        assert_eq!(defaults.batch_wait_us, 300);
    }

    #[test]
    fn parses_batch_wait_window() {
        let cli = parse(&argv("serve data.csv --batch-wait 1500")).unwrap();
        assert_eq!(cli.batch_wait_us, 1500);
        let zero = parse(&argv("serve data.csv --batch-wait 0")).unwrap();
        assert_eq!(zero.batch_wait_us, 0, "0 = flush immediately");
        assert_eq!(
            parse(&argv("serve data.csv --batch-wait soon")),
            Err(ParseError::BadValue("--batch-wait".into()))
        );
        assert_eq!(
            parse(&argv("serve data.csv --batch-wait")),
            Err(ParseError::BadValue("--batch-wait".into()))
        );
    }

    #[test]
    fn degenerate_rho_and_serve_values_rejected() {
        assert_eq!(
            parse(&argv("inspect data.csv --rho 1")),
            Err(ParseError::BadRho)
        );
        assert_eq!(
            parse(&argv("inspect data.csv --rho 0")),
            Err(ParseError::BadRho)
        );
        assert_eq!(
            parse(&argv("serve data.csv --k 0")),
            Err(ParseError::BadValue("--k".into()))
        );
        assert_eq!(
            parse(&argv("serve data.csv --workers 0")),
            Err(ParseError::BadValue("--workers".into()))
        );
    }

    #[test]
    fn parses_model_store_flags() {
        let cli = parse(&argv(
            "serve data.csv --model-dir /var/lib/gbabs --model-mem-budget 512M",
        ))
        .unwrap();
        assert_eq!(cli.model_dir, Some(PathBuf::from("/var/lib/gbabs")));
        assert_eq!(cli.model_mem_budget, Some(512 << 20));
        let defaults = parse(&argv("serve data.csv")).unwrap();
        assert_eq!(defaults.model_dir, None);
        assert_eq!(defaults.model_mem_budget, None);
        assert_eq!(
            parse(&argv("serve data.csv --model-mem-budget 1G")),
            Err(ParseError::BudgetWithoutDir),
            "a budget without a store has nowhere to evict to"
        );
        assert_eq!(
            parse(&argv(
                "serve data.csv --model-dir d --model-mem-budget nope"
            )),
            Err(ParseError::BadValue("--model-mem-budget".into()))
        );
    }

    #[test]
    fn parses_resilience_flags() {
        let cli = parse(&argv(
            "serve data.csv --model-dir d --request-timeout-ms 2500 \
             --store-fault-rate 0.05 --store-fault-seed 7",
        ))
        .unwrap();
        assert_eq!(cli.request_timeout_ms, 2500);
        assert_eq!(cli.store_fault_rate, Some(0.05));
        assert_eq!(cli.store_fault_seed, 7);
        let defaults = parse(&argv("serve data.csv")).unwrap();
        assert_eq!(defaults.request_timeout_ms, 10_000);
        assert_eq!(defaults.store_fault_rate, None);
        assert_eq!(defaults.store_fault_seed, 42);
        let off = parse(&argv("serve data.csv --request-timeout-ms 0")).unwrap();
        assert_eq!(off.request_timeout_ms, 0, "0 disables deadlines");
        assert_eq!(
            parse(&argv("serve data.csv --store-fault-rate 0.1")),
            Err(ParseError::BadFaultRate),
            "fault injection without a store has nothing to corrupt"
        );
        assert_eq!(
            parse(&argv("serve data.csv --model-dir d --store-fault-rate 1.5")),
            Err(ParseError::BadFaultRate)
        );
        assert_eq!(
            parse(&argv("serve data.csv --model-dir d --store-fault-rate 0")),
            Err(ParseError::BadFaultRate)
        );
        assert_eq!(
            parse(&argv("serve data.csv --request-timeout-ms soon")),
            Err(ParseError::BadValue("--request-timeout-ms".into()))
        );
    }

    #[test]
    fn parses_observability_flags() {
        let cli = parse(&argv("serve data.csv --access-log /tmp/access.jsonl")).unwrap();
        assert_eq!(cli.access_log, Some("/tmp/access.jsonl".into()));
        let stderr = parse(&argv("serve data.csv --access-log stderr")).unwrap();
        assert_eq!(stderr.access_log, Some("stderr".into()));
        let defaults = parse(&argv("serve data.csv")).unwrap();
        assert_eq!(defaults.access_log, None);
        assert!(!defaults.progress);
        assert_eq!(
            parse(&argv("serve data.csv --access-log")),
            Err(ParseError::BadValue("--access-log".into()))
        );
        let progress = parse(&argv("sample in.csv -o out.csv --progress")).unwrap();
        assert!(progress.progress);
    }

    #[test]
    fn parses_router_command() {
        let cli = parse(&argv(
            "router --backend 127.0.0.1:8081 --backend 127.0.0.1:8082 \
             --addr 0.0.0.0:8080 --vnodes 128 --health-interval-ms 250 --workers 4",
        ))
        .unwrap();
        assert_eq!(cli.command, Command::Router);
        assert_eq!(cli.backends, vec!["127.0.0.1:8081", "127.0.0.1:8082"]);
        assert_eq!(cli.addr, "0.0.0.0:8080");
        assert_eq!(cli.vnodes, 128);
        assert_eq!(cli.health_interval_ms, 250);
        assert_eq!(cli.workers, 4);

        let defaults = parse(&argv("router --backends 127.0.0.1:9001,127.0.0.1:9002")).unwrap();
        assert_eq!(defaults.backends.len(), 2);
        assert_eq!(defaults.vnodes, 64);
        assert_eq!(defaults.health_interval_ms, 500);
        assert_eq!(defaults.addr, "127.0.0.1:8080");
        assert_eq!(defaults.request_timeout_ms, 10_000);
        assert_eq!(defaults.access_log, None);

        // Both spellings compose.
        let mixed = parse(&argv("router --backends a:1,b:2 --backend c:3")).unwrap();
        assert_eq!(mixed.backends, vec!["a:1", "b:2", "c:3"]);
    }

    #[test]
    fn router_rejects_bad_shapes() {
        assert_eq!(parse(&argv("router")), Err(ParseError::MissingBackends));
        assert_eq!(
            parse(&argv("router --vnodes 32")),
            Err(ParseError::MissingBackends)
        );
        assert_eq!(
            parse(&argv("router --backend a:1 data.csv")),
            Err(ParseError::UnknownFlag("data.csv".into())),
            "the router takes no input CSV"
        );
        assert_eq!(
            parse(&argv("router --backend a:1 --vnodes 0")),
            Err(ParseError::BadValue("--vnodes".into()))
        );
        assert_eq!(
            parse(&argv("router --backend a:1 --health-interval-ms 0")),
            Err(ParseError::BadValue("--health-interval-ms".into()))
        );
        assert_eq!(
            parse(&argv("router --backends ,")),
            Err(ParseError::BadValue("--backends".into()))
        );
        // Outside `router`, --backend still selects the granulation index.
        assert_eq!(
            parse(&argv("inspect data.csv --backend 127.0.0.1:8081")),
            Err(ParseError::UnknownBackend("127.0.0.1:8081".into()))
        );
    }

    #[test]
    fn parses_metric_flag() {
        let cli = parse(&argv("inspect data.csv --metric manhattan")).unwrap();
        assert_eq!(cli.metric, Metric::Manhattan);
        let cosine = parse(&argv("serve data.csv --metric cosine")).unwrap();
        assert_eq!(cosine.metric, Metric::Cosine);
        let l2 = parse(&argv("sample in.csv -o o.csv --metric l2")).unwrap();
        assert_eq!(l2.metric, Metric::SqEuclidean, "alias accepted");
        let defaults = parse(&argv("inspect data.csv")).unwrap();
        assert_eq!(defaults.metric, Metric::SqEuclidean);
        assert_eq!(
            parse(&argv("inspect data.csv --metric hamming")),
            Err(ParseError::UnknownMetric("hamming".into()))
        );
    }

    #[test]
    fn parses_preload_flag() {
        let cli = parse(&argv("serve data.csv --model-dir d --preload 3")).unwrap();
        assert_eq!(cli.preload, 3);
        let defaults = parse(&argv("serve data.csv")).unwrap();
        assert_eq!(defaults.preload, 0);
        assert_eq!(
            parse(&argv("serve data.csv --preload 3")),
            Err(ParseError::PreloadWithoutDir),
            "warming needs a store to warm from"
        );
        assert_eq!(
            parse(&argv("serve data.csv --model-dir d --preload some")),
            Err(ParseError::BadValue("--preload".into()))
        );
    }

    #[test]
    fn parse_bytes_accepts_suffixes() {
        assert_eq!(parse_bytes("1048576"), Some(1 << 20));
        assert_eq!(parse_bytes("64k"), Some(64 << 10));
        assert_eq!(parse_bytes("64KB"), Some(64 << 10));
        assert_eq!(parse_bytes("512M"), Some(512 << 20));
        assert_eq!(parse_bytes("2gb"), Some(2 << 30));
        assert_eq!(parse_bytes("0"), None, "a zero budget is a typo");
        assert_eq!(parse_bytes("-5M"), None);
        assert_eq!(parse_bytes("lots"), None);
    }

    #[test]
    fn bad_numeric_values_rejected() {
        assert_eq!(
            parse(&argv("inspect in.csv --rho banana")),
            Err(ParseError::BadValue("--rho".into()))
        );
        assert_eq!(
            parse(&argv("inspect in.csv --seed")),
            Err(ParseError::BadValue("--seed".into()))
        );
    }
}
