//! CNN — Condensed Nearest Neighbour undersampling (Hart 1968).
//!
//! Tomek's paper the GBABS evaluation uses (\[16\]) is literally titled "Two
//! modifications of CNN"; CNN itself is the classic prototype-selection
//! undersampler those modifications refine, so it completes the baseline
//! family. The condensed store keeps every sample the current 1-NN rule gets
//! wrong — which is, in practice, the borderline — making CNN the historical
//! ancestor of the paper's borderline-sampling idea (with the quadratic cost
//! the paper's §I criticizes).
//!
//! Multi-class handling follows imbalanced-learn: all samples of the
//! smallest class are kept, every other class is condensed against the
//! store.

use gb_dataset::distance::sq_euclidean;
use gb_dataset::rng::rng_from_seed;
use gb_dataset::Dataset;
use gbabs::{SampleResult, Sampler};
use rand::seq::SliceRandom;
use rand::Rng;

/// The CNN undersampler.
#[derive(Debug, Clone, Copy, Default)]
pub struct CondensedNn {
    /// Maximum full passes over the data (safety valve; Hart's rule
    /// converges long before this on real data). 0 means a single pass.
    pub max_passes: usize,
}

impl CondensedNn {
    /// CNN iterated to convergence (bounded by `max_passes` full sweeps).
    #[must_use]
    pub fn new(max_passes: usize) -> Self {
        Self { max_passes }
    }
}

/// 1-NN label of `row` among the `store` rows of `data`; `None` when the
/// store is empty.
fn one_nn_label(data: &Dataset, store: &[usize], row: &[f64]) -> Option<u32> {
    store
        .iter()
        .map(|&s| (sq_euclidean(data.row(s), row), s))
        .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then_with(|| a.1.cmp(&b.1)))
        .map(|(_, s)| data.label(s))
}

impl Sampler for CondensedNn {
    fn name(&self) -> &'static str {
        "CNN"
    }

    fn sample(&self, data: &Dataset, seed: u64) -> SampleResult {
        let mut rng = rng_from_seed(seed);
        let counts = data.class_counts();
        let minority = counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .min_by(|(ia, ca), (ib, cb)| ca.cmp(cb).then_with(|| ia.cmp(ib)))
            .map(|(i, _)| i as u32)
            .unwrap_or(0);

        // Store: all minority rows plus one random row per other class.
        let groups = data.class_indices();
        let mut store: Vec<usize> = groups.get(minority as usize).cloned().unwrap_or_default();
        let mut pool: Vec<usize> = Vec::new();
        for (class, rows) in groups.iter().enumerate() {
            if class == minority as usize || rows.is_empty() {
                continue;
            }
            let pick = rows[rng.gen_range(0..rows.len())];
            store.push(pick);
            pool.extend(rows.iter().copied().filter(|&r| r != pick));
        }
        pool.shuffle(&mut rng);

        // Hart's rule: absorb every sample the current store misclassifies,
        // sweeping until a full pass adds nothing.
        for _ in 0..=self.max_passes {
            let mut added = false;
            pool.retain(|&r| {
                let correct = one_nn_label(data, &store, data.row(r)) == Some(data.label(r));
                if !correct {
                    store.push(r);
                    added = true;
                }
                correct // keep correctly-classified rows in the pool
            });
            if !added {
                break;
            }
        }

        store.sort_unstable();
        store.dedup();
        SampleResult {
            dataset: data.select(&store),
            kept_rows: Some(store),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_dataset::catalog::DatasetId;

    fn cnn() -> CondensedNn {
        CondensedNn::new(16)
    }

    #[test]
    fn keeps_all_minority_rows() {
        let d = DatasetId::S9.generate(0.1, 1); // IR ~ 9.9, class 1 minority
        let out = cnn().sample(&d, 0);
        let before = d.class_counts();
        let minority = if before[0] < before[1] { 0 } else { 1 };
        assert_eq!(out.dataset.class_counts()[minority], before[minority]);
    }

    #[test]
    fn condenses_well_separated_majority_hard() {
        // Two tight clusters far apart: one majority prototype classifies
        // everything, so the store stays near |minority| + 1.
        let mut feats = Vec::new();
        let mut labels = Vec::new();
        for i in 0..100 {
            feats.push(i as f64 * 0.01);
            labels.push(0);
        }
        for i in 0..10 {
            feats.push(100.0 + i as f64 * 0.01);
            labels.push(1);
        }
        let d = Dataset::from_parts(feats, labels, 1, 2);
        let out = cnn().sample(&d, 1);
        let counts = out.dataset.class_counts();
        assert_eq!(counts[1], 10, "minority intact");
        assert!(
            counts[0] <= 3,
            "majority should condense, kept {}",
            counts[0]
        );
    }

    #[test]
    fn condensed_store_is_one_nn_consistent() {
        // Hart's invariant at convergence: the store classifies every
        // original sample correctly under the 1-NN rule.
        let d = DatasetId::S5.generate(0.05, 2);
        let out = cnn().sample(&d, 3);
        let store = out.kept_rows.expect("undersampler");
        for i in 0..d.n_samples() {
            // skip rows in the store: trivially correct
            if store.binary_search(&i).is_ok() {
                continue;
            }
            assert_eq!(
                one_nn_label(&d, &store, d.row(i)),
                Some(d.label(i)),
                "row {i} misclassified by the condensed store"
            );
        }
    }

    #[test]
    fn kept_rows_sorted_unique_and_match() {
        let d = DatasetId::S2.generate(0.1, 1);
        let out = cnn().sample(&d, 2);
        let kept = out.kept_rows.expect("undersampler");
        assert!(kept.windows(2).all(|w| w[0] < w[1]));
        for (pos, &row) in kept.iter().enumerate() {
            assert_eq!(out.dataset.row(pos), d.row(row));
        }
    }

    #[test]
    fn single_class_input_keeps_everything() {
        let d = Dataset::from_parts((0..20).map(f64::from).collect(), vec![0; 20], 1, 1);
        let out = cnn().sample(&d, 0);
        assert_eq!(out.dataset.n_samples(), 20);
    }

    #[test]
    fn deterministic_per_seed() {
        let d = DatasetId::S5.generate(0.05, 1);
        let a = cnn().sample(&d, 7);
        let b = cnn().sample(&d, 7);
        assert_eq!(a.kept_rows, b.kept_rows);
    }
}
