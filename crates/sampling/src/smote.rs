//! SMOTE — Synthetic Minority Over-sampling Technique (Chawla et al. 2002).
//!
//! Every non-majority class is topped up to the majority-class count by
//! interpolating between a random class member and one of its `k = 5`
//! nearest same-class neighbours (imbalanced-learn's `auto` strategy and
//! default `k_neighbors`).

use gbabs::{SampleResult, Sampler};
use gb_dataset::neighbors::k_nearest_filtered;
use gb_dataset::rng::rng_from_seed;
use gb_dataset::Dataset;
use rand::Rng;

/// SMOTE configuration.
#[derive(Debug, Clone, Copy)]
pub struct SmoteConfig {
    /// Neighbours per synthesis (imblearn default 5).
    pub k_neighbors: usize,
}

impl Default for SmoteConfig {
    fn default() -> Self {
        Self { k_neighbors: 5 }
    }
}

/// The SMOTE sampler.
#[derive(Debug, Clone, Copy, Default)]
pub struct Smote {
    /// Configuration.
    pub config: SmoteConfig,
}

/// Per-class synthesis targets under imblearn's `auto` strategy: every class
/// is raised to the majority count.
#[must_use]
pub(crate) fn oversample_targets(data: &Dataset) -> Vec<usize> {
    let counts = data.class_counts();
    let max = counts.iter().copied().max().unwrap_or(0);
    counts
        .iter()
        .map(|&c| if c > 0 { max - c } else { 0 })
        .collect()
}

/// Synthesizes `n_new` samples for `class` by SMOTE interpolation from the
/// donor rows `donors` (all of `class`), appending to `out`.
pub(crate) fn synthesize_for_class(
    data: &Dataset,
    donors: &[usize],
    class: u32,
    n_new: usize,
    k: usize,
    rng: &mut impl Rng,
    out: &mut Dataset,
) {
    if donors.is_empty() || n_new == 0 {
        return;
    }
    if donors.len() == 1 {
        // no neighbour to interpolate with: duplicate the lone donor
        for _ in 0..n_new {
            out.push_row(data.row(donors[0]), class);
        }
        return;
    }
    for _ in 0..n_new {
        let base = donors[rng.gen_range(0..donors.len())];
        let hits = k_nearest_filtered(data, data.row(base), k, |i| {
            i != base && data.label(i) == class
        });
        let pick = &hits[rng.gen_range(0..hits.len())];
        let gap: f64 = rng.gen();
        let row: Vec<f64> = data
            .row(base)
            .iter()
            .zip(data.row(pick.index).iter())
            .map(|(a, b)| a + gap * (b - a))
            .collect();
        out.push_row(&row, class);
    }
}

impl Sampler for Smote {
    fn name(&self) -> &'static str {
        "SM"
    }

    fn sample(&self, data: &Dataset, seed: u64) -> SampleResult {
        let mut rng = rng_from_seed(seed);
        let mut out = data.clone();
        let targets = oversample_targets(data);
        let groups = data.class_indices();
        for (class, &n_new) in targets.iter().enumerate() {
            synthesize_for_class(
                data,
                &groups[class],
                class as u32,
                n_new,
                self.config.k_neighbors,
                &mut rng,
                &mut out,
            );
        }
        SampleResult {
            dataset: out,
            kept_rows: None, // contains synthetic rows
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_dataset::catalog::DatasetId;

    #[test]
    fn balances_class_counts() {
        let d = DatasetId::S9.generate(0.1, 1); // IR ~ 9.9
        let out = Smote::default().sample(&d, 0);
        let counts = out.dataset.class_counts();
        let max = *counts.iter().max().unwrap();
        assert!(counts.iter().all(|&c| c == max), "{counts:?}");
    }

    #[test]
    fn original_rows_preserved_as_prefix() {
        let d = DatasetId::S2.generate(0.1, 2);
        let out = Smote::default().sample(&d, 1);
        for i in 0..d.n_samples() {
            assert_eq!(out.dataset.row(i), d.row(i));
            assert_eq!(out.dataset.label(i), d.label(i));
        }
    }

    #[test]
    fn synthetic_rows_lie_between_class_members() {
        // 1-D minority at {0, 1}: synthetic values must be in [0, 1]
        let d = Dataset::from_parts(
            vec![0.0, 1.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0],
            vec![1, 1, 0, 0, 0, 0, 0, 0],
            1,
            2,
        );
        let out = Smote::default().sample(&d, 3);
        for i in d.n_samples()..out.dataset.n_samples() {
            assert_eq!(out.dataset.label(i), 1);
            let v = out.dataset.value(i, 0);
            assert!((0.0..=1.0).contains(&v), "synthetic {v} out of hull");
        }
    }

    #[test]
    fn lone_minority_sample_duplicated() {
        let d = Dataset::from_parts(vec![0.0, 5.0, 6.0, 7.0], vec![1, 0, 0, 0], 1, 2);
        let out = Smote::default().sample(&d, 0);
        let counts = out.dataset.class_counts();
        assert_eq!(counts[0], counts[1]);
        for i in d.n_samples()..out.dataset.n_samples() {
            assert_eq!(out.dataset.value(i, 0), 0.0);
        }
    }

    #[test]
    fn balanced_input_unchanged() {
        let d = DatasetId::S4.generate(0.05, 1); // IR 1.08
        let out = Smote::default().sample(&d, 2);
        let added = out.dataset.n_samples() - d.n_samples();
        let counts = d.class_counts();
        assert_eq!(added, counts.iter().max().unwrap() * 2 - d.n_samples());
    }

    #[test]
    fn deterministic() {
        let d = DatasetId::S9.generate(0.05, 4);
        let a = Smote::default().sample(&d, 9);
        let b = Smote::default().sample(&d, 9);
        assert_eq!(a.dataset.features(), b.dataset.features());
    }
}
