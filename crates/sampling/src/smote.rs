//! SMOTE — Synthetic Minority Over-sampling Technique (Chawla et al. 2002).
//!
//! Every non-majority class is topped up to the majority-class count by
//! interpolating between a random class member and one of its `k = 5`
//! nearest same-class neighbours (imbalanced-learn's `auto` strategy and
//! default `k_neighbors`).

use gb_dataset::neighbors::k_nearest_filtered;
use gb_dataset::rng::rng_from_seed;
use gb_dataset::Dataset;
use gbabs::{SampleResult, Sampler};
use rand::Rng;

/// SMOTE configuration.
#[derive(Debug, Clone, Copy)]
pub struct SmoteConfig {
    /// Neighbours per synthesis (imblearn default 5).
    pub k_neighbors: usize,
}

impl Default for SmoteConfig {
    fn default() -> Self {
        Self { k_neighbors: 5 }
    }
}

/// The SMOTE sampler.
#[derive(Debug, Clone, Copy, Default)]
pub struct Smote {
    /// Configuration.
    pub config: SmoteConfig,
}

/// Per-class synthesis targets under imblearn's `auto` strategy: every class
/// is raised to the majority count.
#[must_use]
pub(crate) fn oversample_targets(data: &Dataset) -> Vec<usize> {
    let counts = data.class_counts();
    let max = counts.iter().copied().max().unwrap_or(0);
    counts
        .iter()
        .map(|&c| if c > 0 { max - c } else { 0 })
        .collect()
}

/// Synthesizes `n_new` samples for `class` by SMOTE interpolation from the
/// donor rows `donors` (all of `class`), appending to `out`.
///
/// Runs in two phases so the expensive part parallelizes without touching
/// the random stream: all RNG decisions (base donor, neighbour pick,
/// interpolation gap) are drawn sequentially first — in exactly the order
/// the naive loop would draw them — then the per-sample k-NN searches and
/// interpolations execute in parallel and are appended in draw order. The
/// output is therefore identical to the sequential implementation for any
/// thread count. Each donor search is a blocked scan through the batched
/// SIMD distance kernel (`k_nearest_filtered` → `sq_euclidean_one_to_many`)
/// on wide data; results are deterministic for any kernel tier.
pub(crate) fn synthesize_for_class(
    data: &Dataset,
    donors: &[usize],
    class: u32,
    n_new: usize,
    k: usize,
    rng: &mut impl Rng,
    out: &mut Dataset,
) {
    use rayon::prelude::*;

    if donors.is_empty() || n_new == 0 {
        return;
    }
    if donors.len() == 1 {
        // no neighbour to interpolate with: duplicate the lone donor
        for _ in 0..n_new {
            out.push_row(data.row(donors[0]), class);
        }
        return;
    }
    // The neighbour search below ranges over every same-class row of the
    // dataset (not just `donors`, which Borderline-SMOTE narrows to the
    // danger subset), so each donor's hit count is `min(k, class size − 1)`
    // — known before the search runs, which is what lets the pick index be
    // drawn up front.
    let class_size = data.class_counts()[class as usize];
    debug_assert!(class_size >= donors.len());
    let n_hits = k.min(class_size - 1);
    let plans: Vec<(usize, usize, f64)> = (0..n_new)
        .map(|_| {
            let base = donors[rng.gen_range(0..donors.len())];
            let pick = rng.gen_range(0..n_hits);
            let gap: f64 = rng.gen();
            (base, pick, gap)
        })
        .collect();
    let rows: Vec<Vec<f64>> = plans
        .par_iter()
        .map(|&(base, pick, gap)| {
            let hits = k_nearest_filtered(data, data.row(base), k, |i| {
                i != base && data.label(i) == class
            });
            let pick = &hits[pick];
            data.row(base)
                .iter()
                .zip(data.row(pick.index).iter())
                .map(|(a, b)| a + gap * (b - a))
                .collect()
        })
        .collect();
    for row in rows {
        out.push_row(&row, class);
    }
}

impl Sampler for Smote {
    fn name(&self) -> &'static str {
        "SM"
    }

    fn sample(&self, data: &Dataset, seed: u64) -> SampleResult {
        let mut rng = rng_from_seed(seed);
        let mut out = data.clone();
        let targets = oversample_targets(data);
        let groups = data.class_indices();
        for (class, &n_new) in targets.iter().enumerate() {
            synthesize_for_class(
                data,
                &groups[class],
                class as u32,
                n_new,
                self.config.k_neighbors,
                &mut rng,
                &mut out,
            );
        }
        SampleResult {
            dataset: out,
            kept_rows: None, // contains synthetic rows
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_dataset::catalog::DatasetId;

    #[test]
    fn balances_class_counts() {
        let d = DatasetId::S9.generate(0.1, 1); // IR ~ 9.9
        let out = Smote::default().sample(&d, 0);
        let counts = out.dataset.class_counts();
        let max = *counts.iter().max().unwrap();
        assert!(counts.iter().all(|&c| c == max), "{counts:?}");
    }

    #[test]
    fn original_rows_preserved_as_prefix() {
        let d = DatasetId::S2.generate(0.1, 2);
        let out = Smote::default().sample(&d, 1);
        for i in 0..d.n_samples() {
            assert_eq!(out.dataset.row(i), d.row(i));
            assert_eq!(out.dataset.label(i), d.label(i));
        }
    }

    #[test]
    fn synthetic_rows_lie_between_class_members() {
        // 1-D minority at {0, 1}: synthetic values must be in [0, 1]
        let d = Dataset::from_parts(
            vec![0.0, 1.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0],
            vec![1, 1, 0, 0, 0, 0, 0, 0],
            1,
            2,
        );
        let out = Smote::default().sample(&d, 3);
        for i in d.n_samples()..out.dataset.n_samples() {
            assert_eq!(out.dataset.label(i), 1);
            let v = out.dataset.value(i, 0);
            assert!((0.0..=1.0).contains(&v), "synthetic {v} out of hull");
        }
    }

    #[test]
    fn lone_minority_sample_duplicated() {
        let d = Dataset::from_parts(vec![0.0, 5.0, 6.0, 7.0], vec![1, 0, 0, 0], 1, 2);
        let out = Smote::default().sample(&d, 0);
        let counts = out.dataset.class_counts();
        assert_eq!(counts[0], counts[1]);
        for i in d.n_samples()..out.dataset.n_samples() {
            assert_eq!(out.dataset.value(i, 0), 0.0);
        }
    }

    #[test]
    fn balanced_input_unchanged() {
        let d = DatasetId::S4.generate(0.05, 1); // IR 1.08
        let out = Smote::default().sample(&d, 2);
        let added = out.dataset.n_samples() - d.n_samples();
        let counts = d.class_counts();
        assert_eq!(added, counts.iter().max().unwrap() * 2 - d.n_samples());
    }

    #[test]
    fn deterministic() {
        let d = DatasetId::S9.generate(0.05, 4);
        let a = Smote::default().sample(&d, 9);
        let b = Smote::default().sample(&d, 9);
        assert_eq!(a.dataset.features(), b.dataset.features());
    }

    /// Regression: when `donors` is a strict subset of the class (as in
    /// Borderline-SMOTE's danger set), the parallel two-phase synthesis
    /// must match the naive sequential loop draw-for-draw — the neighbour
    /// search ranges over the whole class, not the donor subset, so the
    /// pre-drawn pick index must use the class size.
    #[test]
    fn subset_donors_match_sequential_reference() {
        use gb_dataset::rng::rng_from_seed;

        // class 1: 8 clustered rows; class 0: far away.
        let mut feats = Vec::new();
        let mut labels = Vec::new();
        for i in 0..8 {
            feats.push(i as f64 * 0.1);
            labels.push(1u32);
        }
        for i in 0..6 {
            feats.push(50.0 + i as f64);
            labels.push(0u32);
        }
        let d = Dataset::from_parts(feats, labels, 1, 2);
        let donors = vec![0usize, 3, 5]; // strict subset of class 1
        let (k, n_new) = (5usize, 40usize);

        let mut fast = d.empty_like();
        synthesize_for_class(&d, &donors, 1, n_new, k, &mut rng_from_seed(11), &mut fast);

        // Naive sequential reference (the pre-refactor algorithm).
        let mut slow = d.empty_like();
        let mut rng = rng_from_seed(11);
        for _ in 0..n_new {
            let base = donors[rng.gen_range(0..donors.len())];
            let hits = k_nearest_filtered(&d, d.row(base), k, |i| i != base && d.label(i) == 1);
            let pick = &hits[rng.gen_range(0..hits.len())];
            let gap: f64 = rng.gen();
            let row: Vec<f64> = d
                .row(base)
                .iter()
                .zip(d.row(pick.index).iter())
                .map(|(a, b)| a + gap * (b - a))
                .collect();
            slow.push_row(&row, 1);
        }
        assert_eq!(fast.features(), slow.features());
    }
}
