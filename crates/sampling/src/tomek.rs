//! Tomek links undersampling (Tomek 1976).
//!
//! A Tomek link is a pair of mutually-nearest neighbours with different
//! labels. Following imbalanced-learn's default, only the *majority-class*
//! member of each link is removed (removing both is the other classic
//! variant, available via [`TomekConfig::remove_both`]).

use gb_dataset::neighbors::k_nearest_all_rows;
use gb_dataset::Dataset;
use gbabs::{SampleResult, Sampler};

/// Tomek-links configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct TomekConfig {
    /// Remove both endpoints of each link instead of just the majority one.
    pub remove_both: bool,
}

/// The Tomek-links sampler.
#[derive(Debug, Clone, Copy, Default)]
pub struct TomekLinks {
    /// Configuration.
    pub config: TomekConfig,
}

/// Finds all Tomek links as index pairs `(a, b)` with `a < b`.
///
/// The all-rows nearest-neighbour pass (the O(n²) part) runs in parallel,
/// each row's scan streaming the row-major buffer through the batched SIMD
/// distance kernel; the mutual-pair sweep that follows is linear and stays
/// sequential.
#[must_use]
pub fn find_tomek_links(data: &Dataset) -> Vec<(usize, usize)> {
    let n = data.n_samples();
    let nn: Vec<Option<usize>> = k_nearest_all_rows(data, 1)
        .into_iter()
        .map(|hits| hits.first().map(|h| h.index))
        .collect();
    let mut links = Vec::new();
    for a in 0..n {
        let Some(b) = nn[a] else { continue };
        if b > a && nn[b] == Some(a) && data.label(a) != data.label(b) {
            links.push((a, b));
        }
    }
    links
}

impl Sampler for TomekLinks {
    fn name(&self) -> &'static str {
        "Tomek"
    }

    fn sample(&self, data: &Dataset, _seed: u64) -> SampleResult {
        let counts = data.class_counts();
        let majority = counts
            .iter()
            .enumerate()
            .max_by(|(ia, ca), (ib, cb)| ca.cmp(cb).then_with(|| ib.cmp(ia)))
            .map(|(i, _)| i as u32)
            .unwrap_or(0);
        let mut remove = vec![false; data.n_samples()];
        for (a, b) in find_tomek_links(data) {
            if self.config.remove_both {
                remove[a] = true;
                remove[b] = true;
            } else {
                if data.label(a) == majority {
                    remove[a] = true;
                }
                if data.label(b) == majority {
                    remove[b] = true;
                }
            }
        }
        let rows: Vec<usize> = (0..data.n_samples()).filter(|&r| !remove[r]).collect();
        SampleResult {
            dataset: data.select(&rows),
            kept_rows: Some(rows),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_dataset::catalog::DatasetId;

    /// Two clusters with a cross-class mutual-NN pair in the middle.
    fn linked_dataset() -> Dataset {
        // majority (0) at 0.0,0.2,0.4 and 4.0; minority (1) at 4.3 and 8/8.2
        // pair (4.0, 4.3) are mutual nearest neighbours of different class
        Dataset::from_parts(
            vec![0.0, 0.2, 0.4, 4.0, 4.3, 8.0, 8.2, 8.4],
            vec![0, 0, 0, 0, 1, 0, 0, 0],
            1,
            2,
        )
    }

    #[test]
    fn detects_the_planted_link() {
        let d = linked_dataset();
        let links = find_tomek_links(&d);
        assert_eq!(links, vec![(3, 4)]);
    }

    #[test]
    fn removes_only_majority_endpoint_by_default() {
        let d = linked_dataset();
        let out = TomekLinks::default().sample(&d, 0);
        let rows = out.kept_rows.unwrap();
        assert!(!rows.contains(&3), "majority endpoint must go");
        assert!(rows.contains(&4), "minority endpoint must stay");
        assert_eq!(rows.len(), d.n_samples() - 1);
    }

    #[test]
    fn remove_both_variant() {
        let d = linked_dataset();
        let out = TomekLinks {
            config: TomekConfig { remove_both: true },
        }
        .sample(&d, 0);
        let rows = out.kept_rows.unwrap();
        assert!(!rows.contains(&3));
        assert!(!rows.contains(&4));
    }

    #[test]
    fn clean_separable_data_untouched() {
        let d = Dataset::from_parts(
            vec![0.0, 0.1, 0.2, 10.0, 10.1, 10.2],
            vec![0, 0, 0, 1, 1, 1],
            1,
            2,
        );
        let out = TomekLinks::default().sample(&d, 0);
        assert_eq!(out.dataset.n_samples(), d.n_samples());
    }

    #[test]
    fn never_grows_and_never_drops_minority() {
        let d = DatasetId::S9.generate(0.1, 1);
        let out = TomekLinks::default().sample(&d, 0);
        assert!(out.dataset.n_samples() <= d.n_samples());
        let before = d.class_counts();
        let after = out.dataset.class_counts();
        assert_eq!(before[1], after[1], "minority count must be preserved");
    }
}
