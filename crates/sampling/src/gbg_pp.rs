//! GBG++ — hard-attention-division granular-ball generation (Xie et al.
//! 2024, ref \[38\]).
//!
//! The paper's first author's own predecessor method and the closest
//! relative of RD-GBG in the §III-A family. Instead of recursive k-means
//! splits, GBG++ *peels* pure balls off the undivided set:
//!
//! 1. find the majority class of the undivided samples and take the
//!    centroid of that class as the attention center;
//! 2. sort the undivided samples by distance to the center ("attention");
//! 3. cut at the first heterogeneous sample ("hard attention") — the
//!    homogeneous prefix becomes one pure ball whose radius is the distance
//!    to its farthest member;
//! 4. remove the ball's members and repeat until the undivided set is
//!    empty.
//!
//! When the nearest undivided sample is already heterogeneous the attention
//! center is uninformative for it; that lone sample is emitted as a
//! radius-0 singleton (GBG++'s outlier handling), which also guarantees
//! progress.
//!
//! Compared to RD-GBG: centers are centroids rather than samples, and balls
//! may still overlap earlier-generated balls (no conflict radius, Eq. 4) —
//! the precise gap the GBABS paper's restricted diffusion closes, measured
//! by the `granulation` ablation experiment.
//!
//! # Indexed hot path
//!
//! The attention step is the
//! [`NeighborIndex::distance_ordered`](gb_dataset::index::NeighborIndex::distance_ordered)
//! query:
//! peeled rows leave the undivided set by tombstone deletion, and each
//! iteration consumes only the homogeneous *prefix* of the lazily ordered
//! stream instead of sorting all of `U` — `O(prefix · log n)` per peel on a
//! tree backend against the old `O(|U| log |U|)` full sort. The majority
//! centroid is maintained incrementally (per-class counts + coordinate
//! sums, decremented as rows are peeled, in peel order), so no per-peel
//! `O(|U|)` sweep remains. Every backend runs the identical query contract
//! (`(sq_dist, row)` ascending, ties toward the smaller row), so the
//! produced cover is **bit-identical across backends** (property-tested in
//! `tests/lineage_backends.rs`).
//!
//! The determinism contract is cross-backend identity, *not* bitwise
//! equality with the pre-query-layer implementation: attention distances
//! now come from the width-keyed kernel (lane tree at p ≥ 4 instead of
//! the sequential sum), and later-iteration centroids from incremental
//! subtraction instead of a fresh re-sum — near-tie orderings and stored
//! geometry can differ from old recorded covers in the last bits.

use gb_dataset::index::{GranulationBackend, SqNeighbor};
use gb_dataset::Dataset;
use gbabs::GranularBall;

/// Configuration for GBG++.
#[derive(Debug, Clone, Copy)]
pub struct GbgPpConfig {
    /// Minimum members for a peeled ball to be kept as a proper ball;
    /// shorter prefixes are emitted as radius-0 singletons. GBG++ uses 1
    /// (every prefix forms a ball); raising this mimics its outlier filter.
    pub min_ball_size: usize,
    /// Neighbour-index backend for the attention queries. Every backend
    /// yields a bit-identical cover; this only selects the asymptotics.
    pub backend: GranulationBackend,
}

impl Default for GbgPpConfig {
    fn default() -> Self {
        Self {
            min_ball_size: 1,
            backend: GranulationBackend::Auto,
        }
    }
}

/// Incrementally maintained per-class membership stats of the undivided
/// set: counts and coordinate sums, enough to answer "majority class and
/// its centroid" in `O(q·p)` instead of an `O(|U|·p)` sweep per peel.
struct ClassStats {
    counts: Vec<usize>,
    /// Row-major `q × p` coordinate sums.
    sums: Vec<f64>,
    n_features: usize,
}

impl ClassStats {
    fn build(data: &Dataset) -> Self {
        let p = data.n_features();
        let mut stats = Self {
            counts: vec![0; data.n_classes()],
            sums: vec![0.0; data.n_classes() * p],
            n_features: p,
        };
        // Ascending row order: the first iteration's centroid sums match
        // the naive per-iteration sweep bit-for-bit.
        for r in 0..data.n_samples() {
            let label = data.label(r) as usize;
            stats.counts[label] += 1;
            for (s, &v) in stats.sums[label * p..(label + 1) * p]
                .iter_mut()
                .zip(data.row(r))
            {
                *s += v;
            }
        }
        stats
    }

    fn remove(&mut self, data: &Dataset, row: usize) {
        let p = self.n_features;
        let label = data.label(row) as usize;
        self.counts[label] -= 1;
        for (s, &v) in self.sums[label * p..(label + 1) * p]
            .iter_mut()
            .zip(data.row(row))
        {
            *s -= v;
        }
    }

    /// Majority class (ties toward the smaller label) and its centroid.
    fn majority_centroid(&self) -> (u32, Vec<f64>) {
        let mut label = 0usize;
        for (c, &count) in self.counts.iter().enumerate() {
            if count > self.counts[label] {
                label = c;
            }
        }
        let p = self.n_features;
        let n = self.counts[label] as f64;
        let center = self.sums[label * p..(label + 1) * p]
            .iter()
            .map(|&s| s / n)
            .collect();
        (label as u32, center)
    }
}

fn singleton(data: &Dataset, row: usize, label: u32) -> GranularBall {
    GranularBall {
        center: data.row(row).to_vec(),
        radius: 0.0,
        label,
        members: vec![row],
        center_row: Some(row),
        purity: 1.0,
    }
}

/// Runs GBG++ over `data`, returning pure balls that jointly cover every
/// row exactly once.
#[must_use]
pub fn gbg_pp(data: &Dataset, config: &GbgPpConfig) -> Vec<GranularBall> {
    assert!(data.n_samples() > 0, "cannot granulate an empty dataset");
    let mut index = config.backend.build(data);
    let mut stats = ClassStats::build(data);
    let mut remaining = data.n_samples();
    let mut balls: Vec<GranularBall> = Vec::new();
    let mut prefix: Vec<SqNeighbor> = Vec::new();
    while remaining > 0 {
        let (label, center) = stats.majority_centroid();
        // Attention: walk the undivided samples by distance to the center,
        // consuming only up to the first heterogeneous sample ("hard
        // attention").
        prefix.clear();
        let mut iter = index.distance_ordered(&center);
        let first = iter.next().expect("alive rows remain");
        if data.label(first.row) != label {
            // Nearest sample is heterogeneous: peel it off as a singleton
            // (outlier handling; guarantees termination).
            drop(iter);
            balls.push(singleton(data, first.row, data.label(first.row)));
            stats.remove(data, first.row);
            index.delete(first.row);
            remaining -= 1;
            continue;
        }
        prefix.push(first);
        for hit in iter {
            if data.label(hit.row) != label {
                break;
            }
            prefix.push(hit);
        }
        if prefix.len() < config.min_ball_size {
            // Too small for a proper ball: emit singletons.
            for hit in &prefix {
                balls.push(singleton(data, hit.row, label));
            }
        } else {
            // The prefix is emitted in ascending (sq_dist, row) order, so
            // its last element is the farthest member — one sqrt finalizes
            // the radius.
            let radius = prefix.last().expect("non-empty prefix").sq_dist.sqrt();
            balls.push(GranularBall {
                center,
                radius,
                label,
                members: prefix.iter().map(|h| h.row).collect(),
                center_row: None,
                purity: 1.0,
            });
        }
        for hit in &prefix {
            stats.remove(data, hit.row);
            index.delete(hit.row);
        }
        remaining -= prefix.len();
    }
    balls
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_dataset::catalog::DatasetId;

    #[test]
    fn covers_every_row_exactly_once() {
        let data = DatasetId::S5.generate(0.05, 1);
        let balls = gbg_pp(&data, &GbgPpConfig::default());
        let mut seen = vec![0usize; data.n_samples()];
        for b in &balls {
            for &m in &b.members {
                seen[m] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn every_ball_is_pure() {
        let data = DatasetId::S2.generate(0.2, 2);
        for b in gbg_pp(&data, &GbgPpConfig::default()) {
            assert_eq!(b.measured_purity(&data), 1.0);
            assert_eq!(b.purity, 1.0);
        }
    }

    #[test]
    fn members_lie_within_radius() {
        // Unlike Eq.-1 generators, the peeled radius is the max member
        // distance, so balls are geometrically exact.
        let data = DatasetId::S5.generate(0.1, 3);
        for b in gbg_pp(&data, &GbgPpConfig::default()) {
            for &m in &b.members {
                assert!(
                    b.contains_point(data.row(m), 1e-9),
                    "member outside its ball"
                );
            }
        }
    }

    #[test]
    fn two_separated_clusters_two_balls() {
        let mut feats = Vec::new();
        let mut labels = Vec::new();
        for i in 0..30 {
            feats.extend_from_slice(&[i as f64 * 0.01, 0.0]);
            labels.push(0);
        }
        for i in 0..20 {
            feats.extend_from_slice(&[100.0 + i as f64 * 0.01, 0.0]);
            labels.push(1);
        }
        let data = Dataset::from_parts(feats, labels, 2, 2);
        let balls = gbg_pp(&data, &GbgPpConfig::default());
        assert_eq!(balls.len(), 2, "one ball per separated cluster");
        assert!(balls.iter().any(|b| b.label == 0 && b.len() == 30));
        assert!(balls.iter().any(|b| b.label == 1 && b.len() == 20));
    }

    #[test]
    fn interleaved_singletons_terminate() {
        // Alternating labels along a line force tiny prefixes; the method
        // must still terminate and cover everything.
        let feats: Vec<f64> = (0..50).map(f64::from).collect();
        let labels: Vec<u32> = (0..50).map(|i| (i % 2) as u32).collect();
        let data = Dataset::from_parts(feats, labels, 1, 2);
        let balls = gbg_pp(&data, &GbgPpConfig::default());
        let total: usize = balls.iter().map(GranularBall::len).sum();
        assert_eq!(total, 50);
    }

    #[test]
    fn min_ball_size_splits_small_prefixes_into_singletons() {
        let feats: Vec<f64> = (0..20).map(f64::from).collect();
        let labels: Vec<u32> = (0..20).map(|i| u32::from(i >= 18)).collect();
        let data = Dataset::from_parts(feats, labels, 1, 2);
        let cfg = GbgPpConfig {
            min_ball_size: 3,
            ..GbgPpConfig::default()
        };
        let balls = gbg_pp(&data, &cfg);
        // the 2-member minority prefix must appear as radius-0 singletons
        let minority: Vec<_> = balls.iter().filter(|b| b.label == 1).collect();
        assert_eq!(minority.len(), 2);
        assert!(minority.iter().all(|b| b.radius == 0.0 && b.len() == 1));
    }

    #[test]
    fn deterministic() {
        let data = DatasetId::S2.generate(0.1, 5);
        let a = gbg_pp(&data, &GbgPpConfig::default());
        let b = gbg_pp(&data, &GbgPpConfig::default());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.members, y.members);
        }
    }

    #[test]
    fn single_class_dataset_one_ball() {
        let data = Dataset::from_parts((0..40).map(f64::from).collect(), vec![0; 40], 1, 1);
        let balls = gbg_pp(&data, &GbgPpConfig::default());
        assert_eq!(balls.len(), 1);
        assert_eq!(balls[0].len(), 40);
    }
}
