//! GBG++ — hard-attention-division granular-ball generation (Xie et al.
//! 2024, ref \[38\]).
//!
//! The paper's first author's own predecessor method and the closest
//! relative of RD-GBG in the §III-A family. Instead of recursive k-means
//! splits, GBG++ *peels* pure balls off the undivided set:
//!
//! 1. find the majority class of the undivided samples and take the
//!    centroid of that class as the attention center;
//! 2. sort the undivided samples by distance to the center ("attention");
//! 3. cut at the first heterogeneous sample ("hard attention") — the
//!    homogeneous prefix becomes one pure ball whose radius is the distance
//!    to its farthest member;
//! 4. remove the ball's members and repeat until the undivided set is
//!    empty.
//!
//! When the nearest undivided sample is already heterogeneous the attention
//! center is uninformative for it; that lone sample is emitted as a
//! radius-0 singleton (GBG++'s outlier handling), which also guarantees
//! progress.
//!
//! Compared to RD-GBG: centers are centroids rather than samples, and balls
//! may still overlap earlier-generated balls (no conflict radius, Eq. 4) —
//! the precise gap the GBABS paper's restricted diffusion closes, measured
//! by the `granulation` ablation experiment.

use gb_dataset::distance::euclidean;
use gb_dataset::Dataset;
use gbabs::GranularBall;

/// Configuration for GBG++.
#[derive(Debug, Clone, Copy)]
pub struct GbgPpConfig {
    /// Minimum members for a peeled ball to be kept as a proper ball;
    /// shorter prefixes are emitted as radius-0 singletons. GBG++ uses 1
    /// (every prefix forms a ball); raising this mimics its outlier filter.
    pub min_ball_size: usize,
}

impl Default for GbgPpConfig {
    fn default() -> Self {
        Self { min_ball_size: 1 }
    }
}

/// Majority class among `rows` (ties toward the smaller label), together
/// with that class's centroid.
fn majority_centroid(data: &Dataset, rows: &[usize]) -> (u32, Vec<f64>) {
    let mut counts = vec![0usize; data.n_classes()];
    for &r in rows {
        counts[data.label(r) as usize] += 1;
    }
    let label = counts
        .iter()
        .enumerate()
        .max_by(|(ia, ca), (ib, cb)| ca.cmp(cb).then_with(|| ib.cmp(ia)))
        .map(|(i, _)| i as u32)
        .expect("non-empty rows");
    let p = data.n_features();
    let mut center = vec![0.0f64; p];
    let mut n = 0usize;
    for &r in rows {
        if data.label(r) == label {
            n += 1;
            for (j, &v) in data.row(r).iter().enumerate() {
                center[j] += v;
            }
        }
    }
    for c in center.iter_mut() {
        *c /= n as f64;
    }
    (label, center)
}

/// Runs GBG++ over `data`, returning pure balls that jointly cover every
/// row exactly once.
#[must_use]
pub fn gbg_pp(data: &Dataset, config: &GbgPpConfig) -> Vec<GranularBall> {
    assert!(data.n_samples() > 0, "cannot granulate an empty dataset");
    let mut undivided: Vec<usize> = (0..data.n_samples()).collect();
    let mut balls: Vec<GranularBall> = Vec::new();
    while !undivided.is_empty() {
        let (label, center) = majority_centroid(data, &undivided);
        // Attention: order the undivided samples by distance to the center.
        let mut by_dist: Vec<(f64, usize)> = undivided
            .iter()
            .map(|&r| (euclidean(data.row(r), &center), r))
            .collect();
        by_dist.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then_with(|| a.1.cmp(&b.1)));
        // Hard attention: the homogeneous prefix.
        let prefix_len = by_dist
            .iter()
            .take_while(|&&(_, r)| data.label(r) == label)
            .count();
        if prefix_len == 0 {
            // Nearest sample is heterogeneous: peel it off as a singleton
            // (outlier handling; guarantees termination).
            let (_, row) = by_dist[0];
            balls.push(GranularBall {
                center: data.row(row).to_vec(),
                radius: 0.0,
                label: data.label(row),
                members: vec![row],
                center_row: Some(row),
                purity: 1.0,
            });
            undivided.retain(|&r| r != row);
            continue;
        }
        let members: Vec<usize> = by_dist[..prefix_len].iter().map(|&(_, r)| r).collect();
        if members.len() < config.min_ball_size {
            // Too small for a proper ball: emit singletons.
            for &row in &members {
                balls.push(GranularBall {
                    center: data.row(row).to_vec(),
                    radius: 0.0,
                    label,
                    members: vec![row],
                    center_row: Some(row),
                    purity: 1.0,
                });
            }
        } else {
            let radius = by_dist[prefix_len - 1].0;
            balls.push(GranularBall {
                center,
                radius,
                label,
                members,
                center_row: None,
                purity: 1.0,
            });
        }
        undivided = by_dist[prefix_len..].iter().map(|&(_, r)| r).collect();
    }
    balls
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_dataset::catalog::DatasetId;

    #[test]
    fn covers_every_row_exactly_once() {
        let data = DatasetId::S5.generate(0.05, 1);
        let balls = gbg_pp(&data, &GbgPpConfig::default());
        let mut seen = vec![0usize; data.n_samples()];
        for b in &balls {
            for &m in &b.members {
                seen[m] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn every_ball_is_pure() {
        let data = DatasetId::S2.generate(0.2, 2);
        for b in gbg_pp(&data, &GbgPpConfig::default()) {
            assert_eq!(b.measured_purity(&data), 1.0);
            assert_eq!(b.purity, 1.0);
        }
    }

    #[test]
    fn members_lie_within_radius() {
        // Unlike Eq.-1 generators, the peeled radius is the max member
        // distance, so balls are geometrically exact.
        let data = DatasetId::S5.generate(0.1, 3);
        for b in gbg_pp(&data, &GbgPpConfig::default()) {
            for &m in &b.members {
                assert!(
                    b.contains_point(data.row(m), 1e-9),
                    "member outside its ball"
                );
            }
        }
    }

    #[test]
    fn two_separated_clusters_two_balls() {
        let mut feats = Vec::new();
        let mut labels = Vec::new();
        for i in 0..30 {
            feats.extend_from_slice(&[i as f64 * 0.01, 0.0]);
            labels.push(0);
        }
        for i in 0..20 {
            feats.extend_from_slice(&[100.0 + i as f64 * 0.01, 0.0]);
            labels.push(1);
        }
        let data = Dataset::from_parts(feats, labels, 2, 2);
        let balls = gbg_pp(&data, &GbgPpConfig::default());
        assert_eq!(balls.len(), 2, "one ball per separated cluster");
        assert!(balls.iter().any(|b| b.label == 0 && b.len() == 30));
        assert!(balls.iter().any(|b| b.label == 1 && b.len() == 20));
    }

    #[test]
    fn interleaved_singletons_terminate() {
        // Alternating labels along a line force tiny prefixes; the method
        // must still terminate and cover everything.
        let feats: Vec<f64> = (0..50).map(f64::from).collect();
        let labels: Vec<u32> = (0..50).map(|i| (i % 2) as u32).collect();
        let data = Dataset::from_parts(feats, labels, 1, 2);
        let balls = gbg_pp(&data, &GbgPpConfig::default());
        let total: usize = balls.iter().map(GranularBall::len).sum();
        assert_eq!(total, 50);
    }

    #[test]
    fn min_ball_size_splits_small_prefixes_into_singletons() {
        let feats: Vec<f64> = (0..20).map(f64::from).collect();
        let labels: Vec<u32> = (0..20).map(|i| u32::from(i >= 18)).collect();
        let data = Dataset::from_parts(feats, labels, 1, 2);
        let cfg = GbgPpConfig { min_ball_size: 3 };
        let balls = gbg_pp(&data, &cfg);
        // the 2-member minority prefix must appear as radius-0 singletons
        let minority: Vec<_> = balls.iter().filter(|b| b.label == 1).collect();
        assert_eq!(minority.len(), 2);
        assert!(minority.iter().all(|b| b.radius == 0.0 && b.len() == 1));
    }

    #[test]
    fn deterministic() {
        let data = DatasetId::S2.generate(0.1, 5);
        let a = gbg_pp(&data, &GbgPpConfig::default());
        let b = gbg_pp(&data, &GbgPpConfig::default());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.members, y.members);
        }
    }

    #[test]
    fn single_class_dataset_one_ball() {
        let data = Dataset::from_parts((0..40).map(f64::from).collect(), vec![0; 40], 1, 1);
        let balls = gbg_pp(&data, &GbgPpConfig::default());
        assert_eq!(balls.len(), 1);
        assert_eq!(balls[0].len(), 40);
    }
}
