//! Bootstrap sampling (sampling with replacement).
//!
//! One of the paper's §I "general sampling methods" (Breiman \[20\], the
//! resampling behind bagging/Random Forest): draw `ratio · N` rows uniformly
//! *with replacement*. At ratio 1 roughly `1 − 1/e ≈ 63.2 %` of the distinct
//! rows appear at least once; duplicated rows up-weight whatever they carry —
//! including class noise, which is why the paper groups it with the
//! noise-sensitive general methods.

use gb_dataset::rng::rng_from_seed;
use gb_dataset::Dataset;
use gbabs::{SampleResult, Sampler};
use rand::Rng;

/// Uniform with-replacement resampler.
#[derive(Debug, Clone, Copy)]
pub struct Bootstrap {
    /// Output size as a fraction of the input size; 1.0 is the classic
    /// bootstrap. Must be positive (values above 1 oversample).
    pub ratio: f64,
}

impl Default for Bootstrap {
    fn default() -> Self {
        Self { ratio: 1.0 }
    }
}

impl Bootstrap {
    /// Creates a bootstrap sampler producing `ratio · N` rows.
    ///
    /// # Panics
    /// Panics unless `ratio > 0`.
    #[must_use]
    pub fn new(ratio: f64) -> Self {
        assert!(ratio > 0.0, "ratio must be positive");
        Self { ratio }
    }
}

impl Sampler for Bootstrap {
    fn name(&self) -> &'static str {
        "Bootstrap"
    }

    fn sample(&self, data: &Dataset, seed: u64) -> SampleResult {
        let n = data.n_samples();
        let draw = (((n as f64) * self.ratio).round() as usize).max(1);
        let mut rng = rng_from_seed(seed);
        let mut out = data.empty_like();
        for _ in 0..draw {
            let r = rng.gen_range(0..n);
            out.push_row(data.row(r), data.label(r));
        }
        SampleResult {
            dataset: out,
            kept_rows: None, // rows repeat; not a subset selection
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_dataset::catalog::DatasetId;
    use std::collections::HashSet;

    #[test]
    fn output_size_matches_ratio() {
        let d = DatasetId::S2.generate(0.1, 1);
        for ratio in [0.5, 1.0, 1.5] {
            let out = Bootstrap::new(ratio).sample(&d, 0);
            let expected = ((d.n_samples() as f64) * ratio).round() as usize;
            assert_eq!(out.dataset.n_samples(), expected);
        }
    }

    #[test]
    fn classic_bootstrap_covers_about_63_percent() {
        let d = DatasetId::S5.generate(0.05, 1);
        let out = Bootstrap::default().sample(&d, 1);
        // Count distinct source rows by exact feature-vector identity
        // (synthetic rows are all distinct with probability 1).
        let distinct: HashSet<Vec<u64>> = (0..out.dataset.n_samples())
            .map(|i| {
                out.dataset
                    .row(i)
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<u64>>()
            })
            .collect();
        let frac = distinct.len() as f64 / d.n_samples() as f64;
        assert!(
            (frac - 0.632).abs() < 0.03,
            "distinct fraction {frac} far from 1 - 1/e"
        );
    }

    #[test]
    fn every_row_comes_from_the_input() {
        let d = DatasetId::S2.generate(0.1, 2);
        let originals: HashSet<Vec<u64>> = (0..d.n_samples())
            .map(|i| d.row(i).iter().map(|v| v.to_bits()).collect())
            .collect();
        let out = Bootstrap::default().sample(&d, 3);
        for i in 0..out.dataset.n_samples() {
            let key: Vec<u64> = out.dataset.row(i).iter().map(|v| v.to_bits()).collect();
            assert!(originals.contains(&key), "row {i} not from input");
        }
    }

    #[test]
    fn no_kept_rows_reported() {
        let d = DatasetId::S2.generate(0.1, 0);
        assert!(Bootstrap::default().sample(&d, 0).kept_rows.is_none());
    }

    #[test]
    fn deterministic_per_seed() {
        let d = DatasetId::S5.generate(0.05, 1);
        let a = Bootstrap::default().sample(&d, 4);
        let b = Bootstrap::default().sample(&d, 4);
        assert_eq!(a.dataset.features(), b.dataset.features());
        let c = Bootstrap::default().sample(&d, 5);
        assert_ne!(a.dataset.features(), c.dataset.features());
    }

    #[test]
    #[should_panic(expected = "ratio must be positive")]
    fn rejects_non_positive_ratio() {
        let _ = Bootstrap::new(0.0);
    }
}
