//! # gb-sampling
//!
//! The baseline sampling methods the GBABS paper compares against (§V-A)
//! plus the related-work methods its introduction surveys (§I), implemented
//! from scratch behind the shared [`gbabs::Sampler`] trait.
//!
//! Paper §V-A comparison baselines:
//!
//! * [`srs::Srs`] — simple random sampling (ratio-matched to GBABS),
//! * [`smote::Smote`] — SMOTE oversampling,
//! * [`borderline_smote::BorderlineSmote`] — Borderline-SMOTE (variant 1),
//! * [`smotenc::SmoteNc`] — SMOTE for mixed numeric/categorical data,
//! * [`tomek::TomekLinks`] — Tomek-link undersampling,
//! * [`ggbs::Ggbs`] / [`igbs::Igbs`] — the GB-based sampling baselines, on
//!   top of the classic purity-threshold k-division GBG in [`gbg_kdiv`].
//!
//! Paper §I related-work methods (general samplers and the extended
//! imbalance family):
//!
//! * [`stratified::Stratified`] — per-class proportional allocation,
//! * [`systematic::Systematic`] — fixed-stride systematic sampling,
//! * [`bootstrap::Bootstrap`] — with-replacement resampling,
//! * [`adasyn::Adasyn`] — difficulty-weighted SMOTE variant,
//! * [`cnn::CondensedNn`] — Hart's condensed nearest neighbour (the method
//!   Tomek's \[16\] modifies),
//! * [`enn::EditedNn`] — Wilson editing (the other classic cleaning rule),
//! * [`combine::SmoteTomek`] / [`combine::SmoteEnn`] — the standard
//!   oversample-then-clean combinations.
//!
//! Granulation substrates for the GB-based baselines and ablations live in
//! [`gbg_kdiv`] (purity-threshold k-division), [`gbg_kmeans`] (the original
//! 2-means GBG of Xia et al. \[22\]) and [`gbg_pp`] (GBG++ hard-attention
//! division of Xie et al. \[38\]).
//!
//! ```
//! use gbabs::Sampler;
//! use gb_dataset::catalog::DatasetId;
//! use gb_sampling::smote::Smote;
//!
//! let imbalanced = DatasetId::S9.generate(0.05, 1);
//! let balanced = Smote::default().sample(&imbalanced, 0).dataset;
//! let counts = balanced.class_counts();
//! assert_eq!(counts[0], counts[1]);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod adasyn;
pub mod bootstrap;
pub mod borderline_smote;
pub mod cnn;
pub mod combine;
pub mod enn;
pub mod gbg_kdiv;
pub mod gbg_kmeans;
pub mod gbg_pp;
pub mod ggbs;
pub mod igbs;
pub mod smote;
pub mod smotenc;
pub mod srs;
pub mod stratified;
pub mod systematic;
pub mod tomek;

pub use adasyn::Adasyn;
pub use bootstrap::Bootstrap;
pub use borderline_smote::BorderlineSmote;
pub use cnn::CondensedNn;
pub use combine::{SmoteEnn, SmoteTomek};
pub use enn::EditedNn;
pub use ggbs::Ggbs;
pub use igbs::Igbs;
pub use smote::Smote;
pub use smotenc::SmoteNc;
pub use srs::Srs;
pub use stratified::Stratified;
pub use systematic::Systematic;
pub use tomek::TomekLinks;
