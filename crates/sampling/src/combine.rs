//! Combined over- + under-sampling: SMOTE-Tomek and SMOTE-ENN.
//!
//! The standard imbalanced-learn combinations the SMOTE literature pairs
//! with the paper's baselines: first SMOTE tops every class up to the
//! majority count, then a cleaning rule removes the boundary artifacts
//! oversampling creates — exactly the "SMOTE may blur class boundaries"
//! problem the paper's introduction calls out. SMOTE-Tomek deletes both
//! endpoints of every Tomek link; SMOTE-ENN applies Wilson editing to all
//! classes (the stronger cleaner).

use crate::enn::enn_removals;
use crate::smote::Smote;
use crate::tomek::find_tomek_links;
use gb_dataset::Dataset;
use gbabs::{SampleResult, Sampler};

/// SMOTE followed by Tomek-link removal (both endpoints, imblearn's
/// `SMOTETomek`).
#[derive(Debug, Clone, Copy, Default)]
pub struct SmoteTomek {
    /// The SMOTE stage.
    pub smote: Smote,
}

/// SMOTE followed by all-classes ENN editing (imblearn's `SMOTEENN`).
#[derive(Debug, Clone, Copy)]
pub struct SmoteEnn {
    /// The SMOTE stage.
    pub smote: Smote,
    /// ENN neighbour count (imblearn default 3).
    pub enn_k: usize,
}

impl Default for SmoteEnn {
    fn default() -> Self {
        Self {
            smote: Smote::default(),
            enn_k: 3,
        }
    }
}

fn keep_all_but(data: &Dataset, removals: &[usize]) -> SampleResult {
    let mut remove = vec![false; data.n_samples()];
    for &r in removals {
        remove[r] = true;
    }
    let mut rows: Vec<usize> = (0..data.n_samples()).filter(|&r| !remove[r]).collect();
    if rows.is_empty() {
        rows = (0..data.n_samples()).collect();
    }
    SampleResult {
        dataset: data.select(&rows),
        // The intermediate dataset contains synthetic rows, so there is no
        // mapping back to the caller's row indices.
        kept_rows: None,
    }
}

impl Sampler for SmoteTomek {
    fn name(&self) -> &'static str {
        "SM+Tomek"
    }

    fn sample(&self, data: &Dataset, seed: u64) -> SampleResult {
        let oversampled = self.smote.sample(data, seed).dataset;
        let removals: Vec<usize> = find_tomek_links(&oversampled)
            .into_iter()
            .flat_map(|(a, b)| [a, b])
            .collect();
        keep_all_but(&oversampled, &removals)
    }
}

impl Sampler for SmoteEnn {
    fn name(&self) -> &'static str {
        "SM+ENN"
    }

    fn sample(&self, data: &Dataset, seed: u64) -> SampleResult {
        let oversampled = self.smote.sample(data, seed).dataset;
        let removals = enn_removals(&oversampled, self.enn_k, true);
        keep_all_but(&oversampled, &removals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_dataset::catalog::DatasetId;

    #[test]
    fn smote_tomek_removes_links_from_the_oversampled_set() {
        let d = DatasetId::S9.generate(0.05, 1);
        let plain = Smote::default().sample(&d, 0).dataset;
        let combined = SmoteTomek::default().sample(&d, 0).dataset;
        assert!(combined.n_samples() <= plain.n_samples());
        // Tomek cleaning must leave no links behind.
        assert!(find_tomek_links(&combined).is_empty());
    }

    #[test]
    fn smote_enn_cleans_harder_than_smote_tomek() {
        // ENN editing is the aggressive cleaner of the two — on noisy,
        // overlapping data it removes at least as much.
        let d = DatasetId::S2.generate(0.3, 2);
        let tomek = SmoteTomek::default().sample(&d, 1).dataset;
        let enn = SmoteEnn::default().sample(&d, 1).dataset;
        assert!(enn.n_samples() <= tomek.n_samples());
    }

    #[test]
    fn rough_balance_survives_cleaning() {
        let d = DatasetId::S9.generate(0.05, 3);
        for out in [
            SmoteTomek::default().sample(&d, 2).dataset,
            SmoteEnn::default().sample(&d, 2).dataset,
        ] {
            let counts = out.class_counts();
            let max = *counts.iter().max().unwrap() as f64;
            let min = *counts.iter().filter(|&&c| c > 0).min().unwrap() as f64;
            assert!(
                min / max > 0.5,
                "cleaning destroyed the balance: {counts:?}"
            );
        }
    }

    #[test]
    fn no_kept_rows_reported() {
        let d = DatasetId::S9.generate(0.05, 0);
        assert!(SmoteTomek::default().sample(&d, 0).kept_rows.is_none());
        assert!(SmoteEnn::default().sample(&d, 0).kept_rows.is_none());
    }

    #[test]
    fn deterministic_per_seed() {
        let d = DatasetId::S9.generate(0.05, 4);
        for (a, b) in [
            (
                SmoteTomek::default().sample(&d, 9),
                SmoteTomek::default().sample(&d, 9),
            ),
            (
                SmoteEnn::default().sample(&d, 9),
                SmoteEnn::default().sample(&d, 9),
            ),
        ] {
            assert_eq!(a.dataset.features(), b.dataset.features());
        }
    }

    #[test]
    fn balanced_clean_input_roughly_unchanged() {
        // Separated, balanced clusters: SMOTE adds little, cleaners remove
        // nothing.
        let d = Dataset::from_parts(
            vec![0.0, 0.1, 0.2, 0.3, 10.0, 10.1, 10.2, 10.3],
            vec![0, 0, 0, 0, 1, 1, 1, 1],
            1,
            2,
        );
        let out = SmoteTomek::default().sample(&d, 0).dataset;
        assert_eq!(out.n_samples(), d.n_samples());
    }
}
