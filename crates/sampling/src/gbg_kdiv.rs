//! Purity-threshold k-division granular-ball generation.
//!
//! This is the *classic* GBG used by GGBS/IGBS (paper §III-B, after Xia et
//! al. \[23\]/\[27\]), reimplemented as the baseline substrate: start from one
//! ball holding the whole dataset; while a ball's purity is below the
//! threshold **and** it holds more than `2·p` samples, split it by
//! k-division (one centroid per class present, Lloyd reassignment); finish
//! with Eq.-1 balls — centroid center, *mean-distance* radius, majority
//! label. Unlike RD-GBG these balls may overlap and may leave members
//! outside their radius: exactly the deficiencies the paper's method fixes
//! (and our ablation benches measure).

use gb_dataset::distance::euclidean;
use gb_dataset::index::{assign_to_nearest, GranulationBackend};
use gb_dataset::rng::rng_from_seed;
use gb_dataset::Dataset;
use gbabs::GranularBall;
use rand::Rng;

/// Configuration for the k-division GBG.
#[derive(Debug, Clone, Copy)]
pub struct KDivConfig {
    /// Purity threshold below which a (large-enough) ball keeps splitting.
    /// GGBS sweeps this; 1.0 demands pure balls.
    pub purity_threshold: f64,
    /// Lloyd iterations per split.
    pub lloyd_iters: usize,
    /// Seed (used only to jitter degenerate splits).
    pub seed: u64,
    /// Granulation backend, threaded for lineage-wide sweeps. The
    /// k-division substrate has no adjacency queries — its Lloyd step is
    /// the dense [`assign_to_nearest`] batched-kernel query, which every
    /// backend executes identically — so this is **output- and
    /// cost-invariant** here; it exists so one `--backend` knob reaches the
    /// whole lineage (GBG++ and RD-GBG are where it changes asymptotics).
    pub backend: GranulationBackend,
}

impl Default for KDivConfig {
    fn default() -> Self {
        Self {
            purity_threshold: 1.0,
            lloyd_iters: 3,
            seed: 0,
            backend: GranulationBackend::Auto,
        }
    }
}

/// Scratch for the batched Lloyd steps: the gathered row coordinates of the
/// ball being split (row-major), reused across iterations.
pub(crate) struct LloydScratch {
    pub(crate) points: Vec<f64>,
    pub(crate) assign: Vec<u32>,
}

impl LloydScratch {
    pub(crate) fn new() -> Self {
        Self {
            points: Vec::new(),
            assign: Vec::new(),
        }
    }

    /// Gathers `rows` of `data` into the contiguous points block.
    pub(crate) fn gather(&mut self, data: &Dataset, rows: &[usize]) {
        self.points.clear();
        for &r in rows {
            self.points.extend_from_slice(data.row(r));
        }
        self.assign.clear();
        self.assign.resize(rows.len(), 0);
    }
}

/// Builds an Eq.-1 ball over `rows`: centroid center, mean-distance radius,
/// majority label, measured purity.
fn make_ball(data: &Dataset, rows: Vec<usize>) -> GranularBall {
    debug_assert!(!rows.is_empty());
    let p = data.n_features();
    let mut center = vec![0.0; p];
    for &r in &rows {
        for (j, &v) in data.row(r).iter().enumerate() {
            center[j] += v;
        }
    }
    for c in center.iter_mut() {
        *c /= rows.len() as f64;
    }
    let radius = rows
        .iter()
        .map(|&r| euclidean(data.row(r), &center))
        .sum::<f64>()
        / rows.len() as f64;
    let mut counts = vec![0usize; data.n_classes()];
    for &r in &rows {
        counts[data.label(r) as usize] += 1;
    }
    let (label, label_count) = counts
        .iter()
        .enumerate()
        .max_by(|(ia, ca), (ib, cb)| ca.cmp(cb).then_with(|| ib.cmp(ia)))
        .map(|(i, &c)| (i as u32, c))
        .expect("non-empty class counts");
    let purity = label_count as f64 / rows.len() as f64;
    GranularBall {
        center,
        radius,
        label,
        members: rows,
        center_row: None,
        purity,
    }
}

/// Splits `rows` by k-division: one *random member per class present* as
/// the initial center (the init used by Xia et al.'s k-division), then
/// `lloyd_iters` rounds of nearest-centroid reassignment through the
/// batched [`assign_to_nearest`] query (ties toward the smaller centroid
/// index, exactly like the per-pair loop it replaced). Returns the
/// non-empty children (possibly fewer than k).
fn k_division(
    data: &Dataset,
    rows: &[usize],
    lloyd_iters: usize,
    rng: &mut impl Rng,
    scratch: &mut LloydScratch,
) -> Vec<Vec<usize>> {
    let p = data.n_features();
    // classes present
    let mut present: Vec<u32> = rows.iter().map(|&r| data.label(r)).collect();
    present.sort_unstable();
    present.dedup();
    let k = present.len();
    if k < 2 {
        return vec![rows.to_vec()];
    }
    // initial centers: one random sample of each class, flattened row-major
    // for the batched assignment kernel
    let mut centroids = vec![0.0f64; k * p];
    let mut counts = vec![0usize; k];
    for (ci, &class) in present.iter().enumerate() {
        let members: Vec<usize> = rows
            .iter()
            .copied()
            .filter(|&r| data.label(r) == class)
            .collect();
        let pick = members[rng.gen_range(0..members.len())];
        centroids[ci * p..(ci + 1) * p].copy_from_slice(data.row(pick));
    }
    // If two initial centers coincide exactly, jitter one of them.
    for ci in 1..k {
        if centroids[ci * p..(ci + 1) * p] == centroids[..p] {
            let j = rng.gen_range(0..p);
            centroids[ci * p + j] += 1e-6 * (ci as f64);
        }
    }
    scratch.gather(data, rows);
    for _ in 0..lloyd_iters.max(1) {
        // assignment step: one batched sweep over the gathered block
        assign_to_nearest(&scratch.points, &centroids, p, &mut scratch.assign);
        // update step
        centroids.fill(0.0);
        counts.iter_mut().for_each(|c| *c = 0);
        for (pos, &r) in rows.iter().enumerate() {
            let ci = scratch.assign[pos] as usize;
            counts[ci] += 1;
            for (s, &v) in centroids[ci * p..(ci + 1) * p].iter_mut().zip(data.row(r)) {
                *s += v;
            }
        }
        for (ci, &n) in counts.iter().enumerate() {
            if n > 0 {
                for v in &mut centroids[ci * p..(ci + 1) * p] {
                    *v /= n as f64;
                }
            }
        }
    }
    let mut children = vec![Vec::new(); k];
    for (pos, &r) in rows.iter().enumerate() {
        children[scratch.assign[pos] as usize].push(r);
    }
    children.retain(|c| !c.is_empty());
    children
}

/// Runs purity-threshold GBG over `data`. A ball is *small* when it holds at
/// most `2·p` samples; small balls are never split regardless of purity
/// (the behaviour the paper criticizes in §III-B).
#[must_use]
pub fn k_division_gbg(data: &Dataset, config: &KDivConfig) -> Vec<GranularBall> {
    assert!(data.n_samples() > 0, "cannot granulate an empty dataset");
    let two_p = 2 * data.n_features();
    let mut rng = rng_from_seed(config.seed);
    let mut scratch = LloydScratch::new();
    let mut queue: Vec<Vec<usize>> = vec![(0..data.n_samples()).collect()];
    let mut done: Vec<GranularBall> = Vec::new();
    while let Some(rows) = queue.pop() {
        let ball = make_ball(data, rows);
        if ball.purity < config.purity_threshold && ball.len() > two_p {
            let children = k_division(
                data,
                &ball.members,
                config.lloyd_iters,
                &mut rng,
                &mut scratch,
            );
            if children.len() < 2 {
                done.push(ball); // degenerate split: keep as-is
            } else {
                queue.extend(children);
            }
        } else {
            done.push(ball);
        }
    }
    done
}

/// Whether a ball is "large" in the GGBS sense (> 2·p members).
#[must_use]
pub fn is_large(ball: &GranularBall, n_features: usize) -> bool {
    ball.len() > 2 * n_features
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_dataset::catalog::DatasetId;
    use gbabs::diagnostics::count_overlaps;

    #[test]
    fn covers_every_row_exactly_once() {
        let data = DatasetId::S5.generate(0.05, 1);
        let balls = k_division_gbg(&data, &KDivConfig::default());
        let mut seen = vec![0usize; data.n_samples()];
        for b in &balls {
            for &m in &b.members {
                seen[m] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn purity_reached_or_ball_is_small() {
        let data = DatasetId::S2.generate(0.2, 2);
        let cfg = KDivConfig {
            purity_threshold: 0.9,
            ..Default::default()
        };
        let balls = k_division_gbg(&data, &cfg);
        let two_p = 2 * data.n_features();
        for b in &balls {
            assert!(
                b.purity >= 0.9 || b.len() <= two_p,
                "ball with purity {} and {} members",
                b.purity,
                b.len()
            );
        }
    }

    #[test]
    fn classic_gbg_overlaps_on_interleaved_data() {
        // The structural deficiency RD-GBG removes: on heavily overlapping
        // high-dimensional data (the S7 / coil2000 surrogate) the Eq.-1
        // balls overlap.
        let data = DatasetId::S7.generate(0.04, 3);
        let balls = k_division_gbg(&data, &KDivConfig::default());
        assert!(
            count_overlaps(&balls, 1e-9) > 0,
            "expected classic GBG to produce overlapping balls"
        );
    }

    #[test]
    fn mean_radius_leaves_members_outside() {
        // Eq. 1 radius is the *mean* distance, so some members fall outside
        // the sphere — the other deficiency the paper points out.
        let data = DatasetId::S5.generate(0.05, 4);
        let balls = k_division_gbg(&data, &KDivConfig::default());
        let any_outside = balls.iter().any(|b| {
            b.members
                .iter()
                .any(|&m| !b.contains_point(data.row(m), 1e-9))
        });
        assert!(any_outside, "expected mean-radius balls to leak members");
    }

    #[test]
    fn single_class_dataset_one_ball() {
        let feats: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let data = Dataset::from_parts(feats, vec![0; 40], 1, 1);
        let balls = k_division_gbg(&data, &KDivConfig::default());
        assert_eq!(balls.len(), 1);
        assert_eq!(balls[0].purity, 1.0);
    }

    #[test]
    fn identical_points_terminate() {
        // all rows identical but labels mixed: k-division cannot separate;
        // must not loop forever
        let data = Dataset::from_parts(
            vec![1.0; 40],
            (0..40).map(|i| (i % 2) as u32).collect(),
            1,
            2,
        );
        let balls = k_division_gbg(&data, &KDivConfig::default());
        let total: usize = balls.iter().map(|b| b.len()).sum();
        assert_eq!(total, 40);
    }

    #[test]
    fn is_large_threshold() {
        let data = DatasetId::S5.generate(0.02, 0);
        let balls = k_division_gbg(&data, &KDivConfig::default());
        for b in &balls {
            assert_eq!(is_large(b, data.n_features()), b.len() > 4);
        }
    }
}
