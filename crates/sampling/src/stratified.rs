//! Stratified sampling (proportional allocation).
//!
//! One of the paper's §I "general sampling methods" (Johnson &
//! Bhattacharyya \[19\]): the dataset is partitioned into per-class strata
//! and a uniform sample of `ratio · |stratum|` rows is drawn independently
//! inside each stratum, preserving the class distribution of the input by
//! construction. Like SRS it samples from the overall distribution — the
//! property that makes the general methods noise-sensitive in the paper's
//! analysis — but it removes the class-proportion variance of plain SRS.

use gb_dataset::rng::rng_from_seed;
use gb_dataset::Dataset;
use gbabs::{SampleResult, Sampler};
use rand::seq::SliceRandom;

/// Proportional-allocation stratified subsampler.
#[derive(Debug, Clone, Copy)]
pub struct Stratified {
    /// Fraction of each class to keep, in `(0, 1]`.
    pub ratio: f64,
}

impl Stratified {
    /// Creates a stratified sampler keeping `ratio` of every class.
    ///
    /// # Panics
    /// Panics unless `0 < ratio <= 1`.
    #[must_use]
    pub fn new(ratio: f64) -> Self {
        assert!(ratio > 0.0 && ratio <= 1.0, "ratio must be in (0,1]");
        Self { ratio }
    }
}

impl Sampler for Stratified {
    fn name(&self) -> &'static str {
        "Stratified"
    }

    fn sample(&self, data: &Dataset, seed: u64) -> SampleResult {
        let mut rng = rng_from_seed(seed);
        let mut rows: Vec<usize> = Vec::new();
        for mut stratum in data.class_indices() {
            if stratum.is_empty() {
                continue;
            }
            // At least one row per non-empty class, so no class vanishes.
            let keep =
                (((stratum.len() as f64) * self.ratio).round() as usize).clamp(1, stratum.len());
            stratum.shuffle(&mut rng);
            rows.extend_from_slice(&stratum[..keep]);
        }
        rows.sort_unstable();
        SampleResult {
            dataset: data.select(&rows),
            kept_rows: Some(rows),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_dataset::catalog::DatasetId;

    #[test]
    fn preserves_class_proportions_exactly() {
        let d = DatasetId::S9.generate(0.1, 1); // IR ~ 9.9
        let out = Stratified::new(0.5).sample(&d, 0);
        let before = d.class_counts();
        let after = out.dataset.class_counts();
        for c in 0..d.n_classes() {
            let expected = ((before[c] as f64) * 0.5).round() as usize;
            assert_eq!(after[c], expected.clamp(1, before[c]), "class {c}");
        }
    }

    #[test]
    fn never_drops_a_class() {
        // A class with 2 members at ratio 0.1 would round to 0 without the
        // floor-of-one rule.
        let d = Dataset::from_parts(
            (0..42).map(f64::from).collect(),
            (0..42).map(|i| u32::from(i >= 40)).collect(),
            1,
            2,
        );
        let out = Stratified::new(0.1).sample(&d, 1);
        let counts = out.dataset.class_counts();
        assert_eq!(counts[1], 1, "tiny class floored to one row");
        assert_eq!(counts[0], 4);
    }

    #[test]
    fn kept_rows_match_content() {
        let d = DatasetId::S2.generate(0.1, 2);
        let out = Stratified::new(0.4).sample(&d, 3);
        let kept = out.kept_rows.expect("pure undersampler");
        assert_eq!(kept.len(), out.dataset.n_samples());
        for (pos, &row) in kept.iter().enumerate() {
            assert_eq!(out.dataset.row(pos), d.row(row));
            assert_eq!(out.dataset.label(pos), d.label(row));
        }
    }

    #[test]
    fn ratio_one_is_identity_set() {
        let d = DatasetId::S2.generate(0.1, 1);
        let out = Stratified::new(1.0).sample(&d, 0);
        assert_eq!(out.dataset.n_samples(), d.n_samples());
    }

    #[test]
    fn deterministic_per_seed() {
        let d = DatasetId::S5.generate(0.05, 1);
        let a = Stratified::new(0.3).sample(&d, 7);
        let b = Stratified::new(0.3).sample(&d, 7);
        let c = Stratified::new(0.3).sample(&d, 8);
        assert_eq!(a.kept_rows, b.kept_rows);
        assert_ne!(a.kept_rows, c.kept_rows);
    }

    #[test]
    #[should_panic(expected = "ratio must be in (0,1]")]
    fn rejects_ratio_above_one() {
        let _ = Stratified::new(1.5);
    }
}
