//! SMOTENC — SMOTE for mixed Numerical + Categorical data (Chawla et al.
//! 2002, §6.1; imblearn's `SMOTENC`).
//!
//! Neighbour distances add a fixed penalty (the median of the numeric
//! columns' standard deviations) for every differing categorical column;
//! synthetic samples interpolate numeric columns and take the *mode* of the
//! neighbours' categorical codes. On datasets without categorical columns
//! the method degenerates to plain SMOTE (imblearn would refuse; degrading
//! gracefully keeps the paper's 13-dataset sweep uniform — noted in
//! DESIGN.md).

use crate::smote::oversample_targets;
use gb_dataset::distance::mixed_distance;
use gb_dataset::rng::rng_from_seed;
use gb_dataset::{Dataset, FeatureKind};
use gbabs::{SampleResult, Sampler};
use rand::Rng;

/// SMOTENC configuration.
#[derive(Debug, Clone, Copy)]
pub struct SmoteNcConfig {
    /// Neighbours per synthesis.
    pub k_neighbors: usize,
}

impl Default for SmoteNcConfig {
    fn default() -> Self {
        Self { k_neighbors: 5 }
    }
}

/// The SMOTENC sampler.
#[derive(Debug, Clone, Copy, Default)]
pub struct SmoteNc {
    /// Configuration.
    pub config: SmoteNcConfig,
}

/// Median standard deviation of the numeric columns — imblearn's categorical
/// penalty term.
fn categorical_penalty(data: &Dataset, categorical: &[bool]) -> f64 {
    let p = data.n_features();
    let n = data.n_samples().max(1) as f64;
    let mut stds = Vec::new();
    for (j, &is_cat) in categorical.iter().enumerate().take(p) {
        if is_cat {
            continue;
        }
        let mean: f64 = (0..data.n_samples()).map(|i| data.value(i, j)).sum::<f64>() / n;
        let var: f64 = (0..data.n_samples())
            .map(|i| (data.value(i, j) - mean).powi(2))
            .sum::<f64>()
            / n;
        stds.push(var.sqrt());
    }
    if stds.is_empty() {
        return 1.0;
    }
    stds.sort_by(|a, b| a.partial_cmp(b).expect("finite stds"));
    stds[stds.len() / 2]
}

/// k nearest same-class rows under the mixed metric.
fn mixed_k_nearest(
    data: &Dataset,
    base: usize,
    class: u32,
    k: usize,
    categorical: &[bool],
    penalty: f64,
) -> Vec<usize> {
    let mut hits: Vec<(usize, f64)> = (0..data.n_samples())
        .filter(|&i| i != base && data.label(i) == class)
        .map(|i| {
            (
                i,
                mixed_distance(data.row(base), data.row(i), categorical, penalty),
            )
        })
        .collect();
    hits.sort_by(|a, b| {
        a.1.partial_cmp(&b.1)
            .expect("finite distances")
            .then_with(|| a.0.cmp(&b.0))
    });
    hits.truncate(k);
    hits.into_iter().map(|(i, _)| i).collect()
}

impl Sampler for SmoteNc {
    fn name(&self) -> &'static str {
        "SMNC"
    }

    fn sample(&self, data: &Dataset, seed: u64) -> SampleResult {
        let categorical: Vec<bool> = data
            .feature_kinds()
            .iter()
            .map(|k| *k == FeatureKind::Categorical)
            .collect();
        let penalty = categorical_penalty(data, &categorical);
        let mut rng = rng_from_seed(seed);
        let mut out = data.clone();
        let targets = oversample_targets(data);
        let groups = data.class_indices();
        for (class, &n_new) in targets.iter().enumerate() {
            let donors = &groups[class];
            if n_new == 0 || donors.is_empty() {
                continue;
            }
            if donors.len() == 1 {
                for _ in 0..n_new {
                    out.push_row(data.row(donors[0]), class as u32);
                }
                continue;
            }
            for _ in 0..n_new {
                let base = donors[rng.gen_range(0..donors.len())];
                let hood = mixed_k_nearest(
                    data,
                    base,
                    class as u32,
                    self.config.k_neighbors,
                    &categorical,
                    penalty,
                );
                let pick = hood[rng.gen_range(0..hood.len())];
                let gap: f64 = rng.gen();
                let mut row = Vec::with_capacity(data.n_features());
                for (j, &is_cat) in categorical.iter().enumerate() {
                    if is_cat {
                        // mode of the neighbourhood (incl. the base sample)
                        let mut votes: Vec<f64> = hood
                            .iter()
                            .map(|&i| data.value(i, j))
                            .chain(std::iter::once(data.value(base, j)))
                            .collect();
                        votes.sort_by(|a, b| a.partial_cmp(b).expect("finite codes"));
                        let mut best_v = votes[0];
                        let mut best_c = 1usize;
                        let mut cur_v = votes[0];
                        let mut cur_c = 1usize;
                        for &v in &votes[1..] {
                            if v == cur_v {
                                cur_c += 1;
                            } else {
                                cur_v = v;
                                cur_c = 1;
                            }
                            if cur_c > best_c {
                                best_c = cur_c;
                                best_v = cur_v;
                            }
                        }
                        row.push(best_v);
                    } else {
                        let a = data.value(base, j);
                        let b = data.value(pick, j);
                        row.push(a + gap * (b - a));
                    }
                }
                out.push_row(&row, class as u32);
            }
        }
        SampleResult {
            dataset: out,
            kept_rows: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_dataset::catalog::DatasetId;

    #[test]
    fn balances_mixed_dataset() {
        let d = DatasetId::S1.generate(0.5, 1); // mixed-type surrogate
        let out = SmoteNc::default().sample(&d, 0);
        let counts = out.dataset.class_counts();
        let max = *counts.iter().max().unwrap();
        assert!(counts.iter().all(|&c| c == max), "{counts:?}");
    }

    #[test]
    fn synthetic_categoricals_are_valid_codes() {
        let d = DatasetId::S1.generate(0.3, 2);
        let cats = d.categorical_columns();
        let (lo, hi) = d.column_bounds();
        let out = SmoteNc::default().sample(&d, 1);
        for i in d.n_samples()..out.dataset.n_samples() {
            for &j in &cats {
                let v = out.dataset.value(i, j);
                assert!(v.fract() == 0.0, "non-integer categorical {v}");
                assert!(v >= lo[j] && v <= hi[j], "code {v} outside observed range");
            }
        }
    }

    #[test]
    fn numeric_columns_interpolated_within_class_hull() {
        let d = DatasetId::S1.generate(0.2, 3);
        let out = SmoteNc::default().sample(&d, 2);
        // minority class = 1; synthetic rows carry label 1 and numeric
        // col 0 must lie within minority's observed range
        let minority_rows: Vec<usize> = (0..d.n_samples()).filter(|&i| d.label(i) == 1).collect();
        let vals: Vec<f64> = minority_rows.iter().map(|&i| d.value(i, 0)).collect();
        let lo = vals.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for i in d.n_samples()..out.dataset.n_samples() {
            let v = out.dataset.value(i, 0);
            assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "{v} outside [{lo},{hi}]");
        }
    }

    #[test]
    fn falls_back_to_smote_on_pure_numeric_data() {
        let d = DatasetId::S9.generate(0.05, 4);
        let out = SmoteNc::default().sample(&d, 3);
        let counts = out.dataset.class_counts();
        let max = *counts.iter().max().unwrap();
        assert!(counts.iter().all(|&c| c == max));
    }

    #[test]
    fn deterministic() {
        let d = DatasetId::S1.generate(0.2, 5);
        let a = SmoteNc::default().sample(&d, 9);
        let b = SmoteNc::default().sample(&d, 9);
        assert_eq!(a.dataset.features(), b.dataset.features());
    }
}
