//! Original 2-means granular-ball generation (Xia et al. 2019, ref \[22\]).
//!
//! The first GBG method in the literature and the root of the family tree
//! the paper's §III-A surveys: start from one ball holding the whole
//! dataset; while a ball's purity is below the threshold, split it into two
//! children by plain (class-agnostic) 2-means; finish with Eq.-1 balls —
//! centroid center, mean-distance radius, majority label. Differences from
//! the k-division GBG in [`crate::gbg_kdiv`]: the split arity is always 2
//! and the initial centers are random samples rather than one per class, so
//! deep recursions are needed on multi-class data. Like every Eq.-1
//! generator it produces overlapping balls whose members may lie outside
//! their radius — the deficiencies RD-GBG removes, quantified by the
//! `granulation` ablation.

use crate::gbg_kdiv::LloydScratch;
use gb_dataset::index::{assign_to_nearest, GranulationBackend};
use gb_dataset::rng::rng_from_seed;
use gb_dataset::Dataset;
use gbabs::GranularBall;
use rand::seq::SliceRandom;
use rand::Rng;

/// Configuration for the 2-means GBG.
#[derive(Debug, Clone, Copy)]
pub struct KMeansGbgConfig {
    /// Purity threshold below which a ball keeps splitting (paper sweeps
    /// this for the classic methods; 1.0 demands pure balls).
    pub purity_threshold: f64,
    /// Minimum members for a ball to be split further. The original
    /// algorithm never splits singletons; 2 reproduces that.
    pub min_split_size: usize,
    /// Lloyd iterations per split.
    pub lloyd_iters: usize,
    /// Seed for the random initial centers.
    pub seed: u64,
    /// Granulation backend, threaded for lineage-wide sweeps. Like
    /// k-division (see [`crate::gbg_kdiv::KDivConfig::backend`]), the
    /// 2-means split is the dense batched assignment query, identical on
    /// every backend — the field is output- and cost-invariant here.
    pub backend: GranulationBackend,
}

impl Default for KMeansGbgConfig {
    fn default() -> Self {
        Self {
            purity_threshold: 1.0,
            min_split_size: 2,
            lloyd_iters: 3,
            seed: 0,
            backend: GranulationBackend::Auto,
        }
    }
}

/// Builds an Eq.-1 ball over `rows` (centroid center, mean-distance radius,
/// majority label). Shared shape with the k-division generator but kept
/// local so each module documents its own paper lineage.
fn make_ball(data: &Dataset, rows: Vec<usize>) -> GranularBall {
    debug_assert!(!rows.is_empty());
    let p = data.n_features();
    let mut center = vec![0.0; p];
    for &r in &rows {
        for (j, &v) in data.row(r).iter().enumerate() {
            center[j] += v;
        }
    }
    for c in center.iter_mut() {
        *c /= rows.len() as f64;
    }
    let radius = rows
        .iter()
        .map(|&r| gb_dataset::distance::euclidean(data.row(r), &center))
        .sum::<f64>()
        / rows.len() as f64;
    let mut counts = vec![0usize; data.n_classes()];
    for &r in &rows {
        counts[data.label(r) as usize] += 1;
    }
    let (label, label_count) = counts
        .iter()
        .enumerate()
        .max_by(|(ia, ca), (ib, cb)| ca.cmp(cb).then_with(|| ib.cmp(ia)))
        .map(|(i, &c)| (i as u32, c))
        .expect("non-empty class counts");
    let purity = label_count as f64 / rows.len() as f64;
    GranularBall {
        center,
        radius,
        label,
        members: rows,
        center_row: None,
        purity,
    }
}

/// One 2-means split of `rows`, each assignment step a batched
/// [`assign_to_nearest`] sweep (ties toward side 0, exactly like the
/// `d1 < d0` comparison it replaced). Returns `None` when the rows cannot
/// be separated (all coordinates identical), which ends recursion for that
/// ball.
fn two_means(
    data: &Dataset,
    rows: &[usize],
    lloyd_iters: usize,
    rng: &mut impl Rng,
    scratch: &mut LloydScratch,
) -> Option<(Vec<usize>, Vec<usize>)> {
    debug_assert!(rows.len() >= 2);
    let p = data.n_features();
    // Random distinct-sample init, as in the original method.
    let mut picks: Vec<usize> = rows.to_vec();
    picks.shuffle(rng);
    let a = picks[0];
    let b = picks
        .iter()
        .copied()
        .find(|&r| data.row(r) != data.row(a))?;
    let mut init = Vec::with_capacity(2 * p);
    init.extend_from_slice(data.row(a));
    init.extend_from_slice(data.row(b));
    let mut centroids = init.clone();
    scratch.gather(data, rows);
    for _ in 0..lloyd_iters.max(1) {
        assign_to_nearest(&scratch.points, &centroids, p, &mut scratch.assign);
        let mut sums = vec![0.0f64; 2 * p];
        let mut counts = [0usize; 2];
        for (pos, &r) in rows.iter().enumerate() {
            let side = scratch.assign[pos] as usize;
            counts[side] += 1;
            for (s, &v) in sums[side * p..(side + 1) * p].iter_mut().zip(data.row(r)) {
                *s += v;
            }
        }
        for side in 0..2 {
            if counts[side] > 0 {
                for (c, s) in centroids[side * p..(side + 1) * p]
                    .iter_mut()
                    .zip(&sums[side * p..(side + 1) * p])
                {
                    *c = s / counts[side] as f64;
                }
            }
        }
    }
    let partition = |assign: &[u32]| {
        let (mut left, mut right) = (Vec::new(), Vec::new());
        for (pos, &r) in rows.iter().enumerate() {
            if assign[pos] == 0 {
                left.push(r);
            } else {
                right.push(r);
            }
        }
        (left, right)
    };
    let (left, right) = partition(&scratch.assign);
    if !left.is_empty() && !right.is_empty() {
        return Some((left, right));
    }
    // Lloyd collapsed one side. Fall back to assignment by the two distinct
    // init samples: `a` and `b` each bind to their own side, so both sides
    // are guaranteed non-empty and recursion always makes progress.
    assign_to_nearest(&scratch.points, &init, p, &mut scratch.assign);
    Some(partition(&scratch.assign))
}

/// Runs the original 2-means GBG over `data`.
#[must_use]
pub fn kmeans_gbg(data: &Dataset, config: &KMeansGbgConfig) -> Vec<GranularBall> {
    assert!(data.n_samples() > 0, "cannot granulate an empty dataset");
    let mut rng = rng_from_seed(config.seed);
    let mut scratch = LloydScratch::new();
    let mut queue: Vec<Vec<usize>> = vec![(0..data.n_samples()).collect()];
    let mut done: Vec<GranularBall> = Vec::new();
    while let Some(rows) = queue.pop() {
        let ball = make_ball(data, rows);
        let splittable =
            ball.purity < config.purity_threshold && ball.len() >= config.min_split_size.max(2);
        if splittable {
            match two_means(
                data,
                &ball.members,
                config.lloyd_iters,
                &mut rng,
                &mut scratch,
            ) {
                Some((left, right)) => {
                    queue.push(left);
                    queue.push(right);
                }
                None => done.push(ball), // identical coordinates: cannot split
            }
        } else {
            done.push(ball);
        }
    }
    done
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_dataset::catalog::DatasetId;

    #[test]
    fn covers_every_row_exactly_once() {
        let data = DatasetId::S5.generate(0.05, 1);
        let balls = kmeans_gbg(&data, &KMeansGbgConfig::default());
        let mut seen = vec![0usize; data.n_samples()];
        for b in &balls {
            for &m in &b.members {
                seen[m] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn purity_threshold_respected_when_separable() {
        let data = DatasetId::S5.generate(0.05, 2);
        let cfg = KMeansGbgConfig {
            purity_threshold: 0.95,
            ..Default::default()
        };
        for b in kmeans_gbg(&data, &cfg) {
            assert!(
                b.purity >= 0.95 || b.len() < 2 || all_rows_identical(&data, &b.members),
                "impure splittable ball survived: purity {} size {}",
                b.purity,
                b.len()
            );
        }
    }

    fn all_rows_identical(data: &Dataset, rows: &[usize]) -> bool {
        rows.windows(2).all(|w| data.row(w[0]) == data.row(w[1]))
    }

    #[test]
    fn produces_more_balls_than_kdiv_on_multiclass() {
        // Binary splits need deeper recursion on a 5-class dataset than the
        // one-center-per-class k-division, typically yielding at least as
        // many balls.
        let data = DatasetId::S6.generate(0.05, 1);
        let km = kmeans_gbg(&data, &KMeansGbgConfig::default());
        let kd = crate::gbg_kdiv::k_division_gbg(&data, &crate::gbg_kdiv::KDivConfig::default());
        assert!(
            km.len() + 5 >= kd.len(),
            "2-means produced {} balls vs k-division {}",
            km.len(),
            kd.len()
        );
    }

    #[test]
    fn identical_points_terminate() {
        let data = Dataset::from_parts(
            vec![1.0; 40],
            (0..40).map(|i| (i % 2) as u32).collect(),
            1,
            2,
        );
        let balls = kmeans_gbg(&data, &KMeansGbgConfig::default());
        let total: usize = balls.iter().map(GranularBall::len).sum();
        assert_eq!(total, 40);
    }

    #[test]
    fn single_sample_dataset() {
        let data = Dataset::from_parts(vec![3.0], vec![0], 1, 1);
        let balls = kmeans_gbg(&data, &KMeansGbgConfig::default());
        assert_eq!(balls.len(), 1);
        assert_eq!(balls[0].radius, 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let data = DatasetId::S2.generate(0.1, 1);
        let a = kmeans_gbg(&data, &KMeansGbgConfig::default());
        let b = kmeans_gbg(&data, &KMeansGbgConfig::default());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.members, y.members);
        }
    }

    #[test]
    fn relaxed_purity_means_fewer_balls() {
        let data = DatasetId::S2.generate(0.2, 3);
        let strict = kmeans_gbg(&data, &KMeansGbgConfig::default());
        let relaxed = kmeans_gbg(
            &data,
            &KMeansGbgConfig {
                purity_threshold: 0.7,
                ..Default::default()
            },
        );
        assert!(relaxed.len() <= strict.len());
    }
}
