//! ENN — Edited Nearest Neighbours undersampling (Wilson 1972).
//!
//! The second classic neighbourhood-cleaning rule next to Tomek links
//! (\[16\]): remove every sample whose `k = 3` nearest neighbours
//! majority-vote a *different* label. Where CNN keeps the borderline, ENN
//! deletes the noisy fringe — the same class-noise problem the paper's
//! RD-GBG attacks with its Eq.-2 density rules, making ENN a natural extra
//! baseline for the noise experiments.
//!
//! Following imbalanced-learn, the default edits only non-minority
//! classes; [`EnnConfig::edit_all`] switches to Wilson's original
//! all-classes rule (the variant SMOTE-ENN uses).

use gb_dataset::neighbors::k_nearest;
use gb_dataset::Dataset;
use gbabs::{SampleResult, Sampler};

/// ENN configuration.
#[derive(Debug, Clone, Copy)]
pub struct EnnConfig {
    /// Neighbours consulted per sample (imblearn default 3).
    pub k_neighbors: usize,
    /// Edit every class instead of only non-minority classes.
    pub edit_all: bool,
}

impl Default for EnnConfig {
    fn default() -> Self {
        Self {
            k_neighbors: 3,
            edit_all: false,
        }
    }
}

/// The ENN sampler.
#[derive(Debug, Clone, Copy, Default)]
pub struct EditedNn {
    /// Configuration.
    pub config: EnnConfig,
}

/// Rows ENN would remove from `data`: samples whose k-NN majority label
/// disagrees with their own. `edit_all` controls whether minority-class
/// rows are eligible.
///
/// Every row's neighbourhood vote is independent, so the k-NN scans run in
/// parallel; the removal list is assembled in row order, identical to the
/// sequential loop. Each scan streams the row-major buffer through the
/// batched SIMD distance kernel (`k_nearest` → `sq_euclidean_one_to_many`)
/// on wide data; results are deterministic for any kernel tier.
#[must_use]
pub fn enn_removals(data: &Dataset, k: usize, edit_all: bool) -> Vec<usize> {
    use rayon::prelude::*;

    let counts = data.class_counts();
    let minority = counts
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .min_by(|(ia, ca), (ib, cb)| ca.cmp(cb).then_with(|| ia.cmp(ib)))
        .map(|(i, _)| i as u32)
        .unwrap_or(0);
    let flagged: Vec<bool> = (0..data.n_samples())
        .into_par_iter()
        .map(|i| {
            if !edit_all && data.label(i) == minority {
                return false;
            }
            let hits = k_nearest(data, data.row(i), k, Some(i));
            if hits.is_empty() {
                return false;
            }
            let mut votes = vec![0usize; data.n_classes()];
            for h in &hits {
                votes[data.label(h.index) as usize] += 1;
            }
            let winner = votes
                .iter()
                .enumerate()
                .max_by(|(ia, ca), (ib, cb)| ca.cmp(cb).then_with(|| ib.cmp(ia)))
                .map(|(c, _)| c as u32)
                .unwrap_or(0);
            winner != data.label(i)
        })
        .collect();
    flagged
        .into_iter()
        .enumerate()
        .filter_map(|(i, f)| f.then_some(i))
        .collect()
}

impl Sampler for EditedNn {
    fn name(&self) -> &'static str {
        "ENN"
    }

    fn sample(&self, data: &Dataset, _seed: u64) -> SampleResult {
        let removals = enn_removals(data, self.config.k_neighbors, self.config.edit_all);
        let mut remove = vec![false; data.n_samples()];
        for r in removals {
            remove[r] = true;
        }
        let mut rows: Vec<usize> = (0..data.n_samples()).filter(|&r| !remove[r]).collect();
        if rows.is_empty() {
            // Pathological all-removed case (e.g. perfectly interleaved
            // labels): keep the input rather than emit an empty set.
            rows = (0..data.n_samples()).collect();
        }
        SampleResult {
            dataset: data.select(&rows),
            kept_rows: Some(rows),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_dataset::catalog::DatasetId;
    use gb_dataset::noise::inject_class_noise;

    /// Majority cluster with one mislabelled sample inside it.
    fn noisy_cluster() -> Dataset {
        Dataset::from_parts(
            vec![0.0, 0.1, 0.2, 0.3, 0.4, 8.0, 8.1, 8.2, 8.3],
            vec![0, 0, 1, 0, 0, 1, 1, 1, 1],
            1,
            2,
        )
    }

    #[test]
    fn removes_the_planted_noise_under_edit_all() {
        let d = noisy_cluster();
        // class 1 has 5 members vs 4 for class 0, so the flipped row (index
        // 2, label 1 inside the class-0 cluster) is minority-eligible only
        // under edit_all.
        let removals = enn_removals(&d, 3, true);
        assert!(removals.contains(&2), "{removals:?}");
    }

    #[test]
    fn default_spares_minority_class() {
        let d = noisy_cluster();
        let counts = d.class_counts();
        let minority = if counts[0] < counts[1] { 0u32 } else { 1u32 };
        let removals = enn_removals(&d, 3, false);
        assert!(removals.iter().all(|&r| d.label(r) != minority));
    }

    #[test]
    fn clean_separated_clusters_untouched() {
        let d = Dataset::from_parts(
            vec![0.0, 0.1, 0.2, 0.3, 10.0, 10.1, 10.2, 10.3],
            vec![0, 0, 0, 0, 1, 1, 1, 1],
            1,
            2,
        );
        let out = EditedNn::default().sample(&d, 0);
        assert_eq!(out.dataset.n_samples(), d.n_samples());
    }

    #[test]
    fn cleans_injected_class_noise() {
        let clean = DatasetId::S5.generate(0.05, 1);
        let (noisy, flipped) = inject_class_noise(&clean, 0.2, 3);
        let out = EditedNn {
            config: EnnConfig {
                edit_all: true,
                ..Default::default()
            },
        }
        .sample(&noisy, 0);
        let kept = out.kept_rows.unwrap();
        // a majority of the flipped rows must be edited away
        let surviving_noise = flipped
            .iter()
            .filter(|r| kept.binary_search(r).is_ok())
            .count();
        assert!(
            (surviving_noise as f64) < 0.5 * flipped.len() as f64,
            "ENN kept {surviving_noise}/{} flipped rows",
            flipped.len()
        );
    }

    #[test]
    fn never_emits_empty_output() {
        // perfectly interleaved 1-D labels: edit_all would remove everything
        let d = Dataset::from_parts(
            (0..10).map(f64::from).collect(),
            (0..10).map(|i| (i % 2) as u32).collect(),
            1,
            2,
        );
        let out = EditedNn {
            config: EnnConfig {
                edit_all: true,
                k_neighbors: 2,
            },
        }
        .sample(&d, 0);
        assert!(out.dataset.n_samples() > 0);
    }

    #[test]
    fn deterministic() {
        let d = DatasetId::S2.generate(0.1, 1);
        let a = EditedNn::default().sample(&d, 0);
        let b = EditedNn::default().sample(&d, 1); // seed-free method
        assert_eq!(a.kept_rows, b.kept_rows);
    }
}
