//! Simple random sampling (SRS, reservoir-style uniform subset).
//!
//! The paper's unbiased general-sampling baseline; its ratio is always tied
//! to GBABS's ratio on the same dataset ("the sampling ratio of the SRS on
//! each dataset is consistent with that of GBABS").

use gb_dataset::rng::rng_from_seed;
use gb_dataset::Dataset;
use gbabs::{SampleResult, Sampler};
use rand::seq::SliceRandom;

/// Uniform random subsampler at a fixed ratio.
#[derive(Debug, Clone, Copy)]
pub struct Srs {
    /// Fraction of rows to keep, in `(0, 1]`.
    pub ratio: f64,
}

impl Srs {
    /// Creates an SRS sampler keeping `ratio` of the rows.
    ///
    /// # Panics
    /// Panics unless `0 < ratio <= 1`.
    #[must_use]
    pub fn new(ratio: f64) -> Self {
        assert!(ratio > 0.0 && ratio <= 1.0, "ratio must be in (0,1]");
        Self { ratio }
    }
}

impl Sampler for Srs {
    fn name(&self) -> &'static str {
        "SRS"
    }

    fn sample(&self, data: &Dataset, seed: u64) -> SampleResult {
        let n = data.n_samples();
        let keep = (((n as f64) * self.ratio).round() as usize).clamp(1, n);
        let mut rows: Vec<usize> = (0..n).collect();
        rows.shuffle(&mut rng_from_seed(seed));
        rows.truncate(keep);
        rows.sort_unstable();
        SampleResult {
            dataset: data.select(&rows),
            kept_rows: Some(rows),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_dataset::catalog::DatasetId;

    #[test]
    fn keeps_requested_fraction() {
        let d = DatasetId::S2.generate(0.5, 1);
        let out = Srs::new(0.3).sample(&d, 0);
        let expected = ((d.n_samples() as f64) * 0.3).round() as usize;
        assert_eq!(out.dataset.n_samples(), expected);
    }

    #[test]
    fn ratio_one_keeps_everything() {
        let d = DatasetId::S2.generate(0.1, 1);
        let out = Srs::new(1.0).sample(&d, 0);
        assert_eq!(out.dataset.n_samples(), d.n_samples());
    }

    #[test]
    fn deterministic_per_seed_and_varies_across_seeds() {
        let d = DatasetId::S2.generate(0.2, 1);
        let a = Srs::new(0.5).sample(&d, 7);
        let b = Srs::new(0.5).sample(&d, 7);
        let c = Srs::new(0.5).sample(&d, 8);
        assert_eq!(a.kept_rows, b.kept_rows);
        assert_ne!(a.kept_rows, c.kept_rows);
    }

    #[test]
    fn is_roughly_unbiased_across_classes() {
        let d = DatasetId::S9.generate(0.3, 2);
        let out = Srs::new(0.5).sample(&d, 3);
        let before = d.class_counts();
        let after = out.dataset.class_counts();
        for c in 0..d.n_classes() {
            let frac = after[c] as f64 / before[c].max(1) as f64;
            assert!((frac - 0.5).abs() < 0.15, "class {c} kept fraction {frac}");
        }
    }

    #[test]
    #[should_panic(expected = "ratio must be in (0,1]")]
    fn zero_ratio_rejected() {
        let _ = Srs::new(0.0);
    }
}
