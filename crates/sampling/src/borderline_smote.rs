//! Borderline-SMOTE (Han et al. 2005, "borderline-1" variant).
//!
//! Only minority samples in DANGER — at least half but not all of their
//! `m = 10` nearest neighbours (over the whole dataset) belong to other
//! classes — donate synthetic samples; interpolation partners come from the
//! `k = 5` nearest same-class neighbours, as in plain SMOTE.

use crate::smote::{oversample_targets, synthesize_for_class};
use gb_dataset::neighbors::k_nearest;
use gb_dataset::rng::rng_from_seed;
use gb_dataset::Dataset;
use gbabs::{SampleResult, Sampler};

/// Borderline-SMOTE configuration.
#[derive(Debug, Clone, Copy)]
pub struct BorderlineSmoteConfig {
    /// Neighbourhood size for the DANGER test (imblearn default 10).
    pub m_neighbors: usize,
    /// Neighbours per synthesis (imblearn default 5).
    pub k_neighbors: usize,
}

impl Default for BorderlineSmoteConfig {
    fn default() -> Self {
        Self {
            m_neighbors: 10,
            k_neighbors: 5,
        }
    }
}

/// The Borderline-SMOTE sampler.
#[derive(Debug, Clone, Copy, Default)]
pub struct BorderlineSmote {
    /// Configuration.
    pub config: BorderlineSmoteConfig,
}

/// Classification of a minority sample in Han et al.'s scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Region {
    /// All m neighbours heterogeneous: treated as noise, never a donor.
    Noise,
    /// Half or more (but not all) heterogeneous: borderline donor.
    Danger,
    /// Majority of neighbours homogeneous: safe, not a donor.
    Safe,
}

pub(crate) fn region_of(data: &Dataset, row: usize, m: usize) -> Region {
    let hits = k_nearest(data, data.row(row), m, Some(row));
    let m_eff = hits.len().max(1);
    let het = hits
        .iter()
        .filter(|h| data.label(h.index) != data.label(row))
        .count();
    if het == m_eff {
        Region::Noise
    } else if 2 * het >= m_eff {
        Region::Danger
    } else {
        Region::Safe
    }
}

impl Sampler for BorderlineSmote {
    fn name(&self) -> &'static str {
        "BSM"
    }

    fn sample(&self, data: &Dataset, seed: u64) -> SampleResult {
        let mut rng = rng_from_seed(seed);
        let mut out = data.clone();
        let targets = oversample_targets(data);
        let groups = data.class_indices();
        for (class, &n_new) in targets.iter().enumerate() {
            if n_new == 0 {
                continue;
            }
            // Region checks are independent per row: run the m-NN scans in
            // parallel, keeping donor order (and thus output) unchanged.
            let danger: Vec<usize> = {
                use rayon::prelude::*;
                groups[class]
                    .par_iter()
                    .map(|&r| (r, region_of(data, r, self.config.m_neighbors)))
                    .collect::<Vec<_>>()
                    .into_iter()
                    .filter_map(|(r, region)| (region == Region::Danger).then_some(r))
                    .collect()
            };
            // Han et al.: if no borderline sample exists, nothing is
            // synthesized for the class.
            synthesize_for_class(
                data,
                &danger,
                class as u32,
                n_new,
                self.config.k_neighbors,
                &mut rng,
                &mut out,
            );
        }
        SampleResult {
            dataset: out,
            kept_rows: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_dataset::catalog::DatasetId;

    /// Minority cluster on [4.0, 4.4] plus a boundary sample at 4.9 beside
    /// the majority cluster starting at 5.0.
    fn boundary_dataset() -> Dataset {
        let mut xs = vec![4.0, 4.1, 4.2, 4.3, 4.4, 4.9];
        let mut labels = vec![1u32; 6];
        for i in 0..20 {
            xs.push(5.0 + i as f64 * 0.1);
            labels.push(0);
        }
        Dataset::from_parts(xs, labels, 1, 2)
    }

    #[test]
    fn regions_classified_sensibly() {
        let d = boundary_dataset();
        // row 5 (x=4.9) sits beside the majority cluster: half-or-more of
        // its 10-NN are majority, but its minority friends are close -> Danger
        assert_eq!(region_of(&d, 5, 10), Region::Danger);
        // row 0 (x=4.0) is inside the minority cluster: its 5-NN are the
        // other minority samples -> Safe
        assert_eq!(region_of(&d, 0, 5), Region::Safe);
    }

    #[test]
    fn isolated_minority_is_noise() {
        let mut xs = vec![50.0];
        let mut labels = vec![1u32];
        for i in 0..20 {
            xs.push(i as f64 * 0.1);
            labels.push(0);
        }
        let d = Dataset::from_parts(xs, labels, 1, 2);
        assert_eq!(region_of(&d, 0, 10), Region::Noise);
    }

    #[test]
    fn synthesis_happens_near_boundary() {
        let d = boundary_dataset();
        let out = BorderlineSmote::default().sample(&d, 1);
        assert!(out.dataset.n_samples() > d.n_samples());
        // all synthetic minority samples interpolate from danger donors
        // toward other minority members, so they live in [4.0, 4.9]
        for i in d.n_samples()..out.dataset.n_samples() {
            assert_eq!(out.dataset.label(i), 1);
            let v = out.dataset.value(i, 0);
            assert!((4.0..=4.9).contains(&v), "synthetic at {v}");
        }
    }

    #[test]
    fn no_danger_samples_means_no_synthesis() {
        // a tight minority cluster of 11 far from the majority: every
        // minority sample's 10-NN are all minority -> all Safe, no donors
        let mut xs: Vec<f64> = (0..11).map(|i| i as f64 * 0.05).collect();
        let mut labels = vec![1u32; 11];
        for i in 0..15 {
            xs.push(100.0 + i as f64 * 0.1);
            labels.push(0);
        }
        let d = Dataset::from_parts(xs, labels, 1, 2);
        let out = BorderlineSmote::default().sample(&d, 0);
        assert_eq!(out.dataset.n_samples(), d.n_samples());
    }

    #[test]
    fn balances_when_danger_exists() {
        let d = DatasetId::S9.generate(0.1, 3);
        let out = BorderlineSmote::default().sample(&d, 2);
        let counts = out.dataset.class_counts();
        // either balanced or untouched (if no danger samples found)
        assert!(counts[1] <= counts[0]);
        assert!(out.dataset.n_samples() >= d.n_samples());
    }

    #[test]
    fn deterministic() {
        let d = DatasetId::S9.generate(0.05, 4);
        let a = BorderlineSmote::default().sample(&d, 9);
        let b = BorderlineSmote::default().sample(&d, 9);
        assert_eq!(a.dataset.features(), b.dataset.features());
    }
}
