//! Systematic random sampling.
//!
//! One of the paper's §I "general sampling methods" (Levy & Lemeshow
//! \[18\]): pick a random start offset and then take every `1/ratio`-th row
//! at a fixed stride. A single random draw fixes the whole sample, so the
//! method is cheap and evenly spread over the row order — but, like every
//! probability-distribution sampler, blind to class boundaries and noise
//! (the weakness the paper's GB-based methods target).
//!
//! Rows are taken in the dataset's natural order, the textbook formulation.
//! A fractional stride `n / keep` is used so the requested ratio is hit
//! exactly even when `1/ratio` is not an integer.

use gb_dataset::rng::rng_from_seed;
use gb_dataset::Dataset;
use gbabs::{SampleResult, Sampler};
use rand::Rng;

/// Fixed-stride systematic subsampler.
#[derive(Debug, Clone, Copy)]
pub struct Systematic {
    /// Fraction of rows to keep, in `(0, 1]`.
    pub ratio: f64,
}

impl Systematic {
    /// Creates a systematic sampler keeping `ratio` of the rows.
    ///
    /// # Panics
    /// Panics unless `0 < ratio <= 1`.
    #[must_use]
    pub fn new(ratio: f64) -> Self {
        assert!(ratio > 0.0 && ratio <= 1.0, "ratio must be in (0,1]");
        Self { ratio }
    }
}

impl Sampler for Systematic {
    fn name(&self) -> &'static str {
        "Systematic"
    }

    fn sample(&self, data: &Dataset, seed: u64) -> SampleResult {
        let n = data.n_samples();
        let keep = (((n as f64) * self.ratio).round() as usize).clamp(1, n);
        let stride = n as f64 / keep as f64;
        let start: f64 = rng_from_seed(seed).gen_range(0.0..stride);
        let mut rows: Vec<usize> = (0..keep)
            .map(|i| ((start + i as f64 * stride) as usize).min(n - 1))
            .collect();
        rows.dedup(); // fractional strides can floor two picks to one row
        SampleResult {
            dataset: data.select(&rows),
            kept_rows: Some(rows),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_dataset::catalog::DatasetId;

    #[test]
    fn keeps_requested_fraction() {
        let d = DatasetId::S5.generate(0.05, 1);
        let out = Systematic::new(0.25).sample(&d, 0);
        let expected = ((d.n_samples() as f64) * 0.25).round() as usize;
        // dedup can only lose a handful of rows at fractional strides
        assert!(out.dataset.n_samples() >= expected - 1);
        assert!(out.dataset.n_samples() <= expected);
    }

    #[test]
    fn rows_are_evenly_spread() {
        let d = DatasetId::S5.generate(0.05, 2);
        let out = Systematic::new(0.1).sample(&d, 1);
        let rows = out.kept_rows.expect("undersampler");
        let stride = d.n_samples() as f64 / rows.len() as f64;
        for w in rows.windows(2) {
            let gap = (w[1] - w[0]) as f64;
            assert!(
                (gap - stride).abs() <= 1.0 + 1e-9,
                "gap {gap} vs stride {stride}"
            );
        }
    }

    #[test]
    fn strictly_increasing_row_indices() {
        let d = DatasetId::S2.generate(0.1, 3);
        let rows = Systematic::new(0.37).sample(&d, 5).kept_rows.unwrap();
        assert!(rows.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn ratio_one_keeps_everything() {
        let d = DatasetId::S2.generate(0.1, 1);
        let out = Systematic::new(1.0).sample(&d, 9);
        assert_eq!(out.dataset.n_samples(), d.n_samples());
    }

    #[test]
    fn single_row_dataset() {
        let d = Dataset::from_parts(vec![1.0], vec![0], 1, 1);
        let out = Systematic::new(0.5).sample(&d, 0);
        assert_eq!(out.dataset.n_samples(), 1);
    }

    #[test]
    fn deterministic_per_seed_start_varies() {
        let d = DatasetId::S5.generate(0.05, 1);
        let a = Systematic::new(0.2).sample(&d, 11);
        let b = Systematic::new(0.2).sample(&d, 11);
        assert_eq!(a.kept_rows, b.kept_rows);
        // Different seeds usually shift the offset; check over a few seeds.
        let varied = (0..8).any(|s| Systematic::new(0.2).sample(&d, s).kept_rows != a.kept_rows);
        assert!(varied, "start offset never moved across seeds");
    }

    #[test]
    #[should_panic(expected = "ratio must be in (0,1]")]
    fn rejects_zero_ratio() {
        let _ = Systematic::new(0.0);
    }
}
