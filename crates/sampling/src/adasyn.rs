//! ADASYN — Adaptive Synthetic over-sampling (He et al. 2008).
//!
//! The SMOTE variant behind the paper's reference \[14\]: instead of
//! synthesizing uniformly across the minority class, each minority sample is
//! weighted by the fraction of *heterogeneous* samples among its `k` nearest
//! neighbours, so synthesis concentrates where the class is hardest to learn
//! — the borderline. That makes ADASYN the oversampling mirror image of the
//! paper's undersampling GBABS and a natural extra baseline.
//!
//! Multi-class handling follows imbalanced-learn's `auto` strategy: every
//! non-majority class is topped up to the majority count; neighbour scans
//! run over the whole dataset, synthesis interpolates between same-class
//! neighbours.

use gb_dataset::neighbors::{k_nearest, k_nearest_filtered};
use gb_dataset::rng::rng_from_seed;
use gb_dataset::Dataset;
use gbabs::{SampleResult, Sampler};
use rand::Rng;

/// ADASYN configuration.
#[derive(Debug, Clone, Copy)]
pub struct AdasynConfig {
    /// Neighbours per difficulty estimate and synthesis (imblearn default 5).
    pub k_neighbors: usize,
}

impl Default for AdasynConfig {
    fn default() -> Self {
        Self { k_neighbors: 5 }
    }
}

/// The ADASYN sampler.
#[derive(Debug, Clone, Copy, Default)]
pub struct Adasyn {
    /// Configuration.
    pub config: AdasynConfig,
}

/// Allocates `total` synthesis counts proportional to `weights` using the
/// largest-remainder method, so the counts sum to exactly `total`.
fn allocate(weights: &[f64], total: usize) -> Vec<usize> {
    let sum: f64 = weights.iter().sum();
    if sum <= 0.0 || total == 0 {
        // Uniform fallback: spread `total` round-robin.
        let n = weights.len().max(1);
        return (0..weights.len())
            .map(|i| total / n + usize::from(i < total % n))
            .collect();
    }
    let raw: Vec<f64> = weights.iter().map(|w| w / sum * total as f64).collect();
    let mut counts: Vec<usize> = raw.iter().map(|r| r.floor() as usize).collect();
    let assigned: usize = counts.iter().sum();
    let mut rema: Vec<(usize, f64)> = raw
        .iter()
        .enumerate()
        .map(|(i, r)| (i, r - r.floor()))
        .collect();
    rema.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(&b.0)));
    for &(i, _) in rema.iter().take(total - assigned) {
        counts[i] += 1;
    }
    counts
}

impl Sampler for Adasyn {
    fn name(&self) -> &'static str {
        "ADASYN"
    }

    fn sample(&self, data: &Dataset, seed: u64) -> SampleResult {
        let mut rng = rng_from_seed(seed);
        let mut out = data.clone();
        let k = self.config.k_neighbors;
        let targets = crate::smote::oversample_targets(data);
        let groups = data.class_indices();
        for (class, &n_new) in targets.iter().enumerate() {
            let donors = &groups[class];
            if n_new == 0 || donors.is_empty() {
                continue;
            }
            let class = class as u32;
            use rayon::prelude::*;
            // Difficulty r_i: heterogeneous fraction of the k-NN in D.
            // Independent per donor — scanned in parallel (each scan a
            // blocked SIMD-kernel sweep), donor order kept.
            let weights: Vec<f64> = donors
                .par_iter()
                .map(|&d| {
                    let hits = k_nearest(data, data.row(d), k, Some(d));
                    if hits.is_empty() {
                        return 0.0;
                    }
                    let hetero = hits.iter().filter(|h| data.label(h.index) != class).count();
                    hetero as f64 / hits.len() as f64
                })
                .collect();
            let counts = allocate(&weights, n_new);
            // Same-class partners among each active donor's k-NN; these are
            // RNG-independent, so the searches parallelize while the
            // synthesis below keeps consuming the stream sequentially.
            let partner_lists: Vec<Option<Vec<gb_dataset::Neighbor>>> = (0..donors.len())
                .into_par_iter()
                .map(|di| {
                    let donor = donors[di];
                    (counts[di] > 0).then(|| {
                        k_nearest_filtered(data, data.row(donor), k, |i| {
                            i != donor && data.label(i) == class
                        })
                    })
                })
                .collect();
            for ((&donor, &g), partners) in donors.iter().zip(counts.iter()).zip(&partner_lists) {
                if g == 0 {
                    continue;
                }
                // Empty when the donor is fully surrounded by other
                // classes — duplicate then.
                let partners = partners.as_ref().expect("computed for g > 0");
                for _ in 0..g {
                    if partners.is_empty() {
                        out.push_row(data.row(donor), class);
                        continue;
                    }
                    let pick = &partners[rng.gen_range(0..partners.len())];
                    let gap: f64 = rng.gen();
                    let row: Vec<f64> = data
                        .row(donor)
                        .iter()
                        .zip(data.row(pick.index).iter())
                        .map(|(a, b)| a + gap * (b - a))
                        .collect();
                    out.push_row(&row, class);
                }
            }
        }
        SampleResult {
            dataset: out,
            kept_rows: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_dataset::catalog::DatasetId;

    #[test]
    fn allocate_hits_total_exactly() {
        let counts = allocate(&[0.2, 0.5, 0.3], 10);
        assert_eq!(counts.iter().sum::<usize>(), 10);
        assert_eq!(counts, vec![2, 5, 3]);
    }

    #[test]
    fn allocate_uniform_fallback_on_zero_weights() {
        let counts = allocate(&[0.0, 0.0, 0.0], 7);
        assert_eq!(counts.iter().sum::<usize>(), 7);
        assert!(counts.iter().all(|&c| c >= 2));
    }

    #[test]
    fn allocate_handles_empty_weights() {
        assert!(allocate(&[], 0).is_empty());
    }

    #[test]
    fn balances_class_counts() {
        let d = DatasetId::S9.generate(0.1, 1);
        let out = Adasyn::default().sample(&d, 0);
        let counts = out.dataset.class_counts();
        let max = *counts.iter().max().unwrap();
        assert!(counts.iter().all(|&c| c == max), "{counts:?}");
    }

    #[test]
    fn synthesis_concentrates_on_the_borderline() {
        // Minority cluster at 0 with one member pushed toward the majority
        // cluster at 10: the pushed member has the hetero-heavy
        // neighbourhood, so it must receive more synthetic offspring.
        let feats = vec![0.0, 0.2, 0.4, 8.0, 10.0, 10.2, 10.4, 10.6, 10.8, 11.0];
        let labels = vec![1, 1, 1, 1, 0, 0, 0, 0, 0, 0];
        let d = Dataset::from_parts(feats, labels, 1, 2);
        let out = Adasyn::default().sample(&d, 1);
        let synth: Vec<f64> = (d.n_samples()..out.dataset.n_samples())
            .map(|i| out.dataset.value(i, 0))
            .collect();
        assert!(!synth.is_empty());
        // offspring of the borderline donor (8.0) interpolate toward the
        // cluster, so at least one synthetic sample sits well above 0.4
        assert!(
            synth.iter().any(|&v| v > 1.0),
            "no synthesis near the borderline donor: {synth:?}"
        );
    }

    #[test]
    fn original_rows_preserved_as_prefix() {
        let d = DatasetId::S2.generate(0.1, 2);
        let out = Adasyn::default().sample(&d, 1);
        for i in 0..d.n_samples() {
            assert_eq!(out.dataset.row(i), d.row(i));
            assert_eq!(out.dataset.label(i), d.label(i));
        }
    }

    #[test]
    fn lone_minority_sample_duplicated() {
        let d = Dataset::from_parts(vec![0.0, 5.0, 6.0, 7.0], vec![1, 0, 0, 0], 1, 2);
        let out = Adasyn::default().sample(&d, 0);
        let counts = out.dataset.class_counts();
        assert_eq!(counts[0], counts[1]);
        for i in d.n_samples()..out.dataset.n_samples() {
            assert_eq!(out.dataset.value(i, 0), 0.0);
        }
    }

    #[test]
    fn deterministic() {
        let d = DatasetId::S9.generate(0.05, 4);
        let a = Adasyn::default().sample(&d, 9);
        let b = Adasyn::default().sample(&d, 9);
        assert_eq!(a.dataset.features(), b.dataset.features());
    }
}
