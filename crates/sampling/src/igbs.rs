//! IGBS — GB-based sampling for imbalanced datasets (Xia et al. \[23\], as
//! described in the paper's §III-B).
//!
//! Same GBG stage as GGBS; the undersampling stage treats classes
//! asymmetrically: small balls keep everything; large *minority*-class balls
//! keep all their minority samples; large *majority*-class balls keep the
//! GGBS `2·p` axis samples. If the result is still more skewed than the
//! original toward the majority, random majority samples are topped up —
//! the paper's closing step ("if the class distribution is still skewed,
//! randomly sample more majority samples into S"), which we read as
//! rebalancing the *sampled* set (see DESIGN.md interpretation notes).

use crate::gbg_kdiv::{is_large, k_division_gbg, KDivConfig};
use crate::ggbs::large_ball_samples;
use gb_dataset::rng::rng_from_seed;
use gb_dataset::Dataset;
use gbabs::{SampleResult, Sampler};
use rand::seq::SliceRandom;

/// IGBS configuration.
#[derive(Debug, Clone, Copy)]
pub struct IgbsConfig {
    /// Purity threshold of the GBG stage.
    pub purity_threshold: f64,
    /// Granulation backend threaded into the k-division GBG stage
    /// (output-invariant; see
    /// [`crate::gbg_kdiv::KDivConfig::backend`]).
    pub backend: gb_dataset::index::GranulationBackend,
}

impl Default for IgbsConfig {
    fn default() -> Self {
        Self {
            purity_threshold: 1.0,
            backend: gb_dataset::index::GranulationBackend::Auto,
        }
    }
}

/// The IGBS sampler.
#[derive(Debug, Clone, Copy, Default)]
pub struct Igbs {
    /// Configuration.
    pub config: IgbsConfig,
}

impl Sampler for Igbs {
    fn name(&self) -> &'static str {
        "IGBS"
    }

    fn sample(&self, data: &Dataset, seed: u64) -> SampleResult {
        let balls = k_division_gbg(
            data,
            &KDivConfig {
                purity_threshold: self.config.purity_threshold,
                lloyd_iters: 3,
                seed,
                backend: self.config.backend,
            },
        );
        let counts = data.class_counts();
        let majority_class = counts
            .iter()
            .enumerate()
            .max_by(|(ia, ca), (ib, cb)| ca.cmp(cb).then_with(|| ib.cmp(ia)))
            .map(|(i, _)| i as u32)
            .unwrap_or(0);

        let mut keep = vec![false; data.n_samples()];
        for ball in &balls {
            if !is_large(ball, data.n_features()) {
                for &m in &ball.members {
                    keep[m] = true;
                }
            } else if ball.label != majority_class {
                // large minority ball: keep every sample of the ball's class
                for &m in &ball.members {
                    if data.label(m) == ball.label {
                        keep[m] = true;
                    }
                }
            } else {
                large_ball_samples(data, ball, &mut keep);
            }
        }

        // Top-up: if the sampled set under-represents the majority class
        // relative to the largest minority kept, add random majority rows.
        let mut kept_counts = vec![0usize; data.n_classes()];
        for (row, &k) in keep.iter().enumerate() {
            if k {
                kept_counts[data.label(row) as usize] += 1;
            }
        }
        let max_minority_kept = kept_counts
            .iter()
            .enumerate()
            .filter(|&(c, _)| c as u32 != majority_class)
            .map(|(_, &n)| n)
            .max()
            .unwrap_or(0);
        let maj_kept = kept_counts[majority_class as usize];
        if maj_kept < max_minority_kept {
            let mut pool: Vec<usize> = (0..data.n_samples())
                .filter(|&r| !keep[r] && data.label(r) == majority_class)
                .collect();
            let mut rng = rng_from_seed(seed.wrapping_add(0x1685));
            pool.shuffle(&mut rng);
            for row in pool.into_iter().take(max_minority_kept - maj_kept) {
                keep[row] = true;
            }
        }

        let rows: Vec<usize> = (0..data.n_samples()).filter(|&r| keep[r]).collect();
        SampleResult {
            dataset: data.select(&rows),
            kept_rows: Some(rows),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_dataset::catalog::DatasetId;

    #[test]
    fn output_is_subset_of_input() {
        let d = DatasetId::S9.generate(0.05, 1);
        let out = Igbs::default().sample(&d, 0);
        let rows = out.kept_rows.as_ref().unwrap();
        for (pos, &row) in rows.iter().enumerate() {
            assert_eq!(out.dataset.row(pos), d.row(row));
        }
    }

    #[test]
    fn reduces_imbalance_on_skewed_data() {
        let d = DatasetId::S9.generate(0.1, 2); // IR ~ 9.9
        let out = Igbs::default().sample(&d, 1);
        let ir_before = d.imbalance_ratio();
        let ir_after = out.dataset.imbalance_ratio();
        assert!(
            ir_after <= ir_before,
            "IGBS should not worsen imbalance: {ir_before} -> {ir_after}"
        );
    }

    #[test]
    fn minority_class_never_lost() {
        let d = DatasetId::S6.generate(0.2, 3); // 5 classes, IR 175
        let out = Igbs::default().sample(&d, 1);
        let before = d.class_counts();
        let after = out.dataset.class_counts();
        for c in 0..d.n_classes() {
            if before[c] > 0 {
                assert!(after[c] > 0, "class {c} vanished");
            }
        }
    }

    #[test]
    fn majority_top_up_keeps_majority_at_least_at_minority_level() {
        let d = DatasetId::S9.generate(0.1, 5);
        let out = Igbs::default().sample(&d, 2);
        let counts = out.dataset.class_counts();
        let maj = *counts.iter().max().unwrap();
        let min_kept = *counts.iter().filter(|&&c| c > 0).min().unwrap();
        assert!(maj >= min_kept);
    }

    #[test]
    fn deterministic() {
        let d = DatasetId::S9.generate(0.05, 7);
        let a = Igbs::default().sample(&d, 3);
        let b = Igbs::default().sample(&d, 3);
        assert_eq!(a.kept_rows, b.kept_rows);
    }
}
