//! GGBS — the general GB-based sampling baseline (Xia et al. \[23\], as
//! described in the paper's §III-B).
//!
//! Two stages: purity-threshold k-division GBG, then undersampling — *small*
//! balls (≤ 2·p members) contribute all their samples; *large* balls
//! contribute, per feature dimension, the homogeneous sample closest to each
//! of the two axis-intersection points `c ± r·e_d` (up to `2·p` samples).

use crate::gbg_kdiv::{is_large, k_division_gbg, KDivConfig};
use gb_dataset::index::{assign_to_nearest, GranulationBackend};
use gb_dataset::Dataset;
use gbabs::{GranularBall, SampleResult, Sampler};

/// GGBS configuration.
#[derive(Debug, Clone, Copy)]
pub struct GgbsConfig {
    /// Purity threshold of the GBG stage (paper default: searched; 1.0 here
    /// unless stated otherwise — GBABS's advantage is not needing it).
    pub purity_threshold: f64,
    /// Granulation backend threaded into the k-division GBG stage
    /// (output-invariant; see [`KDivConfig::backend`]).
    pub backend: GranulationBackend,
}

impl Default for GgbsConfig {
    fn default() -> Self {
        Self {
            purity_threshold: 1.0,
            backend: GranulationBackend::Auto,
        }
    }
}

/// The GGBS sampler.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ggbs {
    /// Configuration.
    pub config: GgbsConfig,
}

/// Collects the `2·p` axis-extreme homogeneous samples of a large ball:
/// for each of the `2·p` axis-intersection targets `c ± r·e_d`, the
/// homogeneous member nearest to it. One batched [`assign_to_nearest`]
/// call answers all targets at once (targets are the points, the gathered
/// homogeneous members are the centroids); members are gathered in
/// ascending row order so the query's smaller-centroid tie-break is
/// exactly the old per-pair scan's smaller-row tie-break.
pub(crate) fn large_ball_samples(data: &Dataset, ball: &GranularBall, keep: &mut [bool]) {
    let p = data.n_features();
    let mut members: Vec<usize> = ball
        .members
        .iter()
        .copied()
        .filter(|&m| data.label(m) == ball.label)
        .collect();
    if members.is_empty() {
        return;
    }
    members.sort_unstable();
    let mut member_coords = Vec::with_capacity(members.len() * p);
    for &m in &members {
        member_coords.extend_from_slice(data.row(m));
    }
    // The 2·p surface targets: center ± radius along every axis.
    let mut targets = Vec::with_capacity(2 * p * p);
    for dim in 0..p {
        for sign in [-1.0f64, 1.0] {
            let base = targets.len();
            targets.extend_from_slice(&ball.center);
            targets[base + dim] += sign * ball.radius;
        }
    }
    let mut nearest = vec![0u32; 2 * p];
    assign_to_nearest(&targets, &member_coords, p, &mut nearest);
    for &m in &nearest {
        keep[members[m as usize]] = true;
    }
}

/// The GGBS undersampling stage over an arbitrary ball cover: small balls
/// (≤ 2·p members) contribute everything, large balls their axis-extreme
/// homogeneous samples. Returns sorted row indices. Public so ablations can
/// cross GGBS's *rule* with other granulators (e.g. RD-GBG covers).
#[must_use]
pub fn ggbs_rule_over_balls(data: &Dataset, balls: &[GranularBall]) -> Vec<usize> {
    let mut keep = vec![false; data.n_samples()];
    for ball in balls {
        if is_large(ball, data.n_features()) {
            large_ball_samples(data, ball, &mut keep);
        } else {
            for &m in &ball.members {
                keep[m] = true;
            }
        }
    }
    (0..data.n_samples()).filter(|&r| keep[r]).collect()
}

impl Sampler for Ggbs {
    fn name(&self) -> &'static str {
        "GGBS"
    }

    fn sample(&self, data: &Dataset, seed: u64) -> SampleResult {
        let balls = k_division_gbg(
            data,
            &KDivConfig {
                purity_threshold: self.config.purity_threshold,
                lloyd_iters: 3,
                seed,
                backend: self.config.backend,
            },
        );
        let rows = ggbs_rule_over_balls(data, &balls);
        SampleResult {
            dataset: data.select(&rows),
            kept_rows: Some(rows),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_dataset::catalog::DatasetId;

    #[test]
    fn output_is_subset() {
        let d = DatasetId::S5.generate(0.05, 1);
        let out = Ggbs::default().sample(&d, 0);
        let rows = out.kept_rows.as_ref().unwrap();
        assert_eq!(rows.len(), out.dataset.n_samples());
        assert!(rows.windows(2).all(|w| w[0] < w[1]), "sorted unique");
        assert!(out.dataset.n_samples() <= d.n_samples());
    }

    #[test]
    fn small_balls_fully_kept() {
        // A dataset smaller than 2p forms a single small ball -> ratio 1.0
        let d = Dataset::from_parts(vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0], vec![0, 0, 1], 2, 2);
        let out = Ggbs::default().sample(&d, 0);
        assert_eq!(out.dataset.n_samples(), 3);
    }

    #[test]
    fn large_balls_capped_at_two_p() {
        // one big pure cluster: single large ball -> at most 2p samples
        let n = 200;
        let mut feats = Vec::new();
        for i in 0..n {
            feats.push((i % 20) as f64 * 0.01);
            feats.push((i / 20) as f64 * 0.01);
        }
        let d = Dataset::from_parts(feats, vec![0; n], 2, 1);
        let out = Ggbs::default().sample(&d, 0);
        assert!(
            out.dataset.n_samples() <= 4,
            "kept {} samples from one large ball",
            out.dataset.n_samples()
        );
    }

    #[test]
    fn compresses_separable_data() {
        let d = DatasetId::S11.generate(0.02, 2);
        let out = Ggbs::default().sample(&d, 1);
        assert!(
            out.ratio(&d) < 0.9,
            "expected compression on near-separable data, got {}",
            out.ratio(&d)
        );
    }

    #[test]
    fn high_dim_compression_fails_like_the_paper_says() {
        // p = 85 -> 2p = 170 per ball; with heavy overlap balls stay small
        // and GGBS keeps nearly everything (paper: ratio 1.0 on S7).
        let d = DatasetId::S7.generate(0.04, 2);
        let out = Ggbs::default().sample(&d, 1);
        assert!(
            out.ratio(&d) > 0.9,
            "expected near-1.0 ratio on S7, got {}",
            out.ratio(&d)
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let d = DatasetId::S5.generate(0.03, 9);
        let a = Ggbs::default().sample(&d, 5);
        let b = Ggbs::default().sample(&d, 5);
        assert_eq!(a.kept_rows, b.kept_rows);
    }
}
