//! Minimal in-tree stand-in for `crossbeam`: just `thread::scope`, mapped
//! onto `std::thread::scope` (stable since 1.63). A worker panic propagates
//! as a panic from `scope` (std semantics) rather than an `Err`, which is
//! equivalent for this workspace's `.expect(...)` call sites.

/// Scoped threads.
pub mod thread {
    /// Result alias matching crossbeam's signature.
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// A scope handle passed to the closure and to spawned threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope so it can
        /// spawn further threads, mirroring crossbeam's API.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Creates a scope in which spawned threads may borrow from the
    /// environment; all threads are joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_environment() {
        let data = [1u64, 2, 3, 4];
        let total = std::sync::Mutex::new(0u64);
        super::thread::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    let part: u64 = chunk.iter().sum();
                    *total.lock().unwrap() += part;
                });
            }
        })
        .expect("scope");
        assert_eq!(total.into_inner().unwrap(), 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let flag = std::sync::atomic::AtomicBool::new(false);
        super::thread::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| flag.store(true, std::sync::atomic::Ordering::SeqCst));
            });
        })
        .expect("scope");
        assert!(flag.load(std::sync::atomic::Ordering::SeqCst));
    }
}
