//! Minimal in-tree stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this crate provides the
//! exact API subset the workspace consumes: [`rngs::StdRng`] (xoshiro256++
//! seeded via SplitMix64), the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`), [`SeedableRng::seed_from_u64`], and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is deterministic and of good statistical quality, but its
//! stream **differs from the real `rand` crate's `StdRng`** (which is
//! ChaCha12); seeds reproduce runs within this workspace, not against
//! external rand-based code. Swap this path dependency for the real crate
//! once registry access exists — no call sites need to change.

/// Raw 64-bit generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the "standard" distribution (`Rng::gen`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types with a uniform range sampler (subset of
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)`.
    fn sample_below<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Draws uniformly from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

/// Ranges samplable by `Rng::gen_range` (subset of
/// `rand::distributions::uniform::SampleRange`). A single blanket impl per
/// range shape keeps type inference identical to the real crate.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_below(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Unbiased-enough integer draw in `[0, span)` via 128-bit widening multiply.
#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! int_uniform_impls {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_below<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(uniform_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}

int_uniform_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform_impls {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_below<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let unit: $t = Standard::sample(rng);
                lo + unit * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let unit: $t = Standard::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_uniform_impls!(f32, f64);

/// User-facing extension trait (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let unit: f64 = self.gen();
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace-standard generator: xoshiro256++ (Blackman & Vigna),
    /// state-initialised with SplitMix64 as its authors recommend.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// Shuffling for slices (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Uniform Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64_pub(), c.next_u64_pub());
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: f64 = r.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&y));
            let z: i64 = r.gen_range(-5..=5);
            assert!((-5..=5).contains(&z));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..4096 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 4096.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn gen_bool_frequency() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..4096).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / 4096.0;
        assert!((frac - 0.25).abs() < 0.05, "frac {frac}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the identity (astronomically unlikely)"
        );
    }
}
