//! Minimal `#[derive(Serialize, Deserialize)]` implementations for the
//! in-tree serde stand-in. Written against `proc_macro` directly (no
//! syn/quote — the registry is unreachable), so it supports exactly the
//! shapes this workspace derives on:
//!
//! * structs with named fields (`#[serde(default)]` on a field makes it
//!   optional on deserialize, filled from `Default::default()`),
//! * enums whose variants are all unit variants.
//!
//! Anything else (tuple structs, generics, data-carrying enums) is a
//! compile error with a pointed message rather than silent misbehaviour.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the derive input.
enum Shape {
    /// `struct Name { field, ... }`; the flag marks `#[serde(default)]`.
    Struct {
        name: String,
        fields: Vec<(String, bool)>,
    },
    /// `enum Name { Variant, ... }`
    Enum { name: String, variants: Vec<String> },
}

/// Skips one attribute (`#` followed by a bracket group) if present.
fn skip_attrs(tokens: &[TokenTree], i: usize) -> usize {
    skip_attrs_flagged(tokens, i, &mut false)
}

/// Like [`skip_attrs`], additionally setting `has_default` when one of the
/// skipped attributes is `#[serde(default)]`.
fn skip_attrs_flagged(tokens: &[TokenTree], mut i: usize, has_default: &mut bool) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) =
                    (inner.first(), inner.get(1))
                {
                    if id.to_string() == "serde"
                        && args.delimiter() == Delimiter::Parenthesis
                        && args.stream().to_string().trim() == "default"
                    {
                        *has_default = true;
                    }
                }
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skips a visibility modifier (`pub` optionally followed by a paren group).
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_shape(input: &TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.clone().into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    i += 1;
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => {
            return Err(format!(
                "derive on `{name}`: only braced structs/enums are supported \
                 (no tuple structs or generics)"
            ))
        }
    };
    let body: Vec<TokenTree> = body.into_iter().collect();
    match kind.as_str() {
        "struct" => {
            let mut fields = Vec::new();
            let mut j = 0;
            while j < body.len() {
                let mut has_default = false;
                j = skip_attrs_flagged(&body, j, &mut has_default);
                j = skip_vis(&body, j);
                if j >= body.len() {
                    break;
                }
                let field = match &body[j] {
                    TokenTree::Ident(id) => id.to_string(),
                    other => return Err(format!("expected field name, got {other:?}")),
                };
                fields.push((field, has_default));
                j += 1;
                match body.get(j) {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => j += 1,
                    other => return Err(format!("expected `:` after field, got {other:?}")),
                }
                // Skip the type: consume until a comma at angle-bracket depth 0.
                let mut depth = 0i32;
                while j < body.len() {
                    match &body[j] {
                        TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                            j += 1;
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            Ok(Shape::Struct { name, fields })
        }
        "enum" => {
            let mut variants = Vec::new();
            let mut j = 0;
            while j < body.len() {
                j = skip_attrs(&body, j);
                if j >= body.len() {
                    break;
                }
                let variant = match &body[j] {
                    TokenTree::Ident(id) => id.to_string(),
                    other => return Err(format!("expected variant name, got {other:?}")),
                };
                variants.push(variant);
                j += 1;
                match body.get(j) {
                    None => break,
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => j += 1,
                    Some(other) => {
                        return Err(format!(
                            "enum `{name}`: only unit variants are supported, got {other:?}"
                        ))
                    }
                }
            }
            Ok(Shape::Enum { name, variants })
        }
        other => Err(format!("cannot derive on `{other}` items")),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("valid error")
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(&input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|(f, _)| {
                    format!(
                        "fields.push(({f:?}.to_string(), \
                         ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\n\
                         ::serde::Value::Obj(fields)\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => {v:?},"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Str(match self {{ {arms} }}.to_string())\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(&input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|(f, has_default)| {
                    if *has_default {
                        format!(
                            "{f}: match v.get({f:?}) {{ \
                             Some(x) => ::serde::Deserialize::from_value(x)?, \
                             None => ::core::default::Default::default() }},"
                        )
                    } else {
                        format!(
                            "{f}: ::serde::Deserialize::from_value(v.get({f:?}).ok_or_else(|| \
                             ::serde::Error(format!(\"missing field `{f}` in {name}\")))?)?,"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Obj(_) => Ok(Self {{ {inits} }}),\n\
                             other => Err(::serde::Error(format!(\n\
                                 \"expected object for {name}, got {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {arms}\n\
                                 other => Err(::serde::Error(format!(\n\
                                     \"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             other => Err(::serde::Error(format!(\n\
                                 \"expected string for {name}, got {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated impl parses")
}
