//! Minimal in-tree stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, [`Just`], [`collection::vec`], the (optionally weighted)
//! [`prop_oneof!`] union, the [`proptest!`] macro with an optional
//! `#![proptest_config(...)]` attribute, and the `prop_assert*`/
//! `prop_assume` macros.
//!
//! Differences from real proptest: cases are generated from a deterministic
//! per-test RNG (seeded from the test name), there is **no shrinking** — a
//! failing case panics with the assertion message directly — and
//! `prop_assume` skips the remainder of the current case rather than
//! resampling. Good enough to find violations; swap in real proptest for
//! minimal counterexamples once registry access exists.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub use rand::Rng as _;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Builds the deterministic RNG for one test case.
#[must_use]
pub fn test_rng(test_name: &str, case: u32) -> TestRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ (u64::from(case) << 32) ^ u64::from(case))
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config with an explicit case count.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        MapStrategy { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMapStrategy<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMapStrategy { inner: self, f }
    }
}

/// `prop_map` adapter.
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMapStrategy<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Constant strategy.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategies {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

/// A boxed value generator, as stored by [`OneOfStrategy`].
pub type BoxedGen<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// Weighted union of same-valued strategies; built by [`prop_oneof!`].
pub struct OneOfStrategy<T> {
    choices: Vec<(u32, BoxedGen<T>)>,
}

impl<T> OneOfStrategy<T> {
    /// Assembles a union from `(weight, generator)` pairs.
    ///
    /// # Panics
    /// Panics when `choices` is empty or every weight is zero.
    #[must_use]
    pub fn new(choices: Vec<(u32, BoxedGen<T>)>) -> Self {
        assert!(
            choices.iter().map(|&(w, _)| u64::from(w)).sum::<u64>() > 0,
            "prop_oneof! needs at least one positively-weighted choice"
        );
        Self { choices }
    }
}

impl<T> Strategy for OneOfStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.choices.iter().map(|&(w, _)| u64::from(w)).sum();
        let mut pick = rand::Rng::gen_range(rng, 0..total);
        for (w, gen) in &self.choices {
            let w = u64::from(*w);
            if pick < w {
                return gen(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum checked in new()")
    }
}

/// Boxes a strategy's generator for [`OneOfStrategy`] (macro plumbing).
pub fn boxed_gen<S: Strategy + 'static>(s: S) -> BoxedGen<S::Value> {
    Box::new(move |rng| s.generate(rng))
}

/// Picks one of several same-valued strategies, optionally weighted:
/// `prop_oneof![a, b]` or `prop_oneof![9 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::OneOfStrategy::new(vec![
            $(($weight as u32, $crate::boxed_gen($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOfStrategy::new(vec![
            $((1u32, $crate::boxed_gen($strat))),+
        ])
    };
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec()`]: a fixed size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            Self {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi_exclusive {
                self.size.lo
            } else {
                rand::Rng::gen_range(rng, self.size.lo..self.size.hi_exclusive)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the remainder of the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// Declares property tests. Supports the standard shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn holds(x in 0u64..100, v in proptest::collection::vec(0f64..1.0, 3..9)) {
///         prop_assert!(x < 100 && v.len() < 9);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..cfg.cases {
                    let mut __rng = $crate::test_rng(stringify!($name), __case);
                    $( let $pat = $crate::Strategy::generate(&($strat), &mut __rng); )+
                    let mut __run = move || $body;
                    __run();
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in -1.0f64..1.0, z in 2u32..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
            prop_assert!((2..=4).contains(&z));
        }

        #[test]
        fn tuples_and_vecs(
            (n, v) in (1usize..5).prop_flat_map(|n| (Just(n), crate::collection::vec(0u32..9, n)))
        ) {
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|&x| x < 9));
        }

        #[test]
        fn map_applies(s in (0u64..10).prop_map(|x| x * 3)) {
            prop_assert!(s % 3 == 0);
            prop_assert_ne!(s, 31);
        }

        #[test]
        fn assume_skips(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn deterministic_rng_per_name() {
        use crate::Strategy;
        let mut a = crate::test_rng("t", 0);
        let mut b = crate::test_rng("t", 0);
        assert_eq!((0u64..100).generate(&mut a), (0u64..100).generate(&mut b));
    }
}
