//! Minimal in-tree stand-in for `rayon`.
//!
//! The registry is unreachable in this build environment, so this crate
//! provides the parallel-iterator subset the workspace consumes —
//! `par_iter()` on slices, `into_par_iter()` on `Range<usize>` and vectors,
//! `map`/`for_each`/`collect`/`sum` — executed on `std::thread::scope`
//! worker threads with contiguous chunking.
//!
//! Guarantees relied on by callers:
//!
//! * **Order preservation** — `collect::<Vec<_>>()` yields results in input
//!   order regardless of thread count, so parallel consumers stay
//!   deterministic.
//! * **Panic propagation** — a panicking closure aborts the whole operation
//!   with that panic, like rayon.
//!
//! There is no work stealing: each worker takes one contiguous chunk. For
//! the near-uniform per-item costs in this workspace (distance scans, kNN
//! queries, per-row synthesis) that is within noise of a stealing pool.
//! Swap the path dependency for real rayon when registry access exists.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Re-exports of the traits needed at call sites, mirroring rayon.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// Number of worker threads used for parallel operations.
#[must_use]
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
}

/// An indexed source of items: length plus random access. All stand-in
/// parallel iterators are indexed, which is what makes order-preserving
/// chunked execution trivial.
pub trait IndexedSource: Sync {
    /// The item type produced for each index.
    type Item: Send;
    /// Total number of items.
    fn len(&self) -> usize;
    /// True when the source has no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Produces the item at `i`. Must be safe to call concurrently for
    /// distinct `i`.
    fn get(&self, i: usize) -> Self::Item;
}

/// A parallel iterator over an [`IndexedSource`].
pub struct ParIter<S> {
    source: S,
}

/// `map` adapter.
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: IndexedSource, R: Send, F: Fn(S::Item) -> R + Sync> IndexedSource for Map<S, F> {
    type Item = R;

    fn len(&self) -> usize {
        self.source.len()
    }

    fn get(&self, i: usize) -> R {
        (self.f)(self.source.get(i))
    }
}

/// The user-facing parallel iterator API subset.
pub trait ParallelIterator: Sized {
    /// The underlying indexed source type.
    type Source: IndexedSource;

    /// Unwraps the source.
    fn into_source(self) -> Self::Source;

    /// Maps each item through `f` in parallel.
    fn map<R, F>(self, f: F) -> ParIter<Map<Self::Source, F>>
    where
        R: Send,
        F: Fn(<Self::Source as IndexedSource>::Item) -> R + Sync,
    {
        ParIter {
            source: Map {
                source: self.into_source(),
                f,
            },
        }
    }

    /// Runs `f` on every item in parallel (no ordering guarantees between
    /// invocations; all complete before returning).
    fn for_each<F>(self, f: F)
    where
        F: Fn(<Self::Source as IndexedSource>::Item) + Sync,
    {
        run_chunked(&self.into_source(), &|_i, item| f(item));
    }

    /// Collects results in input order.
    fn collect<C>(self) -> C
    where
        C: FromIterator<<Self::Source as IndexedSource>::Item>,
    {
        collect_vec(&self.into_source()).into_iter().collect()
    }

    /// Sums the items in input order (deterministic for floats).
    fn sum<T>(self) -> T
    where
        T: std::iter::Sum<<Self::Source as IndexedSource>::Item>,
    {
        collect_vec(&self.into_source()).into_iter().sum()
    }
}

impl<S: IndexedSource> ParallelIterator for ParIter<S> {
    type Source = S;

    fn into_source(self) -> S {
        self.source
    }
}

/// Executes `f(i, item)` for every index, chunked across worker threads.
fn run_chunked<S: IndexedSource>(source: &S, f: &(impl Fn(usize, S::Item) + Sync)) {
    run_chunked_with(source, current_num_threads(), f);
}

/// [`run_chunked`] with an explicit worker count, so the multi-threaded
/// branch is testable even on single-CPU hosts (threads timeslice).
fn run_chunked_with<S: IndexedSource>(
    source: &S,
    workers: usize,
    f: &(impl Fn(usize, S::Item) + Sync),
) {
    let n = source.len();
    if n == 0 {
        return;
    }
    let workers = workers.min(n);
    if workers <= 1 || n == 1 {
        for i in 0..n {
            f(i, source.get(i));
        }
        return;
    }
    // Atomic chunk cursor: threads grab fixed-size chunks until exhausted,
    // which tolerates moderately non-uniform item costs.
    let chunk = (n / (workers * 4)).max(1);
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                for i in start..(start + chunk).min(n) {
                    f(i, source.get(i));
                }
            });
        }
    });
}

/// Materializes all items in input order.
fn collect_vec<S: IndexedSource>(source: &S) -> Vec<S::Item> {
    let n = source.len();
    let mut slots: Vec<Option<S::Item>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    {
        // Each index is written exactly once, so handing out disjoint
        // &mut slots across threads is safe; a SyncCell wrapper expresses
        // that to the compiler.
        struct SyncSlots<T>(*mut Option<T>);
        unsafe impl<T: Send> Sync for SyncSlots<T> {}
        impl<T> SyncSlots<T> {
            /// # Safety
            /// `i` must be in bounds and written by exactly one thread.
            unsafe fn write(&self, i: usize, v: T) {
                *self.0.add(i) = Some(v);
            }
        }
        let ptr = SyncSlots(slots.as_mut_ptr());
        run_chunked(source, &|i, item| {
            // SAFETY: `i < n`, every index visited exactly once, and the
            // Vec outlives the scoped threads inside run_chunked.
            unsafe { ptr.write(i, item) };
        });
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index filled"))
        .collect()
}

/// Conversion into a parallel iterator (owning form).
pub trait IntoParallelIterator {
    /// Source produced.
    type Source: IndexedSource;
    /// Converts `self`.
    fn into_par_iter(self) -> ParIter<Self::Source>;
}

/// Conversion into a parallel iterator over references.
pub trait IntoParallelRefIterator<'a> {
    /// Source produced.
    type Source: IndexedSource;
    /// Iterates `&self` in parallel.
    fn par_iter(&'a self) -> ParIter<Self::Source>;
}

/// Source over `Range<usize>`.
pub struct RangeSource {
    start: usize,
    len: usize,
}

impl IndexedSource for RangeSource {
    type Item = usize;

    fn len(&self) -> usize {
        self.len
    }

    fn get(&self, i: usize) -> usize {
        self.start + i
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Source = RangeSource;

    fn into_par_iter(self) -> ParIter<RangeSource> {
        ParIter {
            source: RangeSource {
                start: self.start,
                len: self.end.saturating_sub(self.start),
            },
        }
    }
}

/// Source over a slice.
pub struct SliceSource<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> IndexedSource for SliceSource<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn get(&self, i: usize) -> &'a T {
        &self.slice[i]
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Source = SliceSource<'a, T>;

    fn par_iter(&'a self) -> ParIter<SliceSource<'a, T>> {
        ParIter {
            source: SliceSource { slice: self },
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Source = SliceSource<'a, T>;

    fn par_iter(&'a self) -> ParIter<SliceSource<'a, T>> {
        ParIter {
            source: SliceSource { slice: self },
        }
    }
}

/// Source over an owned `Vec` (items cloned out per index).
pub struct VecSource<T> {
    items: Vec<T>,
}

impl<T: Clone + Send + Sync> IndexedSource for VecSource<T> {
    type Item = T;

    fn len(&self) -> usize {
        self.items.len()
    }

    fn get(&self, i: usize) -> T {
        self.items[i].clone()
    }
}

impl<T: Clone + Send + Sync> IntoParallelIterator for Vec<T> {
    type Source = VecSource<T>;

    fn into_par_iter(self) -> ParIter<VecSource<T>> {
        ParIter {
            source: VecSource { items: self },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn slice_par_iter_matches_serial() {
        let xs: Vec<f64> = (0..500).map(f64::from).collect();
        let par: Vec<f64> = xs.par_iter().map(|x| x.sqrt()).collect();
        let ser: Vec<f64> = xs.iter().map(|x| x.sqrt()).collect();
        assert_eq!(par, ser);
    }

    #[test]
    fn sum_is_deterministic() {
        let xs: Vec<f64> = (0..100).map(|i| f64::from(i) * 0.1).collect();
        let a: f64 = xs.par_iter().map(|x| *x).sum();
        let b: f64 = xs.par_iter().map(|x| *x).sum();
        assert_eq!(a, b);
    }

    #[test]
    fn for_each_visits_everything() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        (0..777usize).into_par_iter().for_each(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.into_inner(), 777);
    }

    #[test]
    fn multi_worker_chunking_is_order_preserving() {
        // Force the threaded branch regardless of host CPU count: on a
        // single-CPU container `current_num_threads()` is 1 and the
        // default path would stay serial, leaving the SyncSlots writes
        // unexercised.
        struct Sq;
        impl crate::IndexedSource for Sq {
            type Item = usize;
            fn len(&self) -> usize {
                997 // prime, so chunks never divide evenly
            }
            fn get(&self, i: usize) -> usize {
                i * i
            }
        }
        use std::sync::Mutex;
        let hits = Mutex::new(vec![0u8; 997]);
        crate::run_chunked_with(&Sq, 4, &|i, item| {
            assert_eq!(item, i * i);
            hits.lock().unwrap()[i] += 1;
        });
        assert!(hits.into_inner().unwrap().iter().all(|&h| h == 1));
    }

    #[test]
    fn empty_inputs() {
        let out: Vec<usize> = (5..5usize).into_par_iter().map(|i| i).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn owned_vec_into_par_iter() {
        let xs = vec!["a".to_string(), "b".to_string()];
        let out: Vec<String> = xs.into_par_iter().map(|s| s + "!").collect();
        assert_eq!(out, vec!["a!", "b!"]);
    }
}
