//! Minimal in-tree stand-in for `rayon`.
//!
//! The registry is unreachable in this build environment, so this crate
//! provides the parallel-iterator subset the workspace consumes —
//! `par_iter()` on slices, `into_par_iter()` on `Range<usize>` and vectors,
//! `map`/`for_each`/`collect`/`sum` — executed on a **persistent worker
//! pool** with contiguous chunking.
//!
//! Guarantees relied on by callers:
//!
//! * **Order preservation** — `collect::<Vec<_>>()` yields results in input
//!   order regardless of thread count, so parallel consumers stay
//!   deterministic.
//! * **Panic propagation** — a panicking closure aborts the whole operation
//!   with that panic, like rayon.
//!
//! # Persistent pool
//!
//! Worker threads are spawned once (lazily, on the first parallel call) and
//! park on a job queue, so a parallel section costs two atomic hops instead
//! of thread spawn + join. That moves the break-even size for fine-grained
//! sections (e.g. a server's micro-batched predict over a few hundred rows)
//! from tens of thousands of items down to hundreds. The calling thread
//! always **participates** in its own job — claiming chunks exactly like a
//! worker — so progress never depends on pool availability: with every
//! worker busy (or a pool of zero), the call degenerates to the serial
//! loop. That same property makes nested parallel sections deadlock-free:
//! a section started from inside a worker completes through its caller.
//!
//! There is no work stealing: threads claim fixed-size contiguous chunks
//! from an atomic cursor. For the near-uniform per-item costs in this
//! workspace (distance scans, kNN queries, per-row synthesis) that is
//! within noise of a stealing pool. Swap the path dependency for real
//! rayon when registry access exists.

/// Re-exports of the traits needed at call sites, mirroring rayon.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// Number of worker threads used for parallel operations.
#[must_use]
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
}

/// An indexed source of items: length plus random access. All stand-in
/// parallel iterators are indexed, which is what makes order-preserving
/// chunked execution trivial.
pub trait IndexedSource: Sync {
    /// The item type produced for each index.
    type Item: Send;
    /// Total number of items.
    fn len(&self) -> usize;
    /// True when the source has no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Produces the item at `i`. Must be safe to call concurrently for
    /// distinct `i`.
    fn get(&self, i: usize) -> Self::Item;
}

/// A parallel iterator over an [`IndexedSource`].
pub struct ParIter<S> {
    source: S,
}

/// `map` adapter.
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: IndexedSource, R: Send, F: Fn(S::Item) -> R + Sync> IndexedSource for Map<S, F> {
    type Item = R;

    fn len(&self) -> usize {
        self.source.len()
    }

    fn get(&self, i: usize) -> R {
        (self.f)(self.source.get(i))
    }
}

/// The user-facing parallel iterator API subset.
pub trait ParallelIterator: Sized {
    /// The underlying indexed source type.
    type Source: IndexedSource;

    /// Unwraps the source.
    fn into_source(self) -> Self::Source;

    /// Maps each item through `f` in parallel.
    fn map<R, F>(self, f: F) -> ParIter<Map<Self::Source, F>>
    where
        R: Send,
        F: Fn(<Self::Source as IndexedSource>::Item) -> R + Sync,
    {
        ParIter {
            source: Map {
                source: self.into_source(),
                f,
            },
        }
    }

    /// Runs `f` on every item in parallel (no ordering guarantees between
    /// invocations; all complete before returning).
    fn for_each<F>(self, f: F)
    where
        F: Fn(<Self::Source as IndexedSource>::Item) + Sync,
    {
        run_chunked(&self.into_source(), &|_i, item| f(item));
    }

    /// Collects results in input order.
    fn collect<C>(self) -> C
    where
        C: FromIterator<<Self::Source as IndexedSource>::Item>,
    {
        collect_vec(&self.into_source()).into_iter().collect()
    }

    /// Sums the items in input order (deterministic for floats).
    fn sum<T>(self) -> T
    where
        T: std::iter::Sum<<Self::Source as IndexedSource>::Item>,
    {
        collect_vec(&self.into_source()).into_iter().sum()
    }
}

impl<S: IndexedSource> ParallelIterator for ParIter<S> {
    type Source = S;

    fn into_source(self) -> S {
        self.source
    }
}

/// Executes `f(i, item)` for every index, chunked across the persistent
/// worker pool (the caller participates).
fn run_chunked<S: IndexedSource>(source: &S, f: &(impl Fn(usize, S::Item) + Sync)) {
    run_chunked_with(source, current_num_threads(), f);
}

/// [`run_chunked`] with an explicit parallelism width — `workers` only
/// sizes the chunks (the pool is shared and fixed); passing it keeps the
/// chunking deterministic in tests regardless of host CPU count.
fn run_chunked_with<S: IndexedSource>(
    source: &S,
    workers: usize,
    f: &(impl Fn(usize, S::Item) + Sync),
) {
    let n = source.len();
    if n == 0 {
        return;
    }
    let workers = workers.min(n);
    if workers <= 1 || n == 1 {
        for i in 0..n {
            f(i, source.get(i));
        }
        return;
    }
    // Atomic chunk cursor: threads grab fixed-size chunks until exhausted,
    // which tolerates moderately non-uniform item costs.
    let chunk = (n / (workers * 4)).max(1);
    let call = |i: usize| f(i, source.get(i));
    pool::run(n, chunk, &call);
}

/// The persistent worker pool backing every parallel section.
mod pool {
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Condvar, Mutex, OnceLock};

    /// One parallel section. Lives on the caller's stack for the duration
    /// of [`run`]; workers reach it through a registered [`JobRef`].
    struct Job {
        /// Type-erased `closure(i)`; `ctx` points at the caller's closure.
        call: unsafe fn(*const (), usize),
        ctx: *const (),
        n: usize,
        chunk: usize,
        /// Next unclaimed index; claims are `fetch_add(chunk)`.
        cursor: AtomicUsize,
        /// Workers currently executing chunks of this job (the caller is
        /// tracked by program order, not by this counter).
        active: AtomicUsize,
        /// First panic payload raised by a worker chunk.
        panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
        /// Signals `active` reaching 0 to the waiting caller.
        done: Condvar,
        done_lock: Mutex<()>,
    }

    impl Job {
        /// Claims and executes chunks until the cursor is exhausted.
        ///
        /// # Safety
        /// Must only run while the job's owner is inside [`run`] (enforced
        /// by the registration protocol: workers find jobs only through the
        /// registry, enter with `active` incremented under the registry
        /// lock, and [`run`] deregisters then waits for `active == 0`).
        unsafe fn execute_chunks(&self) {
            loop {
                let start = self.cursor.fetch_add(self.chunk, Ordering::Relaxed);
                if start >= self.n {
                    return;
                }
                for i in start..(start + self.chunk).min(self.n) {
                    (self.call)(self.ctx, i);
                }
            }
        }

        /// Stops further chunk claims (already-claimed chunks still finish).
        fn cancel(&self) {
            self.cursor.store(self.n, Ordering::Relaxed);
        }
    }

    /// Shareable pointer to a stack-resident [`Job`]. Valid only while the
    /// job is registered or `active` is held (see `execute_chunks` safety).
    #[derive(Clone, Copy)]
    struct JobRef(*const Job);
    unsafe impl Send for JobRef {}

    struct Pool {
        /// Jobs with potentially unclaimed chunks.
        jobs: Mutex<Vec<JobRef>>,
        /// Wakes parked workers when a job is registered.
        available: Condvar,
    }

    static POOL: OnceLock<&'static Pool> = OnceLock::new();

    /// Lazily spawns the worker threads. At least one worker exists even on
    /// single-CPU hosts so the concurrent path is always exercised; workers
    /// park when idle and live for the process lifetime.
    fn pool() -> &'static Pool {
        POOL.get_or_init(|| {
            let pool: &'static Pool = Box::leak(Box::new(Pool {
                jobs: Mutex::new(Vec::new()),
                available: Condvar::new(),
            }));
            let helpers = super::current_num_threads().saturating_sub(1).max(1);
            for _ in 0..helpers {
                std::thread::Builder::new()
                    .name("gb-rayon-worker".into())
                    .spawn(move || worker_loop(pool))
                    .expect("spawn pool worker");
            }
            pool
        })
    }

    fn worker_loop(pool: &'static Pool) {
        let mut guard = pool.jobs.lock().expect("pool lock");
        loop {
            // Find a job with unclaimed chunks; enter it (bump `active`)
            // while still holding the registry lock so the owner cannot
            // deregister-and-return in between.
            let found = guard
                .iter()
                .find(|j| unsafe { (*j.0).cursor.load(Ordering::Relaxed) < (*j.0).n })
                .copied();
            let Some(job_ref) = found else {
                guard = pool.available.wait(guard).expect("pool wait");
                continue;
            };
            let job = unsafe { &*job_ref.0 };
            job.active.fetch_add(1, Ordering::SeqCst);
            drop(guard);

            let outcome = catch_unwind(AssertUnwindSafe(|| unsafe { job.execute_chunks() }));
            if let Err(payload) = outcome {
                job.panic.lock().expect("panic slot").get_or_insert(payload);
                job.cancel();
            }
            // Leave the job under its completion lock so the owner's
            // predicate check and our notify cannot interleave badly.
            let done_guard = job.done_lock.lock().expect("done lock");
            job.active.fetch_sub(1, Ordering::SeqCst);
            job.done.notify_all();
            drop(done_guard);

            guard = pool.jobs.lock().expect("pool lock");
        }
    }

    /// Deregisters the job and blocks until no worker is inside it — runs
    /// on both the normal and the unwinding exit path, which is what makes
    /// lending out a stack-resident job sound.
    struct CompletionGuard<'a> {
        pool: &'static Pool,
        job: &'a Job,
    }

    impl Drop for CompletionGuard<'_> {
        fn drop(&mut self) {
            self.job.cancel();
            {
                let mut jobs = self.pool.jobs.lock().expect("pool lock");
                let me = self.job as *const Job;
                jobs.retain(|j| j.0 != me);
            }
            let mut guard = self.job.done_lock.lock().expect("done lock");
            while self.job.active.load(Ordering::SeqCst) > 0 {
                guard = self.job.done.wait(guard).expect("done wait");
            }
        }
    }

    /// Runs `closure(i)` for every `i in 0..n` across the pool, the caller
    /// included. Returns when every index has been executed; propagates the
    /// first panic.
    pub(super) fn run<F: Fn(usize) + Sync>(n: usize, chunk: usize, closure: &F) {
        unsafe fn call_closure<F: Fn(usize)>(ctx: *const (), i: usize) {
            (*ctx.cast::<F>())(i);
        }
        let job = Job {
            call: call_closure::<F>,
            ctx: std::ptr::from_ref(closure).cast(),
            n,
            chunk,
            cursor: AtomicUsize::new(0),
            active: AtomicUsize::new(0),
            panic: Mutex::new(None),
            done: Condvar::new(),
            done_lock: Mutex::new(()),
        };
        let pool = pool();
        {
            let mut jobs = pool.jobs.lock().expect("pool lock");
            jobs.push(JobRef(&job));
            pool.available.notify_all();
        }
        {
            // The guard deregisters and drains workers even if the caller's
            // own chunk panics below.
            let _guard = CompletionGuard { pool, job: &job };
            // SAFETY: the job outlives this scope; the guard keeps it alive
            // for workers until `active == 0`.
            unsafe { job.execute_chunks() };
        }
        let payload = job.panic.lock().expect("panic slot").take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    #[cfg(test)]
    mod tests {
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[test]
        fn worker_panic_propagates_to_caller() {
            let result = std::panic::catch_unwind(|| {
                super::run(10_000, 8, &|i| {
                    assert!(i != 7777, "planted panic");
                });
            });
            assert!(result.is_err(), "panic must propagate");
            // The pool must stay usable after a panicked job.
            let hits = AtomicUsize::new(0);
            super::run(1000, 16, &|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hits.into_inner(), 1000);
        }

        #[test]
        fn concurrent_jobs_from_many_threads() {
            // Several threads race parallel sections through the shared
            // pool — every section must still visit each index exactly once.
            std::thread::scope(|s| {
                for t in 0..6 {
                    s.spawn(move || {
                        let n = 3000 + t * 17;
                        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
                        super::run(n, 8, &|i| {
                            hits[i].fetch_add(1, Ordering::Relaxed);
                        });
                        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
                    });
                }
            });
        }

        #[test]
        fn nested_sections_complete() {
            let total = AtomicUsize::new(0);
            super::run(8, 1, &|_| {
                super::run(64, 4, &|_| {
                    total.fetch_add(1, Ordering::Relaxed);
                });
            });
            assert_eq!(total.into_inner(), 8 * 64);
        }
    }
}

/// Materializes all items in input order.
fn collect_vec<S: IndexedSource>(source: &S) -> Vec<S::Item> {
    let n = source.len();
    let mut slots: Vec<Option<S::Item>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    {
        // Each index is written exactly once, so handing out disjoint
        // &mut slots across threads is safe; a SyncCell wrapper expresses
        // that to the compiler.
        struct SyncSlots<T>(*mut Option<T>);
        unsafe impl<T: Send> Sync for SyncSlots<T> {}
        impl<T> SyncSlots<T> {
            /// # Safety
            /// `i` must be in bounds and written by exactly one thread.
            unsafe fn write(&self, i: usize, v: T) {
                *self.0.add(i) = Some(v);
            }
        }
        let ptr = SyncSlots(slots.as_mut_ptr());
        run_chunked(source, &|i, item| {
            // SAFETY: `i < n`, every index visited exactly once, and the
            // Vec outlives the scoped threads inside run_chunked.
            unsafe { ptr.write(i, item) };
        });
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index filled"))
        .collect()
}

/// Conversion into a parallel iterator (owning form).
pub trait IntoParallelIterator {
    /// Source produced.
    type Source: IndexedSource;
    /// Converts `self`.
    fn into_par_iter(self) -> ParIter<Self::Source>;
}

/// Conversion into a parallel iterator over references.
pub trait IntoParallelRefIterator<'a> {
    /// Source produced.
    type Source: IndexedSource;
    /// Iterates `&self` in parallel.
    fn par_iter(&'a self) -> ParIter<Self::Source>;
}

/// Source over `Range<usize>`.
pub struct RangeSource {
    start: usize,
    len: usize,
}

impl IndexedSource for RangeSource {
    type Item = usize;

    fn len(&self) -> usize {
        self.len
    }

    fn get(&self, i: usize) -> usize {
        self.start + i
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Source = RangeSource;

    fn into_par_iter(self) -> ParIter<RangeSource> {
        ParIter {
            source: RangeSource {
                start: self.start,
                len: self.end.saturating_sub(self.start),
            },
        }
    }
}

/// Source over a slice.
pub struct SliceSource<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> IndexedSource for SliceSource<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn get(&self, i: usize) -> &'a T {
        &self.slice[i]
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Source = SliceSource<'a, T>;

    fn par_iter(&'a self) -> ParIter<SliceSource<'a, T>> {
        ParIter {
            source: SliceSource { slice: self },
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Source = SliceSource<'a, T>;

    fn par_iter(&'a self) -> ParIter<SliceSource<'a, T>> {
        ParIter {
            source: SliceSource { slice: self },
        }
    }
}

/// Source over an owned `Vec` (items cloned out per index).
pub struct VecSource<T> {
    items: Vec<T>,
}

impl<T: Clone + Send + Sync> IndexedSource for VecSource<T> {
    type Item = T;

    fn len(&self) -> usize {
        self.items.len()
    }

    fn get(&self, i: usize) -> T {
        self.items[i].clone()
    }
}

impl<T: Clone + Send + Sync> IntoParallelIterator for Vec<T> {
    type Source = VecSource<T>;

    fn into_par_iter(self) -> ParIter<VecSource<T>> {
        ParIter {
            source: VecSource { items: self },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn slice_par_iter_matches_serial() {
        let xs: Vec<f64> = (0..500).map(f64::from).collect();
        let par: Vec<f64> = xs.par_iter().map(|x| x.sqrt()).collect();
        let ser: Vec<f64> = xs.iter().map(|x| x.sqrt()).collect();
        assert_eq!(par, ser);
    }

    #[test]
    fn sum_is_deterministic() {
        let xs: Vec<f64> = (0..100).map(|i| f64::from(i) * 0.1).collect();
        let a: f64 = xs.par_iter().map(|x| *x).sum();
        let b: f64 = xs.par_iter().map(|x| *x).sum();
        assert_eq!(a, b);
    }

    #[test]
    fn for_each_visits_everything() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        (0..777usize).into_par_iter().for_each(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.into_inner(), 777);
    }

    #[test]
    fn multi_worker_chunking_is_order_preserving() {
        // Force the threaded branch regardless of host CPU count: on a
        // single-CPU container `current_num_threads()` is 1 and the
        // default path would stay serial, leaving the SyncSlots writes
        // unexercised.
        struct Sq;
        impl crate::IndexedSource for Sq {
            type Item = usize;
            fn len(&self) -> usize {
                997 // prime, so chunks never divide evenly
            }
            fn get(&self, i: usize) -> usize {
                i * i
            }
        }
        use std::sync::Mutex;
        let hits = Mutex::new(vec![0u8; 997]);
        crate::run_chunked_with(&Sq, 4, &|i, item| {
            assert_eq!(item, i * i);
            hits.lock().unwrap()[i] += 1;
        });
        assert!(hits.into_inner().unwrap().iter().all(|&h| h == 1));
    }

    #[test]
    fn empty_inputs() {
        let out: Vec<usize> = (5..5usize).into_par_iter().map(|i| i).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn owned_vec_into_par_iter() {
        let xs = vec!["a".to_string(), "b".to_string()];
        let out: Vec<String> = xs.into_par_iter().map(|s| s + "!").collect();
        assert_eq!(out, vec!["a!", "b!"]);
    }
}
