//! Minimal in-tree stand-in for `criterion`.
//!
//! Implements the API subset the workspace's benches use — groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Throughput`,
//! sample/warm-up/measurement knobs, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — with a real measurement
//! loop: per sample it runs the closure enough times to exceed a minimum
//! window, then reports min/median/mean per iteration on stdout and appends
//! a JSON line to `target/bench-results.jsonl` for downstream tooling.
//! No statistical regression analysis; numbers are honest wall-clock.

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { name: s }
    }
}

impl From<&BenchmarkId> for BenchmarkId {
    fn from(id: &BenchmarkId) -> Self {
        id.clone()
    }
}

/// Throughput annotation (recorded, not rate-normalised in output).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The timing loop handle passed to bench closures.
pub struct Bencher {
    /// Measured per-iteration times for the current benchmark.
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Bencher {
    /// Times `f`, storing one aggregate sample per measurement batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up window elapses (at least once).
        let warm_start = Instant::now();
        loop {
            black_box(f());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        // Calibrate iterations per sample so each sample is ≥ the window.
        let per_sample_window =
            self.measurement_time.max(Duration::from_millis(1)) / self.sample_size.max(1) as u32;
        let t0 = Instant::now();
        black_box(f());
        let one = t0.elapsed().max(Duration::from_nanos(1));
        let iters_per_sample =
            (per_sample_window.as_nanos() / one.as_nanos()).clamp(1, 1_000_000) as u32;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            self.samples.push(start.elapsed() / iters_per_sample);
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Shared measurement settings + result reporting.
#[derive(Debug, Clone)]
struct Settings {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl Default for Settings {
    fn default() -> Self {
        Self {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            throughput: None,
        }
    }
}

fn run_one(full_name: &str, settings: &Settings, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size: settings.sample_size,
        measurement_time: settings.measurement_time,
        warm_up_time: settings.warm_up_time,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{full_name}: no samples (bencher.iter never called)");
        return;
    }
    let mut sorted = b.samples.clone();
    sorted.sort();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    let thr = match settings.throughput {
        Some(Throughput::Elements(n)) => {
            let per_sec = n as f64 / median.as_secs_f64();
            format!("  ({per_sec:.0} elem/s)")
        }
        Some(Throughput::Bytes(n)) => {
            let per_sec = n as f64 / median.as_secs_f64() / 1e6;
            format!("  ({per_sec:.1} MB/s)")
        }
        None => String::new(),
    };
    println!(
        "{full_name}: min {}  median {}  mean {}{thr}",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean)
    );
    append_jsonl(full_name, min, median, mean);
}

fn append_jsonl(name: &str, min: Duration, median: Duration, mean: Duration) {
    let _ = std::fs::create_dir_all("target");
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open("target/bench-results.jsonl")
    {
        let _ = writeln!(
            f,
            "{{\"bench\":\"{}\",\"min_ns\":{},\"median_ns\":{},\"mean_ns\":{}}}",
            name.replace('"', "'"),
            min.as_nanos(),
            median.as_nanos(),
            mean.as_nanos()
        );
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up window.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Sets the total measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Annotates throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.settings.throughput = Some(t);
        self
    }

    /// Runs a benchmark without an explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.name);
        run_one(&full, &self.settings, &mut f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.name);
        run_one(&full, &self.settings, &mut |b| f(b, input));
        self
    }

    /// Ends the group (formatting no-op; results were already reported).
    pub fn finish(self) {}
}

/// Entry point mirroring criterion's `Criterion` struct.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== bench group: {name} ==");
        BenchmarkGroup {
            name,
            settings: Settings::default(),
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &Settings::default(), &mut f);
        self
    }
}

/// Declares a group-runner function from bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_produces_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        g.finish();
    }
}
