//! Minimal in-tree stand-in for `serde`.
//!
//! The registry is unreachable in this build environment, so this crate
//! supplies the subset the workspace needs: a JSON-shaped [`Value`] data
//! model, [`Serialize`]/[`Deserialize`] traits defined directly over it
//! (no visitor machinery), and `#[derive(Serialize, Deserialize)]` macros
//! (re-exported from the sibling `serde_derive` crate) covering named-field
//! structs and unit-variant enums — exactly the shapes this workspace
//! serializes. `serde_json` renders/parses [`Value`] to text.
//!
//! The wire format matches what real serde_json would emit for the same
//! types, so artifacts stay readable if the real crates are swapped in.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A JSON-shaped dynamic value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (stored as f64; integers up to 2^53 round-trip exactly).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Value>),
    /// JSON object; insertion order is preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` to a [`Value`].
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    ///
    /// # Errors
    /// Returns [`Error`] when the value's shape does not match `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! num_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    other => Err(Error(format!(
                        "expected number for {}, got {other:?}",
                        stringify!($t)
                    ))),
                }
            }
        }
    )*};
}

num_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl Deserialize for &'static str {
    /// Leaks the string to obtain `'static` — acceptable for the test-only
    /// round-trips this workspace performs on metadata structs.
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(Error(format!("expected string, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn options_and_vecs() {
        let v: Option<usize> = Some(3);
        assert_eq!(Option::<usize>::from_value(&v.to_value()), Ok(Some(3)));
        let n: Option<usize> = None;
        assert_eq!(Option::<usize>::from_value(&n.to_value()), Ok(None));
        let xs = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&xs.to_value()), Ok(xs));
    }

    #[test]
    fn shape_errors_reported() {
        assert!(u32::from_value(&Value::Str("x".into())).is_err());
        assert!(Vec::<u32>::from_value(&Value::Num(1.0)).is_err());
    }
}
