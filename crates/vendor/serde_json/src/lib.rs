//! Minimal in-tree stand-in for `serde_json`: renders and parses the
//! [`serde::Value`] data model used by the in-tree serde stand-in. Supports
//! the full JSON grammar (numbers, escaped strings, nested arrays/objects),
//! compact and pretty output.

use serde::{Deserialize, Error, Serialize, Value};
use std::fmt::Write as _;

/// Serializes `value` to compact JSON.
///
/// # Errors
/// Infallible for the shapes this workspace produces; the `Result` mirrors
/// the real serde_json signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` to pretty-printed JSON (two-space indent).
///
/// # Errors
/// Infallible for the shapes this workspace produces.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserializes a `T` from JSON text.
///
/// # Errors
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        s: s.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(Error(format!("trailing characters at byte {}", p.i)));
    }
    T::from_value(&v)
}

fn render(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => render_number(*n, out),
        Value::Str(s) => render_string(s, out),
        Value::Arr(items) => render_seq(out, indent, depth, items.is_empty(), '[', ']', |out| {
            for (i, item) in items.iter().enumerate() {
                sep(out, indent, depth + 1, i > 0);
                render(item, out, indent, depth + 1);
            }
        }),
        Value::Obj(fields) => render_seq(out, indent, depth, fields.is_empty(), '{', '}', |out| {
            for (i, (k, item)) in fields.iter().enumerate() {
                sep(out, indent, depth + 1, i > 0);
                render_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, out, indent, depth + 1);
            }
        }),
    }
}

fn render_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    empty: bool,
    open: char,
    close: char,
    body: impl FnOnce(&mut String),
) {
    out.push(open);
    if empty {
        out.push(close);
        return;
    }
    body(out);
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn sep(out: &mut String, indent: Option<usize>, depth: usize, comma: bool) {
    if comma {
        out.push(',');
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
}

fn render_number(n: f64, out: &mut String) {
    if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        // Integral values print without a trailing ".0", matching serde_json.
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.i
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.s[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.i)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.i))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.i))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.i))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error("unterminated string".into()));
            };
            self.i += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error("unterminated escape".into()));
                    };
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.i + 4 > self.s.len() {
                                return Err(Error("truncated \\u escape".into()));
                            }
                            let hex = std::str::from_utf8(&self.s[self.i..self.i + 4])
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            self.i += 4;
                            // Surrogate pairs are not produced by this
                            // workspace's writer; map lone surrogates to the
                            // replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(Error(format!("bad escape `\\{}`", other as char))),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at i - 1.
                    let start = self.i - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    if end > self.s.len() {
                        return Err(Error("truncated UTF-8 sequence".into()));
                    }
                    let chunk = std::str::from_utf8(&self.s[start..end])
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    out.push_str(chunk);
                    self.i = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let text =
            std::str::from_utf8(&self.s[start..self.i]).map_err(|_| Error("bad number".into()))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error(format!("bad number `{text}`")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Value::Obj(vec![
            ("name".into(), Value::Str("ba\"na\\na\n".into())),
            (
                "xs".into(),
                Value::Arr(vec![Value::Num(1.0), Value::Num(-2.5)]),
            ),
            ("flag".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            ("empty".into(), Value::Arr(vec![])),
        ]);
        let compact = to_string(&v).unwrap();
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(to_string(&3u32).unwrap(), "3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
    }

    #[test]
    fn unicode_survives() {
        let v = Value::Str("héllo ∆ wörld".into());
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Value>(&s).unwrap(), v);
        assert_eq!(
            from_str::<Value>("\"\\u0041\"").unwrap(),
            Value::Str("A".into())
        );
    }

    #[test]
    fn malformed_rejected() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
