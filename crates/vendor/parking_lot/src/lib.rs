//! Minimal in-tree stand-in for `parking_lot`: a [`Mutex`] with the
//! non-poisoning `lock()` signature, backed by `std::sync::Mutex`.
//! Poisoned locks (a panic while held) propagate the panic instead of
//! returning a `Result`, matching how this workspace uses the API.

use std::sync::MutexGuard;

/// A mutual-exclusion lock with parking_lot's panic-free API shape.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking the current thread.
    ///
    /// # Panics
    /// Panics if a previous holder panicked (std poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().expect("mutex poisoned")
    }

    /// Consumes the mutex, returning the inner value.
    ///
    /// # Panics
    /// Panics if the mutex was poisoned.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("mutex poisoned")
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn contended_lock_counts_correctly() {
        let m = Mutex::new(0usize);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 8000);
    }
}
